//! Reproduce the paper's evaluation figures through the fluent `Sim` API.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example reproduce_figures            # both figures, reduced scale
//! cargo run --release --example reproduce_figures -- fig5    # Figure 5 only
//! cargo run --release --example reproduce_figures -- fig6    # Figure 6 only
//! cargo run --release --example reproduce_figures -- handover # §4.1 vs §4.2 comparison
//! cargo run --release --example reproduce_figures -- failure  # fault-injection panel
//! cargo run --release --example reproduce_figures -- traffic  # storm / byte-accounting panel
//! cargo run --release --example reproduce_figures -- reliability # lossy-link trade-off panel
//! cargo run --release --example reproduce_figures -- fig5 --paper-scale
//! cargo run --release --example reproduce_figures -- --workers 4
//! cargo run --release --example reproduce_figures -- --budget-ms 60000
//! cargo run --release --example reproduce_figures -- fig5 --dump-ledger ledgers.json
//! cargo run --release --example reproduce_figures -- fig5 --engine-workers 4
//! ```
//!
//! By default the sweeps run at a reduced scale (49 brokers, 5 clients per
//! broker) so the whole run finishes in a few minutes on a laptop while
//! preserving the figure *shapes*; `--paper-scale` switches to the paper's
//! full 100-broker / 1000-client environment (Figure 5) and 25–196 brokers
//! (Figure 6), which takes considerably longer. `--workers N` bounds the
//! sweep worker threads (default: all cores). `--budget-ms N` bounds each
//! sweep's wall-clock: points that cannot start in time are *recorded as
//! skipped* in the JSON output instead of silently truncating the sweep.
//! `--engine-workers K` runs every figure simulation on the windowed
//! parallel engine with K shards; delivery sequences are byte-identical to
//! the serial engine, so the figures come out exactly the same — the flag
//! exists to exercise and time the parallel backend on real sweeps.
//!
//! The `handover` mode runs the proclaimed-vs-reactive comparison the
//! paper's §4.1 motivates: every registered protocol twice on the identical
//! move schedule (`proclaimed_fraction` 0 and 1), reporting the paired
//! per-handover first-delivery gaps from the handover ledger.
//!
//! The `failure` mode steps outside the paper's fault-free setting: it runs
//! all four protocols (the paper's three plus the self-stabilizing PSVR
//! variant) on the failure presets — a seeded broker crash storm and a
//! partitioned-city schedule — and reports per-outage time-to-repair and
//! loss counts from the recovery ledger, which reconcile exactly with the
//! delivery audit.
//!
//! The `traffic` mode runs the four MQTT-shaped storm presets (fan-in,
//! fan-out, retained replay, shared subscriptions) with MHH under both
//! fan-out modes — serialize-once cached and clone-per-destination — and
//! reports bytes on the wire, serialization counts and the cached path's
//! allocation savings on provably byte-identical delivery results.
//!
//! The `reliability` mode runs the `lossy-crash-storm` preset (2 % link
//! loss, 0.5 % corruption on top of a six-crash storm) for all four
//! protocols under three reliability modes — no reliability layer, broker
//! dedup watermarks alone, and dedup plus publisher ack/retransmit — and
//! tables the trade-off: audited losses and duplicates against suppression
//! and retransmission work, with every link drop accounted by cause.
//!
//! `--dump-ledger <path>` additionally exports every executed figure
//! point's complete per-handover ledger (one JSON record per handover:
//! kind, from→to, depart/arrive, first-delivery gap, buffered/lost/
//! duplicate counts) for external plotting of gap distributions.
//!
//! Every curve comes from the protocol registry, so a protocol registered
//! via `mhh_mobsim::protocols::register` before the sweep gains a column in
//! both figures automatically.
//!
//! Results are printed as tables and written as JSON next to the repository's
//! EXPERIMENTS.md.

use mhh_suite::mobility::sweep::available_workers;
use mhh_suite::mobsim::experiments::{
    failure_panel_budgeted_in, reliability_panel_budgeted_in, traffic_panel_budgeted_in,
    FigureResult, FIG5_CONN_PERIODS_S, FIG6_GRID_SIDES,
};
use mhh_suite::mobsim::report::{
    failure_to_json, figure_ledgers_json, proclaimed_to_json, reliability_to_json,
    render_failure_panel, render_figure, render_proclaimed, render_reliability_panel,
    render_traffic, to_json, traffic_to_json,
};
use mhh_suite::mobsim::{
    scenarios, ProtocolRegistry, Sim, SimBuilder, FAILURE_PRESETS, TRAFFIC_PRESETS,
};

/// Parse `--workers N` (defaults to all cores).
fn workers_flag(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(available_workers)
}

/// Parse `--budget-ms N` (default: unbudgeted).
fn budget_flag(args: &[String]) -> Option<u64> {
    args.iter()
        .position(|a| a == "--budget-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
}

/// Parse `--dump-ledger <path>` (default: no ledger export).
fn dump_ledger_flag(args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == "--dump-ledger")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse `--engine-workers K` (default: serial engine).
fn engine_workers_flag(args: &[String]) -> Option<usize> {
    args.iter()
        .position(|a| a == "--engine-workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
}

fn builder(
    scenario: &str,
    paper_scale: bool,
    workers: usize,
    budget_ms: Option<u64>,
    engine_workers: Option<usize>,
) -> SimBuilder {
    let mut b = Sim::scenario(scenario).workers(workers);
    if let Some(ms) = budget_ms {
        b = b.budget_ms(ms);
    }
    if let Some(k) = engine_workers {
        b = b.engine_workers(k);
    }
    if paper_scale {
        b
    } else {
        b.grid_side(7).clients_per_broker(5).configure(|c| {
            c.publish_interval_s = 60.0;
            c.duration_s = 900.0;
        })
    }
}

fn report_skipped(skipped: &[String]) {
    if !skipped.is_empty() {
        println!(
            "budget exhausted: {} point(s) skipped: {}",
            skipped.len(),
            skipped.join(", ")
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper-scale");
    let workers = workers_flag(&args);
    let budget_ms = budget_flag(&args);
    let dump_ledger = dump_ledger_flag(&args);
    let engine_workers = engine_workers_flag(&args);
    let mut executed_figures: Vec<FigureResult> = Vec::new();
    let modes = [
        "fig5",
        "fig6",
        "handover",
        "failure",
        "traffic",
        "reliability",
    ];
    let explicit = args.iter().any(|a| modes.contains(&a.as_str()));
    // Without an explicit mode the example keeps its documented default:
    // both figures. The handover comparison and failure panel are opt-in.
    let want = |name: &str| {
        if explicit {
            args.iter().any(|a| a == name)
        } else {
            name == "fig5" || name == "fig6"
        }
    };

    println!(
        "running at {} scale with {workers} workers{}{}",
        if paper_scale { "paper" } else { "reduced" },
        budget_ms
            .map(|ms| format!(", {ms} ms budget per sweep"))
            .unwrap_or_default(),
        engine_workers
            .map(|k| format!(", {k}-shard parallel engine"))
            .unwrap_or_default()
    );

    if want("fig5") {
        let conn: &[f64] = if paper_scale {
            &FIG5_CONN_PERIODS_S
        } else {
            &[1.0, 10.0, 100.0, 1_000.0]
        };
        let fig = builder(
            "paper-fig5",
            paper_scale,
            workers,
            budget_ms,
            engine_workers,
        )
        .figure5(conn)
        .expect("paper-fig5 is registered");
        println!("{}", render_figure(&fig));
        report_skipped(&fig.skipped);
        std::fs::write("figure5.json", to_json(&fig)).expect("write figure5.json");
        println!("wrote figure5.json");
        executed_figures.push(fig);
    }
    if want("fig6") {
        let sides: &[usize] = if paper_scale {
            &FIG6_GRID_SIDES
        } else {
            &[5, 7, 10]
        };
        let fig = builder(
            "paper-fig6",
            paper_scale,
            workers,
            budget_ms,
            engine_workers,
        )
        .figure6(sides)
        .expect("paper-fig6 is registered");
        println!("{}", render_figure(&fig));
        report_skipped(&fig.skipped);
        std::fs::write("figure6.json", to_json(&fig)).expect("write figure6.json");
        println!("wrote figure6.json");
        executed_figures.push(fig);
    }
    if want("handover") {
        let cmp = builder(
            "paper-fig5",
            paper_scale,
            workers,
            budget_ms,
            engine_workers,
        )
        .compare_proclaimed()
        .expect("paper-fig5 is registered");
        println!("{}", render_proclaimed(&cmp));
        report_skipped(&cmp.skipped);
        std::fs::write("handover.json", proclaimed_to_json(&cmp)).expect("write handover.json");
        println!("wrote handover.json");
    }
    if want("failure") {
        let presets: Vec<_> = FAILURE_PRESETS
            .iter()
            .map(|name| scenarios::find(name).expect("failure preset registered"))
            .collect();
        let panel = failure_panel_budgeted_in(
            &ProtocolRegistry::extended(),
            &presets,
            workers,
            budget_ms.map(std::time::Duration::from_millis),
        );
        println!("{}", render_failure_panel(&panel));
        report_skipped(&panel.skipped);
        std::fs::write("failure_panel.json", failure_to_json(&panel))
            .expect("write failure_panel.json");
        println!("wrote failure_panel.json");
    }
    if want("traffic") {
        let presets: Vec<_> = TRAFFIC_PRESETS
            .iter()
            .map(|name| scenarios::find(name).expect("storm preset registered"))
            .collect();
        let panel = traffic_panel_budgeted_in(
            &presets,
            workers,
            budget_ms.map(std::time::Duration::from_millis),
        );
        println!("{}", render_traffic(&panel));
        report_skipped(&panel.skipped);
        std::fs::write("traffic_panel.json", traffic_to_json(&panel))
            .expect("write traffic_panel.json");
        println!("wrote traffic_panel.json");
    }
    if want("reliability") {
        let base = scenarios::find("lossy-crash-storm")
            .expect("lossy-crash-storm preset registered")
            .config;
        let panel = reliability_panel_budgeted_in(
            &ProtocolRegistry::extended(),
            &base,
            workers,
            budget_ms.map(std::time::Duration::from_millis),
        );
        println!("{}", render_reliability_panel(&panel));
        report_skipped(&panel.skipped);
        std::fs::write("reliability_panel.json", reliability_to_json(&panel))
            .expect("write reliability_panel.json");
        println!("wrote reliability_panel.json");
    }
    if let Some(path) = dump_ledger {
        // One document with every executed figure's per-handover records,
        // for external plotting of gap distributions.
        let docs: Vec<String> = executed_figures.iter().map(figure_ledgers_json).collect();
        let doc = format!("[{}]\n", docs.join(","));
        std::fs::write(&path, doc).expect("write ledger dump");
        println!(
            "wrote {path} ({} figure(s), {} handover record(s))",
            executed_figures.len(),
            executed_figures
                .iter()
                .flat_map(|f| f.points.iter())
                .map(|p| p.result.ledger.len())
                .sum::<usize>()
        );
    }
}
