//! Reproduce the paper's evaluation figures.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example reproduce_figures            # both figures, reduced scale
//! cargo run --release --example reproduce_figures -- fig5    # Figure 5 only
//! cargo run --release --example reproduce_figures -- fig6    # Figure 6 only
//! cargo run --release --example reproduce_figures -- fig5 --paper-scale
//! ```
//!
//! By default the sweeps run at a reduced scale (49 brokers, 5 clients per
//! broker) so the whole run finishes in a few minutes on a laptop while
//! preserving the figure *shapes*; `--paper-scale` switches to the paper's
//! full 100-broker / 1000-client environment (Figure 5) and 25–196 brokers
//! (Figure 6), which takes considerably longer.
//!
//! Results are printed as tables and written as JSON next to the repository's
//! EXPERIMENTS.md.

use mhh_suite::mobsim::experiments::{FIG5_CONN_PERIODS_S, FIG6_GRID_SIDES};
use mhh_suite::mobsim::report::{render_figure, to_json};
use mhh_suite::mobsim::{figure5, figure6, ScenarioConfig};

fn reduced_base() -> ScenarioConfig {
    ScenarioConfig {
        grid_side: 7,
        clients_per_broker: 5,
        publish_interval_s: 60.0,
        duration_s: 900.0,
        ..ScenarioConfig::paper_defaults()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper-scale");
    let want = |name: &str| {
        args.is_empty() || args.iter().any(|a| a == name) || (args.len() == 1 && paper_scale)
    };

    let base = if paper_scale {
        ScenarioConfig::paper_defaults()
    } else {
        reduced_base()
    };
    println!(
        "running with {} brokers, {} clients per broker (paper scale: {})",
        base.broker_count(),
        base.clients_per_broker,
        paper_scale
    );

    if want("fig5") {
        let conn: &[f64] = if paper_scale {
            &FIG5_CONN_PERIODS_S
        } else {
            &[1.0, 10.0, 100.0, 1_000.0]
        };
        let fig = figure5(&base, conn);
        println!("{}", render_figure(&fig));
        std::fs::write("figure5.json", to_json(&fig)).expect("write figure5.json");
        println!("wrote figure5.json");
    }
    if want("fig6") {
        let sides: &[usize] = if paper_scale {
            &FIG6_GRID_SIDES
        } else {
            &[5, 7, 10]
        };
        let fig = figure6(&base, sides);
        println!("{}", render_figure(&fig));
        std::fs::write("figure6.json", to_json(&fig)).expect("write figure6.json");
        println!("wrote figure6.json");
    }
}
