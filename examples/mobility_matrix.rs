//! Run the mobility-model × protocol matrix the paper never had: every
//! registered mobility model against MHH, sub-unsub and home-broker on one
//! shared base scenario, sweeping in parallel over all cores.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example mobility_matrix                 # reduced scale
//! cargo run --release --example mobility_matrix -- --paper-scale
//! cargo run --release --example mobility_matrix -- --json       # also dump JSON
//! ```

use std::sync::Arc;

use mhh_suite::mobility::sweep::available_workers;
use mhh_suite::mobility::{ModelKind, TraceRecord};
use mhh_suite::mobsim::experiments::mobility_matrix;
use mhh_suite::mobsim::report::{matrix_to_json, render_matrix};
use mhh_suite::mobsim::ScenarioConfig;

fn reduced_base() -> ScenarioConfig {
    ScenarioConfig {
        grid_side: 6,
        clients_per_broker: 4,
        mobile_fraction: 0.25,
        conn_mean_s: 60.0,
        disc_mean_s: 30.0,
        publish_interval_s: 20.0,
        duration_s: 600.0,
        ..ScenarioConfig::paper_defaults()
    }
}

/// A playback trace that chains from the workload's home assignment
/// (client i starts at broker i % broker_count), so the matrix can include
/// the regression model alongside the synthetic ones. Departure times are
/// derived from the scenario's disconnection gap (playback reconnects
/// `disc_mean_s` after departing), so the records chain at any scale
/// instead of degenerating when the gap is long (paper scale: 300 s).
fn demo_trace(config: &ScenarioConfig) -> ModelKind {
    let gap = config.disc_mean_s;
    let hop = |n: f64| 60.0 + n * (gap + 60.0);
    ModelKind::TracePlayback(Arc::new(vec![
        TraceRecord {
            at_s: hop(0.0),
            client: 0,
            from: 0,
            to: 7,
        },
        TraceRecord {
            at_s: hop(1.0),
            client: 0,
            from: 7,
            to: 14,
        },
        TraceRecord {
            at_s: hop(2.0),
            client: 0,
            from: 14,
            to: 0,
        },
        TraceRecord {
            at_s: hop(0.5),
            client: 5,
            from: 5,
            to: 12,
        },
        TraceRecord {
            at_s: hop(1.5),
            client: 5,
            from: 12,
            to: 5,
        },
        TraceRecord {
            at_s: hop(0.25),
            client: 9,
            from: 9,
            to: 10,
        },
    ]))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper-scale");
    let dump_json = args.iter().any(|a| a == "--json");

    let base = if paper_scale {
        ScenarioConfig::paper_defaults()
    } else {
        reduced_base()
    };
    let mut models = ModelKind::synthetic();
    models.push(demo_trace(&base));

    eprintln!(
        "running {} models x 3 protocols on {} brokers ({} workers)...",
        models.len(),
        base.broker_count(),
        available_workers()
    );
    let matrix = mobility_matrix(&base, &models);
    print!("{}", render_matrix(&matrix));

    if dump_json {
        println!("{}", matrix_to_json(&matrix));
    }
}
