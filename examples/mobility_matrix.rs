//! Run the mobility-model × protocol matrix the paper never had: every
//! mobility model (at one or more parameter points) against every protocol
//! in the registry, on one shared base scenario, sweeping in parallel.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example mobility_matrix                 # reduced scale
//! cargo run --release --example mobility_matrix -- --paper-scale
//! cargo run --release --example mobility_matrix -- --json       # also dump JSON
//! cargo run --release --example mobility_matrix -- --workers 4
//! cargo run --release --example mobility_matrix -- --trace moves.csv
//! cargo run --release --example mobility_matrix -- --budget-ms 30000
//! ```
//!
//! `--trace FILE` replaces the built-in demo trace with a real move list:
//! one `(time, client, from, to)` record per line (CSV or whitespace
//! separated, `#` comments and a header line allowed). Parse errors report
//! the offending line number.
//!
//! `--budget-ms N` bounds the matrix's wall-clock: cells that cannot start
//! before the budget elapses are skipped and *recorded* in the output (and
//! in the JSON's `skipped` array) instead of silently truncating.
//!
//! The protocol axis is fully data-driven: the matrix iterates the protocol
//! registry, so protocols registered via `mhh_mobsim::protocols::register`
//! before this runs appear as extra columns.

use std::sync::Arc;

use mhh_suite::mobility::sweep::available_workers;
use mhh_suite::mobility::{parse_trace, ModelKind, TraceRecord};
use mhh_suite::mobsim::report::{matrix_to_json, render_matrix};
use mhh_suite::mobsim::{Sim, SimBuilder};

fn reduced(b: SimBuilder) -> SimBuilder {
    b.grid_side(6).clients_per_broker(4).configure(|c| {
        c.mobile_fraction = 0.25;
        c.conn_mean_s = 60.0;
        c.disc_mean_s = 30.0;
        c.publish_interval_s = 20.0;
        c.duration_s = 600.0;
    })
}

/// A playback trace that chains from the workload's home assignment
/// (client i starts at broker i % broker_count), so the matrix can include
/// the regression model alongside the synthetic ones. Departure times are
/// derived from the scenario's disconnection gap (playback reconnects
/// `disc_mean_s` after departing), so the records chain at any scale
/// instead of degenerating when the gap is long (paper scale: 300 s).
fn demo_trace(disc_mean_s: f64) -> Vec<TraceRecord> {
    let hop = |n: f64| 60.0 + n * (disc_mean_s + 60.0);
    vec![
        TraceRecord {
            at_s: hop(0.0),
            client: 0,
            from: 0,
            to: 7,
        },
        TraceRecord {
            at_s: hop(1.0),
            client: 0,
            from: 7,
            to: 14,
        },
        TraceRecord {
            at_s: hop(2.0),
            client: 0,
            from: 14,
            to: 0,
        },
        TraceRecord {
            at_s: hop(0.5),
            client: 5,
            from: 5,
            to: 12,
        },
        TraceRecord {
            at_s: hop(1.5),
            client: 5,
            from: 12,
            to: 5,
        },
        TraceRecord {
            at_s: hop(0.25),
            client: 9,
            from: 9,
            to: 10,
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper-scale");
    let dump_json = args.iter().any(|a| a == "--json");
    let workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(available_workers);
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1));
    let budget_ms: Option<u64> = args
        .iter()
        .position(|a| a == "--budget-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok());

    let builder = {
        let mut b = Sim::scenario("paper-fig5").workers(workers);
        if let Some(ms) = budget_ms {
            b = b.budget_ms(ms);
        }
        if paper_scale {
            b
        } else {
            reduced(b)
        }
    };
    let config = builder
        .clone()
        .build_config()
        .expect("paper-fig5 is registered");

    let playback = match trace_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read trace file {path}: {e}");
                std::process::exit(2);
            });
            match parse_trace(&text) {
                Ok(records) => {
                    eprintln!("loaded {} trace records from {path}", records.len());
                    records
                }
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => demo_trace(config.disc_mean_s),
    };

    let mut models = ModelKind::synthetic();
    models.push(ModelKind::TracePlayback(Arc::new(playback)));

    eprintln!(
        "running {} model parameter points x the protocol registry on {} brokers ({workers} workers)...",
        models.len(),
        config.broker_count(),
    );
    let matrix = builder.matrix(&models).expect("paper-fig5 is registered");
    print!("{}", render_matrix(&matrix));
    if !matrix.skipped.is_empty() {
        eprintln!(
            "budget exhausted: {} cell(s) skipped: {}",
            matrix.skipped.len(),
            matrix.skipped.join(", ")
        );
    }

    if dump_json {
        println!("{}", matrix_to_json(&matrix));
    }
}
