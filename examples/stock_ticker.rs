//! Stock-ticker scenario: content-based subscriptions over a quote stream
//! with mobile traders, comparing every registered protocol on the exact
//! same hand-built workload.
//!
//! Traders subscribe to price ranges of specific symbols; a market-data
//! gateway publishes quotes; traders roam between office, home and mobile
//! base stations. The example prints, per protocol, the handoff metrics and
//! the delivery audit — the home-broker baseline typically shows loss.
//!
//! Unlike the evaluation harness, the workload here is scheduled by hand on
//! a raw [`Deployment`] — and the deployment is *dyn-dispatched*
//! (`Deployment<Box<dyn DynProtocol>>`), so one non-generic `drive`
//! function runs whatever the protocol registry provides, including
//! protocols registered by downstream crates.
//!
//! Run with: `cargo run --release --example stock_ticker`

use mhh_suite::mobsim::{protocols::ProtocolRegistry, ScenarioConfig};
use mhh_suite::pubsub::delivery::{audit, SubscriberLog};
use mhh_suite::pubsub::event::EventBuilder;
use mhh_suite::pubsub::{
    BrokerId, ClientAction, ClientId, ClientSpec, Deployment, DeploymentConfig, DynProtocol, Event,
    Filter, Op,
};
use mhh_suite::simnet::{SimDuration, SimTime};

const SYMBOLS: [&str; 4] = ["ACME", "GLOBEX", "INITECH", "UMBRELLA"];

fn trader_specs() -> Vec<ClientSpec> {
    // Twelve traders spread over a 5×5 metro grid; trader i watches one
    // symbol above a price threshold. Trader 0..3 are mobile.
    (0..12)
        .map(|i| ClientSpec {
            filter: Filter::single("symbol", Op::Eq, SYMBOLS[i % SYMBOLS.len()]).and(
                "price",
                Op::Ge,
                50.0 + (i as f64 % 3.0) * 10.0,
            ),
            home: BrokerId((i * 2 % 25) as u32),
            mobile: i < 4,
            initially_attached: true,
        })
        .chain(std::iter::once(ClientSpec {
            // The market-data gateway: publishes, subscribes to nothing real.
            filter: Filter::single("symbol", Op::Eq, "NONE"),
            home: BrokerId(12),
            mobile: false,
            initially_attached: true,
        }))
        .collect()
}

fn quote(id: u64, seq: u64, gateway: ClientId) -> Event {
    let symbol = SYMBOLS[(id as usize) % SYMBOLS.len()];
    let price = 40.0 + ((id * 7919) % 600) as f64 / 10.0;
    EventBuilder::new()
        .attr("symbol", symbol)
        .attr("price", price)
        .attr("volume", ((id * 13) % 1000) as i64)
        .build(id, gateway, seq)
}

/// Drive the hand-built workload on a dyn-dispatched deployment. Not
/// generic: the same compiled function runs every registry protocol.
fn drive(mut dep: Deployment<Box<dyn DynProtocol>>) -> (String, String) {
    let gateway = ClientId(12);
    // 600 quotes, one every 50 ms.
    for i in 0..600u64 {
        dep.schedule_publish(
            SimTime::from_millis(10 + i * 50),
            gateway,
            quote(i, i, gateway),
        );
    }
    // The four mobile traders commute twice during the stream.
    for t in 0..4u32 {
        let c = ClientId(t);
        for (leg, target) in [(1_u64, 6 + t), (2, 18 + t)] {
            let leave = SimTime::from_millis(5_000 * leg + t as u64 * 400);
            let arrive = leave + SimDuration::from_millis(1_200);
            dep.schedule(
                leave,
                c,
                ClientAction::Disconnect {
                    proclaimed_dest: None,
                },
            );
            dep.schedule(
                arrive,
                c,
                ClientAction::Reconnect {
                    broker: BrokerId(target),
                },
            );
        }
    }
    dep.engine.run_to_completion();

    let published: Vec<Event> = dep.clients().flat_map(|c| c.published.clone()).collect();
    let buffered = dep.buffered_events();
    let logs: Vec<(ClientId, Filter, Vec<mhh_suite::pubsub::DeliveryRecord>)> = dep
        .clients()
        .filter(|c| c.id != gateway)
        .map(|c| (c.id, c.filter.clone(), c.received.clone()))
        .collect();
    let subs: Vec<SubscriberLog<'_>> = logs
        .iter()
        .map(|(id, f, recs)| SubscriberLog {
            client: *id,
            filter: f,
            deliveries: recs,
        })
        .collect();
    let a = audit(&published, &subs, &buffered);

    let handoffs: usize = dep.clients().map(|c| c.handoff_count()).sum();
    let delays: Vec<f64> = dep.clients().flat_map(|c| c.handoff_delays()).collect();
    let avg_delay = if delays.is_empty() {
        0.0
    } else {
        delays.iter().sum::<f64>() / delays.len() as f64
    };
    let stats = dep.engine.stats();
    let metrics = format!(
        "handoffs {:2} | avg delay {:7.1} ms | mobility hops {:6} | overhead/handoff {:7.1}",
        handoffs,
        avg_delay,
        stats.mobility_hops(),
        stats.mobility_hops() as f64 / handoffs.max(1) as f64
    );
    let reliability = format!(
        "expected {:5} delivered {:5} lost {:3} dup {:3} out-of-order {:3} pending {:3}",
        a.expected, a.delivered, a.lost, a.duplicates, a.out_of_order, a.pending
    );
    (metrics, reliability)
}

fn main() {
    let config = DeploymentConfig {
        grid_side: 5,
        seed: 99,
        ..DeploymentConfig::default()
    };
    let specs = trader_specs();

    // Protocol constructors see a ScenarioConfig to derive run-wide
    // parameters (the sub-unsub safety interval needs the overlay
    // diameter); mirror the deployment's shape into one.
    let scenario = ScenarioConfig {
        grid_side: config.grid_side,
        seed: config.seed,
        ..ScenarioConfig::paper_defaults()
    };

    println!("=== stock ticker: 25 brokers, 12 traders (4 mobile), 600 quotes ===");
    // One shared network per protocol comparison: topology, overlay and
    // routing tables are built once and reused by every deployment.
    let network = scenario.build_network();
    for spec in ProtocolRegistry::global().specs() {
        let factory = spec.instantiate(&scenario, &network);
        let dep: Deployment<Box<dyn DynProtocol>> =
            Deployment::build_on(network.clone(), &config, &specs, factory);
        let (m, r) = drive(dep);
        println!("{:11} {m}\n            {r}", spec.label());
    }
}
