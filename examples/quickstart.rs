//! Quickstart: build a small broker grid, attach a mobile subscriber and a
//! publisher, move the subscriber with the MHH protocol and show that every
//! event is delivered exactly once and in order.
//!
//! Run with: `cargo run --release --example quickstart`

use mhh_suite::mhh::Mhh;
use mhh_suite::pubsub::event::EventBuilder;
use mhh_suite::pubsub::{
    BrokerId, ClientAction, ClientId, ClientSpec, Deployment, DeploymentConfig, Filter, Op,
};
use mhh_suite::simnet::SimTime;

fn main() {
    // A 4×4 grid of brokers (base stations).
    let config = DeploymentConfig {
        grid_side: 4,
        seed: 1,
        ..DeploymentConfig::default()
    };

    // Client 0: a mobile subscriber interested in temperature alerts.
    // Client 1: a stationary sensor publishing readings.
    let alert_filter = Filter::single("kind", Op::Eq, "temperature").and("celsius", Op::Ge, 30.0);
    let clients = vec![
        ClientSpec {
            filter: alert_filter.clone(),
            home: BrokerId(0),
            mobile: true,
        },
        ClientSpec {
            filter: Filter::single("kind", Op::Eq, "none"),
            home: BrokerId(10),
            mobile: false,
        },
    ];
    let mut dep: Deployment<Mhh> = Deployment::build(&config, &clients, |_| Mhh::new());

    // The sensor publishes one reading every 200 ms; half of them are hot
    // enough to match the subscription.
    for i in 0..40u64 {
        let event = EventBuilder::new()
            .attr("kind", "temperature")
            .attr("celsius", 20.0 + (i % 4) as f64 * 5.0)
            .build(i, ClientId(1), i);
        dep.schedule_publish(SimTime::from_millis(10 + i * 200), ClientId(1), event);
    }

    // The subscriber walks away from broker 0 at t = 2 s and reappears at the
    // far corner of the grid two seconds later (a silent move).
    dep.schedule(
        SimTime::from_millis(2_000),
        ClientId(0),
        ClientAction::Disconnect {
            proclaimed_dest: None,
        },
    );
    dep.schedule(
        SimTime::from_millis(4_000),
        ClientId(0),
        ClientAction::Reconnect {
            broker: BrokerId(15),
        },
    );

    dep.engine.run_to_completion();

    let subscriber = dep.client(ClientId(0));
    println!("=== MHH quickstart ===");
    println!(
        "events published           : {}",
        dep.client(ClientId(1)).published.len()
    );
    println!("alerts delivered to client : {}", subscriber.received.len());
    println!(
        "handoffs performed         : {}",
        subscriber.handoff_count()
    );
    println!(
        "handoff delay              : {:.1} ms",
        subscriber.handoff_delays().first().copied().unwrap_or(0.0)
    );
    let stats = dep.engine.stats();
    println!(
        "mobility traffic           : {} messages / {} hops",
        stats.mobility_messages(),
        stats.mobility_hops()
    );

    // Exactly-once, ordered delivery: sequence numbers from the single
    // publisher must be strictly increasing with no duplicates.
    let seqs: Vec<u64> = subscriber.received.iter().map(|r| r.seq).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(seqs.len(), sorted.len(), "no duplicates");
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "publisher order preserved"
    );
    println!("delivery check             : exactly-once, in order ✓");
}
