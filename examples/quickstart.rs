//! Quickstart: the fluent `Sim` facade — pick a named scenario, pick a
//! protocol from the registry, override what you like, run, and compare all
//! registered protocols on the identical workload.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! With a scenario name as argument (`quickstart -- vehicular-commute`) it
//! instead smoke-runs that preset at reduced scale for every registered
//! protocol — the CI example matrix uses this to exercise new presets. Two
//! flags tune the smoke mode:
//!
//! * `--full` keeps the preset at its registered scale (CI uses this to
//!   smoke the `city-scale` stress preset at its real 2k-client size);
//! * `--budget-ms <N>` bounds the wall clock: protocols that cannot start
//!   before the budget elapses are skipped and reported, never hung on;
//! * `--engine-workers <K>` runs each simulation on the windowed parallel
//!   engine with `K` shards — results are byte-identical to the serial
//!   engine, so CI smokes the parallel backend with the same assertions.

use std::sync::Arc;

use mhh_suite::mobility::{ModelKind, TraceRecord};
use mhh_suite::mobsim::{protocols::ProtocolRegistry, scenarios, Sim};

/// Smoke-run a named preset across every registered protocol.
fn smoke(name: &str, full: bool, budget_ms: Option<u64>, engine_workers: Option<usize>) {
    let scale = if full { "full scale" } else { "reduced scale" };
    match engine_workers {
        Some(k) => println!("=== smoke: {name} ({scale}, {k}-shard parallel engine) ==="),
        None => println!("=== smoke: {name} ({scale}) ==="),
    }
    let mut sim = Sim::scenario(name);
    if let Some(k) = engine_workers {
        sim = sim.engine_workers(k);
    }
    let preset = scenarios::find(name);
    let storm = preset.as_ref().is_some_and(|s| s.config.is_storm());
    // Late joiners miss events published before they join (they get only
    // the retained last-value replay, as in MQTT), so the delivery oracle
    // counts those as lost by design; only a fully-attached storm must be
    // loss-free.
    let late_joiners = preset
        .as_ref()
        .is_some_and(|s| s.config.late_subscriber_fraction > 0.0);
    // Lossy links and injected faults make losses legitimate; the oracle
    // there is exact accounting, not perfection.
    let lossy = preset
        .as_ref()
        .is_some_and(|s| s.config.loss_model().is_some() || !s.config.faults.is_empty());
    if !full {
        if storm {
            // Storm presets keep their own grid and duration; reduced scale
            // only trims the client population.
            sim = sim.configure(|c| {
                c.storm_publishers = c.storm_publishers.min(200);
                c.storm_subscribers = c.storm_subscribers.min(400);
            });
        } else {
            sim = sim
                .grid_side(4)
                .clients_per_broker(3)
                .duration_s(300.0)
                .configure(|c| {
                    c.conn_mean_s = c.conn_mean_s.min(60.0);
                    c.disc_mean_s = c.disc_mean_s.min(30.0);
                    c.publish_interval_s = c.publish_interval_s.min(30.0);
                });
        }
    }
    if let Some(b) = budget_ms {
        sim = sim.budget_ms(b);
    }
    let (results, skipped) = sim.run_all_budgeted().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    for r in &results {
        println!(
            "  {:10} handoffs {:4} ({} proclaimed / {} reactive) | \
             overhead/handoff {:7.1} | delay {:7.1} ms | lost {:3}",
            r.protocol,
            r.handoffs,
            r.proclaimed_handoffs(),
            r.reactive_handoffs(),
            r.overhead_per_handoff,
            r.avg_handoff_delay_ms,
            r.audit.lost
        );
    }
    if !skipped.is_empty() {
        println!("  skipped under --budget-ms: {}", skipped.join(", "));
    }
    match results.iter().find(|r| r.protocol == "MHH") {
        Some(mhh) => {
            if storm {
                // Storm presets are static by design: the load is fan-out,
                // not mobility, and the byte accounting must be live.
                assert!(mhh.delivered_messages > 0, "storm must deliver events");
                assert!(mhh.traffic.delivery_bytes > 0, "storm payloads are modeled");
            } else {
                assert!(mhh.handoffs > 0, "smoke scenario must move clients");
            }
            if lossy {
                assert!(
                    mhh.recovery.reconciles_with(&mhh.audit),
                    "every loss must be accounted: {:?} vs {:?}",
                    mhh.recovery,
                    mhh.audit
                );
            } else if !late_joiners {
                assert!(mhh.reliable(), "MHH must stay reliable: {:?}", mhh.audit);
            }
        }
        None => {
            // Only a budget may drop protocols; without one this is a bug.
            assert!(
                budget_ms.is_some() && skipped.iter().any(|s| s == "MHH"),
                "MHH missing without a budget skip"
            );
            println!("  (MHH skipped by the wall-clock budget on this machine)");
        }
    }
}

fn usage_error() -> ! {
    eprintln!("usage: quickstart [<scenario> [--full] [--budget-ms <N>] [--engine-workers <K>]]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a.starts_with("--")) {
        // Flags make no sense without a scenario; falling through to the
        // tutorial would silently ignore them.
        usage_error();
    }
    if let Some(name) = args.first() {
        let full = args.iter().any(|a| a == "--full");
        fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
            args.iter().position(|a| a == flag).map(|i| {
                args.get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_error())
            })
        }
        let budget_ms: Option<u64> = flag_value(&args, "--budget-ms");
        let engine_workers: Option<usize> = flag_value(&args, "--engine-workers");
        smoke(name, full, budget_ms, engine_workers);
        return;
    }
    println!("=== MHH quickstart ===");

    // The two registries the builder ties together.
    println!("registered scenarios :");
    for s in scenarios::registry() {
        println!(
            "  {:20} {}",
            s.name,
            s.summary.split('.').next().unwrap_or("")
        );
    }
    println!("registered protocols :");
    for spec in ProtocolRegistry::global().specs() {
        println!(
            "  {:12} ({:9}) {}",
            spec.name(),
            spec.label(),
            spec.summary()
        );
    }

    // One fluent chain: the paper's Figure 5 environment, scaled down,
    // moved by a hand-written trace instead of uniform random jumps, run
    // under the MHH protocol.
    let trace = ModelKind::TracePlayback(Arc::new(vec![
        // Client 0 (home broker 0 on the 4×4 grid) tours the first column.
        TraceRecord {
            at_s: 40.0,
            client: 0,
            from: 0,
            to: 4,
        },
        TraceRecord {
            at_s: 110.0,
            client: 0,
            from: 4,
            to: 8,
        },
        TraceRecord {
            at_s: 190.0,
            client: 0,
            from: 8,
            to: 0,
        },
        // Client 5 visits the far corner and returns.
        TraceRecord {
            at_s: 75.0,
            client: 5,
            from: 5,
            to: 15,
        },
        TraceRecord {
            at_s: 150.0,
            client: 5,
            from: 15,
            to: 5,
        },
    ]));
    let result = Sim::scenario("paper-fig5")
        .protocol("mhh")
        .mobility(trace)
        .grid_side(4)
        .clients_per_broker(2)
        .duration_s(300.0)
        // Playback reconnects `disc_mean_s` after each departure; the
        // paper's 5-minute gap would overshoot the 300 s horizon.
        .configure(|c| c.disc_mean_s = 20.0)
        .run()
        .expect("scenario and protocol are registered");

    println!();
    println!(
        "one run: paper-fig5 (4x4, trace mobility) under {}",
        result.protocol
    );
    println!("  events published   : {}", result.published);
    println!("  handoffs performed : {}", result.handoffs);
    println!(
        "  overhead/handoff   : {:.1} hops",
        result.overhead_per_handoff
    );
    println!(
        "  avg handoff delay  : {:.1} ms",
        result.avg_handoff_delay_ms
    );
    assert_eq!(result.handoffs, 5, "the trace replays five moves");
    assert!(
        result.reliable(),
        "MHH is exactly-once and ordered: {:?}",
        result.audit
    );
    println!("  delivery check     : exactly-once, in order ✓");

    // The same scenario for *every* registered protocol — a paired
    // comparison over the identical seeded workload, fanned out over the
    // available cores.
    println!();
    println!("all registered protocols on the same workload:");
    let results = Sim::scenario("paper-fig5")
        .mobility(ModelKind::ManhattanGrid)
        .grid_side(4)
        .clients_per_broker(3)
        .duration_s(300.0)
        .configure(|c| {
            c.conn_mean_s = 45.0;
            c.disc_mean_s = 30.0;
            c.publish_interval_s = 60.0;
        })
        .run_all()
        .expect("builtin protocols are registered");
    for r in &results {
        println!(
            "  {:10} overhead/handoff {:7.1} | delay {:7.1} ms | lost {:3}",
            r.protocol, r.overhead_per_handoff, r.avg_handoff_delay_ms, r.audit.lost
        );
    }
    assert!(
        results.windows(2).all(|w| w[0].handoffs == w[1].handoffs),
        "paired workload: every protocol sees the same moves"
    );
}
