//! Fleet-tracking scenario: delivery vans roam a city's base stations while
//! subscribing to dispatch orders for their own zone; the dispatch centre
//! publishes orders continuously. The vans are the mobile clients; MHH keeps
//! every order exactly-once and in order even though the vans hop between
//! cells every few seconds.
//!
//! Run with: `cargo run --release --example fleet_tracking`

use mhh_suite::mhh::Mhh;
use mhh_suite::mobsim::Sim;
use mhh_suite::pubsub::event::EventBuilder;
use mhh_suite::pubsub::{
    BrokerId, ClientAction, ClientId, ClientSpec, Deployment, DeploymentConfig, Filter, Op,
};
use mhh_suite::simnet::random::DetRng;
use mhh_suite::simnet::SimTime;

fn main() {
    // Part 1: a hand-built fleet on a 6×6 city grid.
    let config = DeploymentConfig {
        grid_side: 6,
        seed: 7,
        ..DeploymentConfig::default()
    };
    let vans = 8usize;
    let zones = 4i64;
    let mut specs: Vec<ClientSpec> = (0..vans)
        .map(|i| ClientSpec {
            filter: Filter::single("zone", Op::Eq, (i as i64) % zones).and("kind", Op::Eq, "order"),
            home: BrokerId((i * 4 % 36) as u32),
            mobile: true,
            initially_attached: true,
        })
        .collect();
    // The dispatch centre.
    specs.push(ClientSpec {
        filter: Filter::single("kind", Op::Eq, "ack"),
        home: BrokerId(18),
        mobile: false,
        initially_attached: true,
    });
    let dispatch = ClientId(vans as u32);

    let mut dep: Deployment<Mhh> = Deployment::build(&config, &specs, |_| Mhh::new());

    // Orders: one every 100 ms, round-robin over zones.
    for i in 0..400u64 {
        let ev = EventBuilder::new()
            .attr("kind", "order")
            .attr("zone", (i as i64) % zones)
            .attr("priority", (i % 3) as i64)
            .build(i, dispatch, i);
        dep.schedule_publish(SimTime::from_millis(5 + i * 100), dispatch, ev);
    }
    // Vans hop cells pseudo-randomly every 3–8 seconds.
    let mut rng = DetRng::new(2024);
    for v in 0..vans as u32 {
        let mut t = 2_000 + 400 * v as u64;
        for _ in 0..4 {
            let away = 500 + rng.next_below(1_500);
            let next = rng.index(36) as u32;
            dep.schedule(
                SimTime::from_millis(t),
                ClientId(v),
                ClientAction::Disconnect {
                    proclaimed_dest: None,
                },
            );
            dep.schedule(
                SimTime::from_millis(t + away),
                ClientId(v),
                ClientAction::Reconnect {
                    broker: BrokerId(next),
                },
            );
            t += away + 3_000 + rng.next_below(5_000);
        }
    }
    dep.engine.run_to_completion();

    println!("=== fleet tracking: 36 cells, {vans} vans, 400 orders ===");
    let mut total_handoffs = 0usize;
    for van in 0..vans as u32 {
        let c = dep.client(ClientId(van));
        total_handoffs += c.handoff_count();
        let seqs: Vec<u64> = c.received.iter().map(|r| r.seq).collect();
        let ordered = seqs.windows(2).all(|w| w[0] < w[1]);
        println!(
            "van {van}: {:3} orders received, {} handoffs, ordered = {}",
            c.received.len(),
            c.handoff_count(),
            ordered
        );
        assert!(ordered, "van {van} saw out-of-order orders");
    }
    let stats = dep.engine.stats();
    println!(
        "total: {} handoffs, {} mobility hops ({:.1} hops/handoff)",
        total_handoffs,
        stats.mobility_hops(),
        stats.mobility_hops() as f64 / total_handoffs.max(1) as f64
    );

    // Part 2: the same story at workload scale through the fluent harness
    // facade, comparing every registered protocol on one configuration.
    println!();
    println!("=== harness comparison (25 brokers, 100 clients, 5 min horizon) ===");
    let results = Sim::scenario("paper-fig5")
        .grid_side(5)
        .clients_per_broker(4)
        .duration_s(300.0)
        .configure(|c| {
            c.conn_mean_s = 20.0;
            c.disc_mean_s = 40.0;
            c.publish_interval_s = 10.0;
        })
        .run_all()
        .expect("builtin protocols are registered");
    for r in results {
        println!(
            "{:11} overhead/handoff {:8.1} | delay {:7.1} ms | lost {:3} | dup {:3} | out-of-order {:3}",
            r.protocol,
            r.overhead_per_handoff,
            r.avg_handoff_delay_ms,
            r.audit.lost,
            r.audit.duplicates,
            r.audit.out_of_order
        );
    }
}
