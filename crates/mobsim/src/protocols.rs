//! The protocol registry: named constructors for mobility-management
//! protocols, mirroring the scenario registry ([`crate::scenarios`]).
//!
//! A [`ProtocolSpec`] packages everything the harness needs to run a
//! protocol it has never heard of: a kebab-case registry key, the display
//! label used in reports, a one-line summary and a constructor producing one
//! type-erased protocol instance (`Box<dyn DynProtocol>`) per broker. The
//! constructor sees the full [`ScenarioConfig`] *and* the run's shared
//! broker [`Network`] so protocols can derive run-wide parameters — the
//! sub-unsub safety interval, for example, is the overlay diameter times
//! the wired hop latency (stretched to the link model's worst case when
//! links jitter) — without rebuilding the topology.
//!
//! [`ProtocolRegistry::builtin`] carries the paper's three protocols in the
//! figures' column order (sub-unsub, MHH, home-broker). External protocols
//! join either a local registry (`registry.register(spec)`) or the
//! process-wide one ([`register`]), which every by-name lookup — notably
//! [`Sim`](crate::builder::Sim) — resolves against:
//!
//! ```
//! use mhh_mobsim::protocols::{self, ProtocolSpec};
//! use mhh_mobsim::Sim;
//! use mhh_pubsub::{erase, broker::NoProtocol};
//!
//! protocols::register(ProtocolSpec::new(
//!     "static",
//!     "static",
//!     "no mobility support: moved clients just re-subscribe",
//!     |_config, _network| Box::new(|_broker| erase(NoProtocol)),
//! ));
//! let result = Sim::scenario("trace-smoke")
//!     .protocol("static")
//!     .run()
//!     .unwrap();
//! assert_eq!(result.protocol, "static");
//! ```

use std::sync::{Arc, Mutex, OnceLock};

use mhh_baselines::{HomeBroker, Psvr, SubUnsub};
use mhh_core::Mhh;
use mhh_pubsub::{erase, BrokerId, DynProtocol};
use mhh_simnet::{Network, SimDuration};

use crate::config::ScenarioConfig;

/// Constructor producing one protocol instance per broker; the boxed
/// closure is created fresh per run, so it may carry mutable run-local
/// state.
pub type BrokerFactory = Box<dyn FnMut(BrokerId) -> Box<dyn DynProtocol>>;

/// The spec constructor: sees the scenario and the run's shared network,
/// returns the per-broker factory.
type SpecConstructor = dyn Fn(&ScenarioConfig, &Network) -> BrokerFactory + Send + Sync;

/// The sub-unsub safety interval for one run: "the maximum time for message
/// delivery between any two stations" (Section 5.1) — the overlay diameter
/// times the wired hop latency, plus one hop of slack, stretched to the
/// link model's worst case when the scenario jitters, skews or degrades
/// links. Events forward hop-by-hop over the overlay, so each of the
/// `wait_hops` links samples its **own** jitter — the bound budgets one
/// jitter allowance per hop (`worst_case_path`), not one per path. Shared
/// by the generic and the registry path.
pub fn sub_unsub_wait(config: &ScenarioConfig, network: &Network) -> SimDuration {
    let wait_hops = network.tree_diameter() as u64 + 1;
    let base = SimDuration::from_millis(wait_hops * config.wired_ms);
    match config.link_model() {
        Some(model) => model.worst_case_path(base, wait_hops),
        None => base,
    }
}

/// PSVR's subscription-lease interval. Generous relative to the scenarios'
/// typical disconnect gaps so soft-state expiry punishes genuinely
/// abandoned roots, not ordinary handoffs.
const PSVR_LEASE: SimDuration = SimDuration::from_millis(10_000);

/// The MHH constructor shared by the generic fast path
/// ([`run_scenario`](crate::runner::run_scenario)) and the registry spec, so
/// the dyn and generic paths stay byte-identical: plain [`Mhh::new`] on the
/// zero-fault fast path, [`Mhh::with_recovery`] (the migration retry/abort
/// watchdog) when the scenario injects faults.
pub(crate) fn mhh_for(config: &ScenarioConfig) -> Mhh {
    if config.faults.is_empty() {
        Mhh::new()
    } else {
        Mhh::with_recovery(SimDuration::from_secs_f64(config.faults.repair_timeout_s))
    }
}

/// One registered protocol: name, report label, summary and constructor.
#[derive(Clone)]
pub struct ProtocolSpec {
    name: String,
    label: String,
    summary: String,
    make: Arc<SpecConstructor>,
}

impl std::fmt::Debug for ProtocolSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtocolSpec")
            .field("name", &self.name)
            .field("label", &self.label)
            .field("summary", &self.summary)
            .finish_non_exhaustive()
    }
}

impl ProtocolSpec {
    /// Build a spec. `name` is the registry key (kebab-case), `label` the
    /// display string used in reports and
    /// [`RunResult::protocol`](crate::metrics::RunResult::protocol), `make`
    /// the per-run
    /// constructor.
    pub fn new(
        name: impl Into<String>,
        label: impl Into<String>,
        summary: impl Into<String>,
        make: impl Fn(&ScenarioConfig, &Network) -> BrokerFactory + Send + Sync + 'static,
    ) -> Self {
        ProtocolSpec {
            name: name.into(),
            label: label.into(),
            summary: summary.into(),
            make: Arc::new(make),
        }
    }

    /// Registry key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Display label used in reports (the paper's curve labels for the
    /// builtin three).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// One-line description.
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// Create the per-broker constructor for one run of `config` over the
    /// run's shared `network`.
    pub fn instantiate(&self, config: &ScenarioConfig, network: &Network) -> BrokerFactory {
        (self.make)(config, network)
    }
}

/// An ordered, name-keyed collection of protocol specs. Order is
/// significant: reports list protocol columns in registry order.
#[derive(Debug, Clone, Default)]
pub struct ProtocolRegistry {
    specs: Vec<ProtocolSpec>,
}

impl ProtocolRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProtocolRegistry::default()
    }

    /// The paper's three protocols, in the figures' column order.
    pub fn builtin() -> Self {
        let mut reg = ProtocolRegistry::new();
        reg.register(ProtocolSpec::new(
            "sub-unsub",
            "sub-unsub",
            "re-subscribe at the new broker, wait out the safety interval, \
             then cancel the old subscription and shuttle the stored queue",
            |config: &ScenarioConfig, network: &Network| {
                let wait = sub_unsub_wait(config, network);
                Box::new(move |_| erase(SubUnsub::new(wait)))
            },
        ));
        reg.register(ProtocolSpec::new(
            "mhh",
            "MHH",
            "the paper's multi-hop handoff protocol: anchor chain, paced \
             event migration, proclaimed and silent moves",
            |config: &ScenarioConfig, _network| {
                let config = config.clone();
                Box::new(move |_| erase(mhh_for(&config)))
            },
        ));
        reg.register(ProtocolSpec::new(
            "home-broker",
            "HB",
            "Mobile-IP style: a fixed home broker holds the subscription and \
             triangle-routes events to the client's current location",
            |_config, _network| Box::new(|_| erase(HomeBroker::new())),
        ));
        reg
    }

    /// The paper's three protocols plus PSVR, the self-stabilizing
    /// virtual-ring protocol the failure panel compares them against.
    /// Kept out of [`builtin`](Self::builtin) so the paper-reproduction
    /// experiments keep exactly the figures' three columns.
    pub fn extended() -> Self {
        let mut reg = Self::builtin();
        reg.register(ProtocolSpec::new(
            "psvr",
            "PSVR",
            "self-stabilizing virtual-ring protocol: soft-state subscription \
             leases, ring-sweep handoffs, recovery by convergence instead of \
             a dedicated dialogue",
            |_config: &ScenarioConfig, network: &Network| {
                let ring = network.broker_count() as u32;
                Box::new(move |_| erase(Psvr::new(ring, PSVR_LEASE)))
            },
        ));
        reg
    }

    /// The process-wide registry: builtin protocols plus everything added
    /// through [`register`] (the free function), as a snapshot.
    pub fn global() -> Self {
        global_lock()
            .lock()
            .expect("protocol registry poisoned")
            .clone()
    }

    /// Add (or replace, when the name is already taken) a spec. Returns
    /// `&mut self` so registrations chain.
    ///
    /// # Panics
    /// Panics when the spec's *label* is already used by a
    /// differently-named entry: results, curves and report columns are
    /// keyed by display label, so two protocols sharing one label would
    /// silently merge into one corrupted series. Use
    /// [`try_register`](Self::try_register) to handle the clash instead.
    pub fn register(&mut self, spec: ProtocolSpec) -> &mut Self {
        if let Err(msg) = self.try_register(spec) {
            panic!("{msg}");
        }
        self
    }

    /// Like [`register`](Self::register), but reports a label clash as an
    /// error instead of panicking.
    pub fn try_register(&mut self, spec: ProtocolSpec) -> Result<(), String> {
        if let Some(clash) = self
            .specs
            .iter()
            .find(|s| s.name != spec.name && s.label == spec.label)
        {
            return Err(format!(
                "protocol label {:?} of {:?} is already used by {:?}; labels \
                 key results and report columns, so they must be unique",
                spec.label, spec.name, clash.name
            ));
        }
        if let Some(existing) = self.specs.iter_mut().find(|s| s.name == spec.name) {
            *existing = spec;
        } else {
            self.specs.push(spec);
        }
        Ok(())
    }

    /// Look up a spec by registry key.
    pub fn find(&self, name: &str) -> Option<&ProtocolSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// All specs, in registration order.
    pub fn specs(&self) -> &[ProtocolSpec] {
        &self.specs
    }

    /// All registry keys, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.specs.iter().map(|s| s.name.as_str()).collect()
    }

    /// Number of registered protocols.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

fn global_lock() -> &'static Mutex<ProtocolRegistry> {
    static GLOBAL: OnceLock<Mutex<ProtocolRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(ProtocolRegistry::builtin()))
}

/// Register a protocol process-wide, making it resolvable by name from
/// [`Sim::protocol`](crate::builder::SimBuilder::protocol), `run_named` and
/// the registry-driven experiments. Same-name registration replaces.
///
/// # Panics
/// Panics (without poisoning the registry) when the label is already used
/// by a differently-named entry — see [`ProtocolRegistry::register`].
pub fn register(spec: ProtocolSpec) {
    let result = global_lock()
        .lock()
        .expect("protocol registry poisoned")
        .try_register(spec);
    if let Err(msg) = result {
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhh_pubsub::broker::NoProtocol;

    #[test]
    fn builtin_lists_the_papers_three_in_figure_order() {
        let reg = ProtocolRegistry::builtin();
        assert_eq!(reg.names(), vec!["sub-unsub", "mhh", "home-broker"]);
        assert!(reg.len() >= 3);
        assert!(reg.find("mhh").is_some());
        assert!(reg.find("no-such-protocol").is_none());
    }

    #[test]
    fn every_builtin_constructs_a_protocol_reporting_its_own_name() {
        let config = ScenarioConfig::small();
        for spec in ProtocolRegistry::builtin().specs() {
            let network = config.build_network();
            let mut factory = spec.instantiate(&config, &network);
            let proto = factory(BrokerId(0));
            // The protocol's self-reported name round-trips to the registry
            // entry it came from: it is either the registry key ("home-
            // broker") or the report label ("MHH", which abbreviates to the
            // "HB"-style curve labels only in tables).
            assert!(
                proto.name() == spec.name() || proto.name() == spec.label(),
                "spec {} constructed a protocol calling itself {:?}",
                spec.name(),
                proto.name()
            );
        }
    }

    #[test]
    fn extended_adds_psvr_after_the_builtin_three() {
        let reg = ProtocolRegistry::extended();
        assert_eq!(reg.names(), vec!["sub-unsub", "mhh", "home-broker", "psvr"]);
        assert_eq!(reg.find("psvr").unwrap().label(), "PSVR");
        // The paper-reproduction registry stays exactly the figures' three.
        assert_eq!(ProtocolRegistry::builtin().len(), 3);
        let config = ScenarioConfig::small();
        let network = config.build_network();
        let mut factory = reg.find("psvr").unwrap().instantiate(&config, &network);
        assert_eq!(factory(BrokerId(0)).name(), "PSVR");
    }

    #[test]
    fn mhh_constructor_is_fault_aware() {
        use crate::config::FaultPlan;
        let plain = ScenarioConfig::small();
        assert_eq!(
            format!("{:?}", mhh_for(&plain)),
            format!("{:?}", Mhh::new()),
            "zero-fault scenarios construct the stock protocol"
        );
        let faulty = plain.with_faults(FaultPlan {
            broker_crashes: vec![(0, 1.0, 2.0)],
            ..FaultPlan::default()
        });
        assert_ne!(
            format!("{:?}", mhh_for(&faulty)),
            format!("{:?}", Mhh::new()),
            "fault plans arm the migration retry watchdog"
        );
    }

    #[test]
    fn local_registration_is_open_and_replaces_by_name() {
        let mut reg = ProtocolRegistry::builtin();
        reg.register(ProtocolSpec::new(
            "static",
            "static",
            "no mobility support",
            |_, _| Box::new(|_| erase(NoProtocol)),
        ));
        assert_eq!(reg.len(), 4);
        assert_eq!(reg.find("static").unwrap().label(), "static");
        // Replacement keeps the count and position.
        reg.register(ProtocolSpec::new(
            "static",
            "static-v2",
            "replaced",
            |_, _| Box::new(|_| erase(NoProtocol)),
        ));
        assert_eq!(reg.len(), 4);
        assert_eq!(reg.find("static").unwrap().label(), "static-v2");
        assert_eq!(reg.names()[3], "static");
    }

    #[test]
    #[should_panic(expected = "labels key results")]
    fn label_collisions_across_names_are_rejected() {
        // Results, curves and report columns are keyed by label; a second
        // name with the builtin "MHH" label would silently merge series.
        let mut reg = ProtocolRegistry::builtin();
        reg.register(ProtocolSpec::new(
            "mhh-tuned",
            "MHH",
            "tuned variant reusing the builtin label",
            |_, _| Box::new(|_| erase(Mhh::new())),
        ));
    }
}
