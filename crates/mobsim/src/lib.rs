//! # mhh-mobsim — evaluation harness
//!
//! Recreates the experimental environment of Section 5 of the MHH paper:
//! a k×k grid of base stations acting as event brokers, 10 clients per
//! broker, 20 % of clients mobile with exponentially distributed connection
//! and disconnection periods, one event per client per five minutes, and a
//! content-based workload tuned so each event matches 6.25 % of the clients.
//!
//! The harness runs any registered protocol on identical pre-generated
//! workloads, collects the paper's two metrics — *message overhead per
//! handoff* (hops) and *average handoff delay* — plus a
//! delivery-reliability audit, and sweeps the parameters of Figure 5
//! (connection-period length) and Figure 6 (network size), as well as the
//! mobility-model × protocol matrix enabled by `mhh-mobility`. Sweep points
//! are independent simulations and run in parallel on scoped worker threads
//! ([`mhh_mobility::sweep`]).
//!
//! Both experiment axes are open registries:
//!
//! * named scenario presets live in [`scenarios`];
//! * named protocol constructors live in [`protocols`] — the paper's three
//!   are builtin, external protocols join via
//!   [`protocols::register`] and run dyn-dispatched
//!   (`Box<dyn DynProtocol>`) through the exact same harness.
//!
//! Beyond the paper's fault-free setting, every scenario can carry a
//! [`FaultPlan`] (broker crashes, link partitions, region outages, or a
//! seeded crash storm). The runner compiles the plan into a
//! `simnet` fault schedule, schedules the overlay-repair drives from
//! `mhh-pubsub`, and attributes every lost or duplicated delivery to the
//! outage window that caused it in a per-run [`RecoveryLedger`] that
//! reconciles exactly with the delivery audit. The
//! [`experiments::failure_panel`] experiment compares all four protocols
//! (including the self-stabilizing PSVR variant from
//! [`ProtocolRegistry::extended`]) on the failure presets.
//!
//! The [`Sim`] builder is the one fluent entry point tying the axes
//! together:
//!
//! ```
//! use mhh_mobsim::{ModelKind, Sim};
//!
//! let result = Sim::scenario("trace-smoke")
//!     .protocol("mhh")
//!     .run()
//!     .unwrap();
//! assert!(result.reliable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod config;
pub mod experiments;
pub mod json;
pub mod metrics;
pub mod protocols;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod workload;

pub use builder::{Sim, SimBuilder, SimError};
pub use config::{FaultPlan, Protocol, ScenarioConfig};
pub use experiments::{
    failure_panel, figure5, figure6, mobility_matrix, proclaimed_comparison, reliability_panel,
    traffic_panel, ExperimentPoint, FailurePanelPoint, FailurePanelResult, FigureResult,
    MatrixPoint, MatrixResult, ProclaimedComparePoint, ProclaimedCompareResult,
    ReliabilityPanelPoint, ReliabilityPanelResult, TrafficPanelPoint, TrafficPanelResult,
    FAILURE_PRESETS, RELIABILITY_MODES, TRAFFIC_PRESETS,
};
pub use metrics::{
    GapPercentiles, HandoverKind, HandoverLedger, HandoverRecord, OutageRecord, RecoveryLedger,
    RunResult, TrafficReport,
};
pub use mhh_mobility::ModelKind;
pub use mhh_pubsub::FanoutMode;
pub use mhh_simnet::TopologyKind;
pub use protocols::{ProtocolRegistry, ProtocolSpec};
pub use runner::{
    run_named, run_scenario, run_scenario_perf, run_scenario_phases, run_spec, run_spec_perf,
};
pub use scenarios::Scenario;
pub use workload::Workload;
