//! Scenario configuration mirroring Section 5.1 of the paper, extended with
//! a pluggable mobility model (`mhh-mobility`), a pluggable network
//! topology and a variable-latency link model (`mhh-simnet`).

use std::sync::Arc;

use mhh_mobility::ModelKind;
use mhh_pubsub::FanoutMode;
use mhh_simnet::{
    DegradedWindow, FaultSchedule, LinkModel, LossModel, Network, NodeId, SimDuration, SimTime,
    TopologyKind,
};

/// Which of the paper's three protocols to run on the generic fast path
/// ([`run_scenario`](crate::runner::run_scenario)).
///
/// The enum is a convenience for the builtin protocols only; the open,
/// by-name axis lives in [`crate::protocols::ProtocolRegistry`], and
/// [`Protocol::name`] is the bridge (the enum variant's registry key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// The paper's multi-hop handoff protocol (`mhh-core`).
    Mhh,
    /// The sub-unsub baseline.
    SubUnsub,
    /// The home-broker baseline.
    HomeBroker,
}

impl Protocol {
    /// All three protocols, in the order the paper's figures list them.
    pub const ALL: [Protocol; 3] = [Protocol::SubUnsub, Protocol::Mhh, Protocol::HomeBroker];

    /// Display name used in reports (matches the paper's curve labels).
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Mhh => "MHH",
            Protocol::SubUnsub => "sub-unsub",
            Protocol::HomeBroker => "HB",
        }
    }

    /// The protocol's key in the
    /// [`ProtocolRegistry`](crate::protocols::ProtocolRegistry).
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Mhh => "mhh",
            Protocol::SubUnsub => "sub-unsub",
            Protocol::HomeBroker => "home-broker",
        }
    }
}

/// Declarative fault-injection plan for a scenario: which brokers crash,
/// which links partition, which regions go dark, and how the recovery
/// machinery is tuned. The default plan is empty, which keeps every run on
/// the byte-identical zero-fault fast path (the engine never consults a
/// fault schedule).
///
/// Times are scenario-relative seconds; [`ScenarioConfig::fault_schedule`]
/// compiles the plan into a [`FaultSchedule`] against a concrete network.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Broker crash windows as `(broker, start_s, end_s)`: the broker drops
    /// every envelope in the window and restarts from checkpoint at `end_s`.
    pub broker_crashes: Vec<(usize, f64, f64)>,
    /// Link partition windows as `(broker_a, broker_b, start_s, end_s)`:
    /// both directions of the link drop envelopes during the window.
    pub link_partitions: Vec<(usize, usize, f64, f64)>,
    /// Region outages as `(epicenter, radius_hops, start_s, end_s)`: every
    /// broker within `radius_hops` of the epicenter is down in the window.
    pub region_outages: Vec<(usize, u32, f64, f64)>,
    /// Seeded crash storm as `(count, mean_down_s)`: `count` broker crashes
    /// with uniformly drawn victims and start times and exponentially
    /// distributed downtimes, derived deterministically from the scenario
    /// seed.
    pub crash_storm: Option<(usize, f64)>,
    /// How long after an outage begins neighbours notice and start routing
    /// around it (the failure-detection delay of the repair layer).
    pub detection_delay_s: f64,
    /// Watchdog period for MHH's explicit migration retry/abort recovery;
    /// ignored by protocols without a recovery dialogue.
    pub repair_timeout_s: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            broker_crashes: Vec::new(),
            link_partitions: Vec::new(),
            region_outages: Vec::new(),
            crash_storm: None,
            detection_delay_s: 0.5,
            repair_timeout_s: 2.0,
        }
    }
}

impl FaultPlan {
    /// True when the plan injects nothing — the zero-fault fast path.
    pub fn is_empty(&self) -> bool {
        self.broker_crashes.is_empty()
            && self.link_partitions.is_empty()
            && self.region_outages.is_empty()
            && self.crash_storm.is_none()
    }
}

/// Full description of one simulation run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Grid side length k (k² base stations / brokers for the grid-family
    /// and random topologies; an imported edge list brings its own count).
    pub grid_side: usize,
    /// The network shape brokers are wired into (paper: the k×k grid).
    pub topology: TopologyKind,
    /// Clients attached to each broker in the initial state (paper: 10).
    pub clients_per_broker: usize,
    /// Fraction of clients that move (paper: 0.2).
    pub mobile_fraction: f64,
    /// Mean connection-period length in seconds (exponentially distributed).
    pub conn_mean_s: f64,
    /// Mean disconnection-period length in seconds (paper: 300 s).
    pub disc_mean_s: f64,
    /// Publication interval per client in seconds (paper: 300 s).
    pub publish_interval_s: f64,
    /// Fraction of clients each event matches (paper: 0.0625).
    pub selectivity: f64,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Wired per-hop latency in milliseconds (paper: 10 ms).
    pub wired_ms: u64,
    /// Wireless link latency in milliseconds (paper: 20 ms).
    pub wireless_ms: u64,
    /// Maximum per-message link jitter in milliseconds (0 = the paper's
    /// constant latencies; sampled uniformly per message, seeded).
    pub jitter_ms: u64,
    /// Per-direction link asymmetry: each ordered broker pair's latency is
    /// scaled by a stable factor drawn from `[1, 1 + asymmetry]` (0 =
    /// symmetric links).
    pub link_asymmetry: f64,
    /// Timed link-degradation windows as `(start_s, end_s, factor)`: during
    /// the window every link's latency is multiplied by `factor`.
    pub degraded_windows: Vec<(f64, f64, f64)>,
    /// Whether brokers apply the covering optimisation.
    pub covering: bool,
    /// Master random seed; every run is a pure function of it.
    pub seed: u64,
    /// The mobility model moving the mobile clients (paper: uniform random).
    pub mobility: ModelKind,
    /// Scenario-level proclamation override (§4.1): each move the model left
    /// *silent* is upgraded to a proclaimed move with this probability
    /// (deterministically, from the scenario seed). `0.0` (the default)
    /// leaves the per-model decision alone — street-grid and platoon moves
    /// proclaim, flash crowds and replayed traces do not; `1.0` proclaims
    /// every move, which is how `paper-fig5-proclaimed` exercises the
    /// paper's proclaimed handoff under the otherwise-unpredictable uniform
    /// random pattern.
    pub proclaimed_fraction: f64,
    /// Fraction of *proclaimed* moves whose announcement is wrong: the
    /// client announces broker B but reconnects at a different broker C
    /// (prediction error), exercising MHH's pending-handoff/abort path.
    /// `0.0` (the default) proclaims truthfully.
    pub misproclaim_fraction: f64,
    /// Fault-injection plan; empty (the default) keeps the run on the
    /// byte-identical zero-fault fast path.
    pub faults: FaultPlan,
    /// Worker shards for the conservative-parallel engine. `0` (the default)
    /// and `1` run the serial engine; `k > 1` partitions brokers into `k`
    /// contiguous blocks (clients follow their home broker) and runs the
    /// windowed parallel engine. Either way the delivery sequence — and
    /// therefore every metric — is byte-identical.
    pub engine_workers: usize,
    /// Mean modeled application-payload size in bytes. `0` (the default)
    /// turns payload modeling off entirely: events carry no wire size, no
    /// byte accounting happens and runs are byte-identical to the
    /// pre-payload simulator. `> 0` gives every published event a seeded
    /// size drawn uniformly from `[mean/2, 3·mean/2]`.
    pub payload_bytes_mean: u32,
    /// How brokers materialize wire forms during fan-out (serialize-once
    /// cached, the default, or the clone-per-destination baseline).
    /// Delivery behavior is byte-identical either way.
    pub fanout_mode: FanoutMode,
    /// Enable the brokers' retained-message store and replay-on-connect.
    pub retained: bool,
    /// Shared-subscription group size (`0`/`1` = off): same-broker
    /// subscribers are bucketed into groups of this size and each event is
    /// delivered to exactly one member per group.
    pub shared_group_size: u32,
    /// Track broker memory high-water marks (buffered protocol bytes and
    /// checkpoint sizes). Off by default; the sampling walk is per-message.
    pub track_mem: bool,
    /// Storm-shaped workload: number of publisher clients (`0`, the
    /// default, keeps the paper's population and mobility timeline; `> 0`
    /// together with [`storm_subscribers`](Self::storm_subscribers)
    /// replaces both with a static MQTT-shaped pub/sub population).
    pub storm_publishers: u32,
    /// Storm-shaped workload: number of subscriber clients.
    pub storm_subscribers: u32,
    /// Fraction of storm subscribers that start *detached* and join midway
    /// through the run (retained-replay late joiners). Ignored outside
    /// storm workloads.
    pub late_subscriber_fraction: f64,
    /// Per-message link loss probability. `0.0` (the default) keeps the
    /// lossless byte-identical fast path; `> 0` drops that fraction of
    /// messages, seeded per `(from, to, link_seq)` so replays are identical.
    pub loss_rate: f64,
    /// Per-message link corruption probability: affected messages arrive but
    /// are discarded at the receiver (recorded as corrupted in the drop log).
    pub corruption_rate: f64,
    /// Per-client duplicate-suppression window on brokers (`0` = off): the
    /// broker remembers this many recent event ids plus per-publisher
    /// sequence watermarks and silently drops re-deliveries.
    pub dedup_window: usize,
    /// End-to-end publish reliability: brokers ack accepted publishes and
    /// publishers retransmit unacked events with bounded exponential backoff.
    pub retransmit: bool,
    /// Neighbour-replicated checkpoint period in milliseconds (`0` = the
    /// legacy local self-checkpoint restore): brokers push their durable
    /// state to the lowest-id overlay neighbour on this period and a crashed
    /// broker restores from that possibly-stale replica, re-subscribing any
    /// clients the replica missed.
    pub checkpoint_replication_ms: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig::paper_defaults()
    }
}

impl ScenarioConfig {
    /// The paper's default environment: 100 base stations, 1000 clients,
    /// five-minute connection and disconnection periods.
    pub fn paper_defaults() -> Self {
        ScenarioConfig {
            grid_side: 10,
            topology: TopologyKind::Grid,
            clients_per_broker: 10,
            mobile_fraction: 0.2,
            conn_mean_s: 300.0,
            disc_mean_s: 300.0,
            publish_interval_s: 300.0,
            selectivity: 0.0625,
            duration_s: 1_800.0,
            wired_ms: 10,
            wireless_ms: 20,
            jitter_ms: 0,
            link_asymmetry: 0.0,
            degraded_windows: Vec::new(),
            covering: true,
            seed: 0x4d48_485f_3230,
            mobility: ModelKind::UniformRandom,
            proclaimed_fraction: 0.0,
            misproclaim_fraction: 0.0,
            faults: FaultPlan::default(),
            engine_workers: 0,
            payload_bytes_mean: 0,
            fanout_mode: FanoutMode::default(),
            retained: false,
            shared_group_size: 0,
            track_mem: false,
            storm_publishers: 0,
            storm_subscribers: 0,
            late_subscriber_fraction: 0.0,
            loss_rate: 0.0,
            corruption_rate: 0.0,
            dedup_window: 0,
            retransmit: false,
            checkpoint_replication_ms: 0,
        }
    }

    /// A scaled-down configuration that keeps the paper's proportions but
    /// runs in milliseconds of wall-clock time; used by unit tests and the
    /// Criterion benchmarks (absolute magnitudes differ, relative protocol
    /// behaviour does not).
    pub fn small() -> Self {
        ScenarioConfig {
            grid_side: 5,
            clients_per_broker: 4,
            mobile_fraction: 0.25,
            conn_mean_s: 60.0,
            disc_mean_s: 60.0,
            publish_interval_s: 30.0,
            selectivity: 0.0625,
            duration_s: 600.0,
            seed: 7,
            ..ScenarioConfig::paper_defaults()
        }
    }

    /// Number of brokers (k² for the grid-family and random topologies; an
    /// imported edge list brings its own count).
    pub fn broker_count(&self) -> usize {
        self.topology.node_count(self.grid_side)
    }

    /// Build this scenario's broker network — topology, MST overlay,
    /// distance and routing tables — deterministically from the seed. The
    /// harness calls this **once per run** and shares the result between
    /// the workload generator, the fabric and the deployment.
    pub fn build_network(&self) -> Arc<Network> {
        Arc::new(self.topology.build(self.grid_side, self.seed))
    }

    /// The link model the latency knobs describe, or `None` when links are
    /// the paper's constants (zero jitter, symmetric, no degradation) — the
    /// byte-identical fast path.
    pub fn link_model(&self) -> Option<LinkModel> {
        let model = LinkModel {
            seed: self.seed ^ 0x4c49_4e4b_4a49_5454,
            jitter: SimDuration::from_millis(self.jitter_ms),
            asymmetry: self.link_asymmetry.max(0.0),
            degraded: self
                .degraded_windows
                .iter()
                .map(|&(start_s, end_s, factor)| DegradedWindow {
                    start: SimTime::ZERO + SimDuration::from_secs_f64(start_s),
                    end: SimTime::ZERO + SimDuration::from_secs_f64(end_s),
                    factor,
                })
                .collect(),
        };
        if model.is_constant() {
            None
        } else {
            Some(model)
        }
    }

    /// The loss model the reliability knobs describe, or `None` when links
    /// are lossless (zero loss, zero corruption) — the byte-identical fast
    /// path, where the engine never consults a loss model.
    pub fn loss_model(&self) -> Option<LossModel> {
        let model = LossModel::new(
            self.seed ^ 0x4c4f_5353_5f52,
            self.loss_rate,
            self.corruption_rate,
        );
        if model.is_lossless() {
            None
        } else {
            Some(model)
        }
    }

    /// Compile the declarative [`FaultPlan`] into a concrete
    /// [`FaultSchedule`] against this scenario's network. Deterministic: the
    /// crash-storm seed derives from the scenario seed, so the same scenario
    /// always suffers the same outages. An empty plan compiles to an empty
    /// schedule (which the engine treats as "no fault layer at all").
    pub fn fault_schedule(&self, network: &Network) -> FaultSchedule {
        let at = |s: f64| SimTime::from_secs_f64(s);
        let mut schedule = if let Some((count, mean_down_s)) = self.faults.crash_storm {
            FaultSchedule::crash_storm(
                self.seed ^ 0x4641_554c_5453,
                network.broker_count(),
                count,
                at(self.duration_s),
                SimDuration::from_secs_f64(mean_down_s),
            )
        } else {
            FaultSchedule::new()
        };
        for &(broker, start_s, end_s) in &self.faults.broker_crashes {
            schedule = schedule.crash(NodeId(broker as u32), at(start_s), at(end_s));
        }
        for &(a, b, start_s, end_s) in &self.faults.link_partitions {
            schedule =
                schedule.partition(NodeId(a as u32), NodeId(b as u32), at(start_s), at(end_s));
        }
        for &(epicenter, radius, start_s, end_s) in &self.faults.region_outages {
            schedule = schedule.region_outage(
                network,
                NodeId(epicenter as u32),
                radius,
                at(start_s),
                at(end_s),
            );
        }
        schedule
    }

    /// Total number of clients.
    pub fn client_count(&self) -> usize {
        self.broker_count() * self.clients_per_broker
    }

    /// Number of mobile clients.
    pub fn mobile_count(&self) -> usize {
        (self.client_count() as f64 * self.mobile_fraction).round() as usize
    }

    /// Replace the mobility model, keeping everything else.
    pub fn with_mobility(mut self, mobility: ModelKind) -> Self {
        self.mobility = mobility;
        self
    }

    /// Replace the proclamation override fraction (clamped to `[0, 1]`),
    /// keeping everything else. `1.0` proclaims every move; `0.0` (default)
    /// defers to the mobility model's own per-move decision.
    pub fn with_proclaimed_fraction(mut self, fraction: f64) -> Self {
        self.proclaimed_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Replace the network topology, keeping everything else.
    pub fn with_topology(mut self, topology: TopologyKind) -> Self {
        self.topology = topology;
        self
    }

    /// Replace the per-message link jitter bound (milliseconds), keeping
    /// everything else. `0` restores the paper's constant latencies.
    pub fn with_jitter_ms(mut self, jitter_ms: u64) -> Self {
        self.jitter_ms = jitter_ms;
        self
    }

    /// Replace the mis-proclamation fraction (clamped to `[0, 1]`), keeping
    /// everything else: that share of proclaimed moves announces a wrong
    /// destination broker.
    pub fn with_misproclaim_fraction(mut self, fraction: f64) -> Self {
        self.misproclaim_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Replace the fault-injection plan, keeping everything else. An empty
    /// plan restores the zero-fault fast path.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replace the parallel-engine worker count, keeping everything else.
    /// `0`/`1` run the serial engine; results are byte-identical regardless.
    pub fn with_engine_workers(mut self, workers: usize) -> Self {
        self.engine_workers = workers;
        self
    }

    /// Replace the mean modeled payload size (bytes), keeping everything
    /// else. `0` restores the accounting-free pre-payload behavior.
    pub fn with_payload_bytes(mut self, mean: u32) -> Self {
        self.payload_bytes_mean = mean;
        self
    }

    /// Replace the broker fan-out mode, keeping everything else. Delivery
    /// results are byte-identical between modes; only accounting differs.
    pub fn with_fanout_mode(mut self, mode: FanoutMode) -> Self {
        self.fanout_mode = mode;
        self
    }

    /// Enable/disable the retained-message store, keeping everything else.
    pub fn with_retained(mut self, retained: bool) -> Self {
        self.retained = retained;
        self
    }

    /// Replace the shared-subscription group size (`0`/`1` = off), keeping
    /// everything else.
    pub fn with_shared_groups(mut self, size: u32) -> Self {
        self.shared_group_size = size;
        self
    }

    /// Enable/disable broker memory high-water tracking, keeping everything
    /// else.
    pub fn with_mem_tracking(mut self, track: bool) -> Self {
        self.track_mem = track;
        self
    }

    /// Switch to a storm-shaped workload with the given publisher and
    /// subscriber counts, keeping everything else.
    pub fn with_storm(mut self, publishers: u32, subscribers: u32) -> Self {
        self.storm_publishers = publishers;
        self.storm_subscribers = subscribers;
        self
    }

    /// Replace the late-joiner fraction of storm subscribers (clamped to
    /// `[0, 1]`), keeping everything else.
    pub fn with_late_subscribers(mut self, fraction: f64) -> Self {
        self.late_subscriber_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Replace the link loss and corruption probabilities (clamped to
    /// `[0, 1]`), keeping everything else. `(0, 0)` restores the lossless
    /// byte-identical fast path.
    pub fn with_loss(mut self, loss_rate: f64, corruption_rate: f64) -> Self {
        self.loss_rate = loss_rate.clamp(0.0, 1.0);
        self.corruption_rate = corruption_rate.clamp(0.0, 1.0);
        self
    }

    /// Replace the broker duplicate-suppression window (`0` = off), keeping
    /// everything else.
    pub fn with_dedup_window(mut self, window: usize) -> Self {
        self.dedup_window = window;
        self
    }

    /// Enable/disable publisher-side ack/retransmit, keeping everything else.
    pub fn with_retransmit(mut self, retransmit: bool) -> Self {
        self.retransmit = retransmit;
        self
    }

    /// Replace the neighbour-replication checkpoint period in milliseconds
    /// (`0` = legacy local restore), keeping everything else.
    pub fn with_checkpoint_replication_ms(mut self, period_ms: u64) -> Self {
        self.checkpoint_replication_ms = period_ms;
        self
    }

    /// True when this scenario runs the storm-shaped workload instead of
    /// the paper's mobile population.
    pub fn is_storm(&self) -> bool {
        self.storm_publishers > 0 && self.storm_subscribers > 0
    }

    /// Pick a simulation duration long enough for every mobile client to
    /// complete a couple of connection/disconnection cycles at the configured
    /// period lengths (used by the figure sweeps so slow-moving points still
    /// accumulate enough handoffs).
    pub fn with_adaptive_duration(mut self, cycles: f64) -> Self {
        let cycle = self.conn_mean_s + self.disc_mean_s;
        self.duration_s = (cycle * cycles).max(self.duration_s);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let c = ScenarioConfig::paper_defaults();
        assert_eq!(c.broker_count(), 100);
        assert_eq!(c.client_count(), 1_000);
        assert_eq!(c.mobile_count(), 200);
        assert_eq!(c.wired_ms, 10);
        assert_eq!(c.wireless_ms, 20);
        assert!((c.selectivity - 0.0625).abs() < 1e-12);
        assert_eq!(c.publish_interval_s, 300.0);
    }

    #[test]
    fn adaptive_duration_extends_for_slow_movers() {
        let c = ScenarioConfig {
            conn_mean_s: 10_000.0,
            disc_mean_s: 300.0,
            duration_s: 600.0,
            ..ScenarioConfig::paper_defaults()
        }
        .with_adaptive_duration(1.5);
        assert!(c.duration_s >= 15_000.0);
        // Short periods keep the configured floor.
        let d = ScenarioConfig {
            conn_mean_s: 1.0,
            duration_s: 600.0,
            ..ScenarioConfig::paper_defaults()
        }
        .with_adaptive_duration(1.5);
        assert_eq!(d.duration_s, 600.0);
    }

    #[test]
    fn default_topology_and_links_are_the_papers() {
        let c = ScenarioConfig::paper_defaults();
        assert_eq!(c.topology, TopologyKind::Grid);
        assert_eq!(c.jitter_ms, 0);
        assert!(c.link_model().is_none(), "constant links skip the wrapper");
        assert_eq!(c.misproclaim_fraction, 0.0);
        let net = c.build_network();
        assert_eq!(net.broker_count(), c.broker_count());
        assert!(net.is_grid());
    }

    #[test]
    fn broker_count_follows_the_topology() {
        let sf = ScenarioConfig {
            topology: TopologyKind::ScaleFree { edges_per_node: 2 },
            grid_side: 6,
            ..ScenarioConfig::paper_defaults()
        };
        assert_eq!(sf.broker_count(), 36);
        assert_eq!(sf.build_network().broker_count(), 36);
        let el = ScenarioConfig {
            topology: TopologyKind::EdgeList(Arc::new(vec![(0, 1), (1, 2)])),
            ..ScenarioConfig::paper_defaults()
        };
        assert_eq!(el.broker_count(), 3, "edge lists bring their own count");
    }

    #[test]
    fn link_knobs_produce_a_model_and_sub_zero_asymmetry_is_clamped() {
        let c = ScenarioConfig {
            jitter_ms: 5,
            link_asymmetry: 0.2,
            degraded_windows: vec![(10.0, 20.0, 3.0)],
            ..ScenarioConfig::paper_defaults()
        };
        let m = c.link_model().expect("non-constant links");
        assert_eq!(m.jitter, SimDuration::from_millis(5));
        assert_eq!(m.degraded.len(), 1);
        assert_eq!(m.degraded[0].start, SimTime::from_secs(10));
        // The model seed derives from the scenario seed: same scenario,
        // same jitter stream.
        assert_eq!(c.link_model(), c.link_model());
    }

    #[test]
    fn default_fault_plan_is_empty_and_compiles_to_nothing() {
        let c = ScenarioConfig::paper_defaults();
        assert!(c.faults.is_empty(), "defaults must stay on the fast path");
        let net = c.build_network();
        assert!(c.fault_schedule(&net).is_empty());
    }

    #[test]
    fn fault_plan_compiles_deterministically() {
        let c = ScenarioConfig::small().with_faults(FaultPlan {
            broker_crashes: vec![(3, 10.0, 40.0)],
            link_partitions: vec![(0, 1, 20.0, 50.0)],
            region_outages: vec![(12, 1, 100.0, 130.0)],
            crash_storm: Some((4, 30.0)),
            ..FaultPlan::default()
        });
        assert!(!c.faults.is_empty());
        let net = c.build_network();
        let a = c.fault_schedule(&net);
        let b = c.fault_schedule(&net);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same storm");
        // 4 storm crashes + explicit crash + partition + region outage.
        assert_eq!(a.windows().len(), 7);
        // The explicit crash window survives compilation verbatim.
        assert!(a.is_down(NodeId(3), SimTime::from_secs(11)));
        assert!(!a.is_down(NodeId(3), SimTime::from_secs(41)));
        // A different scenario seed reshuffles the storm.
        let mut other = c.clone();
        other.seed ^= 1;
        let shuffled = other.fault_schedule(&net);
        assert_ne!(format!("{a:?}"), format!("{shuffled:?}"));
    }

    #[test]
    fn protocol_labels_match_paper_curves() {
        assert_eq!(Protocol::Mhh.label(), "MHH");
        assert_eq!(Protocol::SubUnsub.label(), "sub-unsub");
        assert_eq!(Protocol::HomeBroker.label(), "HB");
        assert_eq!(Protocol::ALL.len(), 3);
    }
}
