//! Scenario configuration mirroring Section 5.1 of the paper, extended with
//! a pluggable mobility model (`mhh-mobility`).

use mhh_mobility::ModelKind;

/// Which of the paper's three protocols to run on the generic fast path
/// ([`run_scenario`](crate::runner::run_scenario)).
///
/// The enum is a convenience for the builtin protocols only; the open,
/// by-name axis lives in [`crate::protocols::ProtocolRegistry`], and
/// [`Protocol::name`] is the bridge (the enum variant's registry key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// The paper's multi-hop handoff protocol (`mhh-core`).
    Mhh,
    /// The sub-unsub baseline.
    SubUnsub,
    /// The home-broker baseline.
    HomeBroker,
}

impl Protocol {
    /// All three protocols, in the order the paper's figures list them.
    pub const ALL: [Protocol; 3] = [Protocol::SubUnsub, Protocol::Mhh, Protocol::HomeBroker];

    /// Display name used in reports (matches the paper's curve labels).
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Mhh => "MHH",
            Protocol::SubUnsub => "sub-unsub",
            Protocol::HomeBroker => "HB",
        }
    }

    /// The protocol's key in the
    /// [`ProtocolRegistry`](crate::protocols::ProtocolRegistry).
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Mhh => "mhh",
            Protocol::SubUnsub => "sub-unsub",
            Protocol::HomeBroker => "home-broker",
        }
    }
}

/// Full description of one simulation run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Grid side length k (k² base stations / brokers).
    pub grid_side: usize,
    /// Clients attached to each broker in the initial state (paper: 10).
    pub clients_per_broker: usize,
    /// Fraction of clients that move (paper: 0.2).
    pub mobile_fraction: f64,
    /// Mean connection-period length in seconds (exponentially distributed).
    pub conn_mean_s: f64,
    /// Mean disconnection-period length in seconds (paper: 300 s).
    pub disc_mean_s: f64,
    /// Publication interval per client in seconds (paper: 300 s).
    pub publish_interval_s: f64,
    /// Fraction of clients each event matches (paper: 0.0625).
    pub selectivity: f64,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Wired per-hop latency in milliseconds (paper: 10 ms).
    pub wired_ms: u64,
    /// Wireless link latency in milliseconds (paper: 20 ms).
    pub wireless_ms: u64,
    /// Whether brokers apply the covering optimisation.
    pub covering: bool,
    /// Master random seed; every run is a pure function of it.
    pub seed: u64,
    /// The mobility model moving the mobile clients (paper: uniform random).
    pub mobility: ModelKind,
    /// Scenario-level proclamation override (§4.1): each move the model left
    /// *silent* is upgraded to a proclaimed move with this probability
    /// (deterministically, from the scenario seed). `0.0` (the default)
    /// leaves the per-model decision alone — street-grid and platoon moves
    /// proclaim, flash crowds and replayed traces do not; `1.0` proclaims
    /// every move, which is how `paper-fig5-proclaimed` exercises the
    /// paper's proclaimed handoff under the otherwise-unpredictable uniform
    /// random pattern.
    pub proclaimed_fraction: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig::paper_defaults()
    }
}

impl ScenarioConfig {
    /// The paper's default environment: 100 base stations, 1000 clients,
    /// five-minute connection and disconnection periods.
    pub fn paper_defaults() -> Self {
        ScenarioConfig {
            grid_side: 10,
            clients_per_broker: 10,
            mobile_fraction: 0.2,
            conn_mean_s: 300.0,
            disc_mean_s: 300.0,
            publish_interval_s: 300.0,
            selectivity: 0.0625,
            duration_s: 1_800.0,
            wired_ms: 10,
            wireless_ms: 20,
            covering: true,
            seed: 0x4d48_485f_3230,
            mobility: ModelKind::UniformRandom,
            proclaimed_fraction: 0.0,
        }
    }

    /// A scaled-down configuration that keeps the paper's proportions but
    /// runs in milliseconds of wall-clock time; used by unit tests and the
    /// Criterion benchmarks (absolute magnitudes differ, relative protocol
    /// behaviour does not).
    pub fn small() -> Self {
        ScenarioConfig {
            grid_side: 5,
            clients_per_broker: 4,
            mobile_fraction: 0.25,
            conn_mean_s: 60.0,
            disc_mean_s: 60.0,
            publish_interval_s: 30.0,
            selectivity: 0.0625,
            duration_s: 600.0,
            wired_ms: 10,
            wireless_ms: 20,
            covering: true,
            seed: 7,
            mobility: ModelKind::UniformRandom,
            proclaimed_fraction: 0.0,
        }
    }

    /// Number of brokers (k²).
    pub fn broker_count(&self) -> usize {
        self.grid_side * self.grid_side
    }

    /// Total number of clients.
    pub fn client_count(&self) -> usize {
        self.broker_count() * self.clients_per_broker
    }

    /// Number of mobile clients.
    pub fn mobile_count(&self) -> usize {
        (self.client_count() as f64 * self.mobile_fraction).round() as usize
    }

    /// Replace the mobility model, keeping everything else.
    pub fn with_mobility(mut self, mobility: ModelKind) -> Self {
        self.mobility = mobility;
        self
    }

    /// Replace the proclamation override fraction (clamped to `[0, 1]`),
    /// keeping everything else. `1.0` proclaims every move; `0.0` (default)
    /// defers to the mobility model's own per-move decision.
    pub fn with_proclaimed_fraction(mut self, fraction: f64) -> Self {
        self.proclaimed_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Pick a simulation duration long enough for every mobile client to
    /// complete a couple of connection/disconnection cycles at the configured
    /// period lengths (used by the figure sweeps so slow-moving points still
    /// accumulate enough handoffs).
    pub fn with_adaptive_duration(mut self, cycles: f64) -> Self {
        let cycle = self.conn_mean_s + self.disc_mean_s;
        self.duration_s = (cycle * cycles).max(self.duration_s);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let c = ScenarioConfig::paper_defaults();
        assert_eq!(c.broker_count(), 100);
        assert_eq!(c.client_count(), 1_000);
        assert_eq!(c.mobile_count(), 200);
        assert_eq!(c.wired_ms, 10);
        assert_eq!(c.wireless_ms, 20);
        assert!((c.selectivity - 0.0625).abs() < 1e-12);
        assert_eq!(c.publish_interval_s, 300.0);
    }

    #[test]
    fn adaptive_duration_extends_for_slow_movers() {
        let c = ScenarioConfig {
            conn_mean_s: 10_000.0,
            disc_mean_s: 300.0,
            duration_s: 600.0,
            ..ScenarioConfig::paper_defaults()
        }
        .with_adaptive_duration(1.5);
        assert!(c.duration_s >= 15_000.0);
        // Short periods keep the configured floor.
        let d = ScenarioConfig {
            conn_mean_s: 1.0,
            duration_s: 600.0,
            ..ScenarioConfig::paper_defaults()
        }
        .with_adaptive_duration(1.5);
        assert_eq!(d.duration_s, 600.0);
    }

    #[test]
    fn protocol_labels_match_paper_curves() {
        assert_eq!(Protocol::Mhh.label(), "MHH");
        assert_eq!(Protocol::SubUnsub.label(), "sub-unsub");
        assert_eq!(Protocol::HomeBroker.label(), "HB");
        assert_eq!(Protocol::ALL.len(), 3);
    }
}
