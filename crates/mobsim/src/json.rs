//! A minimal JSON document model and pretty-printer.
//!
//! The build environment has no network access, so `serde_json` is not
//! available; experiment reports and the bench trajectory files
//! (`BENCH_mobility.json`) are emitted through this module instead. Only
//! what the reports need is implemented: construction and serialisation —
//! parsing is out of scope.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer number (serialised without a decimal point).
    Int(i64),
    /// Unsigned integer number.
    UInt(u64),
    /// Floating-point number; non-finite values serialise as `null`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// String value helper.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object builder helper.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Render with two-space indentation (the `serde_json::to_string_pretty`
    /// style the reports used before).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` prints integral f64s without a fraction, which is
                    // still valid JSON.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj(vec![
            ("name", Json::str("figure5")),
            ("n", Json::UInt(3)),
            ("x", Json::Num(1.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = doc.pretty();
        assert!(text.contains("\"name\": \"figure5\""));
        assert!(text.contains("\"n\": 3"));
        assert!(text.contains("\"x\": 1.5"));
        assert!(text.contains("true"));
        assert!(text.contains("\"empty\": {}"));
        assert!(text.starts_with('{') && text.ends_with('}'));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::str("a\"b\\c\nd\u{1}").pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
    }

    #[test]
    fn integral_floats_are_valid_json() {
        assert_eq!(Json::Num(300.0).pretty(), "300");
        assert_eq!(Json::UInt(u64::MAX).pretty(), u64::MAX.to_string());
    }
}
