//! Metrics collected from one simulation run.

use mhh_pubsub::DeliveryAudit;

/// The outcome of one scenario run: the paper's two performance metrics plus
/// the reliability audit and raw counters useful for debugging and reports.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Display label of the protocol that was run (e.g. `"MHH"`). A label
    /// rather than a closed enum, so registry-provided protocols flow
    /// through the metrics and reports unchanged; generic and
    /// dyn-dispatched runs of the same protocol carry the same label, which
    /// is what makes their results byte-identical.
    pub protocol: String,
    /// Number of handoffs that occurred (reconnections at a different
    /// broker).
    pub handoffs: u64,
    /// Total network hops attributable to mobility management.
    pub mobility_hops: u64,
    /// The paper's "message overhead per handoff": mobility hops divided by
    /// the number of handoffs.
    pub overhead_per_handoff: f64,
    /// The paper's "average handoff delay" in milliseconds (reconnection to
    /// first delivered event), averaged over handoffs that received at least
    /// one event.
    pub avg_handoff_delay_ms: f64,
    /// Number of handoffs that contributed a delay sample.
    pub delay_samples: u64,
    /// Delivery-reliability audit (loss / duplicates / ordering).
    pub audit: DeliveryAudit,
    /// Total events published during the run.
    pub published: u64,
    /// Total event deliveries to clients.
    pub delivered_messages: u64,
    /// Total hops over all network traffic (context for the overhead metric).
    pub total_hops: u64,
    /// Simulated duration in seconds.
    pub sim_duration_s: f64,
}

impl RunResult {
    /// Fraction of expected deliveries that were lost (home-broker's
    /// reliability gap shows up here).
    pub fn loss_rate(&self) -> f64 {
        self.audit.loss_rate()
    }

    /// True when the run satisfied exactly-once ordered delivery.
    pub fn reliable(&self) -> bool {
        self.audit.is_reliable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let r = RunResult {
            protocol: "MHH".to_string(),
            handoffs: 10,
            mobility_hops: 500,
            overhead_per_handoff: 50.0,
            avg_handoff_delay_ms: 123.0,
            delay_samples: 9,
            audit: DeliveryAudit {
                expected: 100,
                delivered: 98,
                duplicates: 0,
                pending: 2,
                lost: 0,
                out_of_order: 0,
            },
            published: 40,
            delivered_messages: 98,
            total_hops: 10_000,
            sim_duration_s: 600.0,
        };
        assert!(r.reliable());
        assert_eq!(r.loss_rate(), 0.0);
    }
}
