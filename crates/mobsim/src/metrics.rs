//! Metrics collected from one simulation run.
//!
//! Since the handover-lifecycle refactor the primary artifact is the
//! [`HandoverLedger`]: one typed [`HandoverRecord`] per disconnect/reconnect
//! pair, carrying the handover kind (reactive §4.2 vs proclaimed §4.1), the
//! physical move, the disruption window and the per-handover delivery
//! counters. The run-level aggregates the paper's figures plot —
//! handoff count and average handoff delay — are *derived* from the ledger
//! instead of being counted separately, so the per-handover and aggregate
//! views can never drift apart.

use std::collections::{BTreeMap, BTreeSet};

use mhh_pubsub::client::{DeliveryRecord, DisconnectRecord, ReconnectRecord};
use mhh_pubsub::{ClientId, DeliveryAudit, Event, EventId, Filter};
use mhh_simnet::{DropCause, DropRecord, OutageWindow, SimTime};

/// How a handover was initiated (paper §4.1 vs §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoverKind {
    /// Silent move: the client departed without announcing a destination;
    /// the handoff starts when it reconnects (§4.2).
    Reactive,
    /// Proclaimed move: the client announced its destination broker at
    /// disconnect time, so the subscription migrated ahead of it (§4.1).
    Proclaimed,
}

/// One completed handover of one client: a disconnect paired with the
/// following reconnect, plus everything the per-handover analysis needs.
///
/// The *disruption window* of a handover starts at its departure and ends at
/// the client's next departure (or the end of the run): losses are
/// attributed to the window containing the lost event's publication,
/// duplicates and buffered catch-ups to the window containing their
/// delivery. Summed over the ledger these partitions reproduce the run-level
/// audit counts exactly — asserted by the paired-workload integration test.
#[derive(Debug, Clone)]
pub struct HandoverRecord {
    /// The moving client.
    pub client: ClientId,
    /// Reactive (silent, §4.2) or proclaimed (§4.1).
    pub kind: HandoverKind,
    /// The broker the client physically departed.
    pub from: mhh_pubsub::BrokerId,
    /// The broker it reattached to.
    pub to: mhh_pubsub::BrokerId,
    /// Disconnection time.
    pub departed: SimTime,
    /// Reconnection time.
    pub arrived: SimTime,
    /// First delivery after the reconnection, if any arrived before the
    /// client moved on (or the run ended).
    pub first_delivery: Option<SimTime>,
    /// Whether the move was a real handoff (`from != to`); a disconnect
    /// that reconnects at the same broker is a reconnection, not a handoff.
    pub is_handoff: bool,
    /// Events published before the reconnection but delivered after it in
    /// this window — the backlog that was buffered (or migrated) for the
    /// client during the disruption.
    pub buffered: u64,
    /// Matching events published in this window that were neither delivered
    /// nor left pending: real loss attributed to this handover.
    pub lost: u64,
    /// Duplicate deliveries observed in this window.
    pub duplicates: u64,
}

impl HandoverRecord {
    /// The paper's per-handover disruption measure: reconnection to first
    /// delivery, in milliseconds. `None` when nothing was delivered before
    /// the client moved on.
    pub fn first_delivery_gap_ms(&self) -> Option<f64> {
        self.first_delivery
            .map(|d| d.since(self.arrived).as_millis_f64())
    }
}

/// One subscriber's raw logs, as the ledger assembler needs them.
#[derive(Debug, Clone)]
pub struct ClientHandoverLog<'a> {
    /// The client.
    pub client: ClientId,
    /// Its subscription (decides which published events it should see).
    pub filter: &'a Filter,
    /// Its disconnections, in time order.
    pub disconnects: &'a [DisconnectRecord],
    /// Its reconnections, in time order.
    pub reconnects: &'a [ReconnectRecord],
    /// Every delivery it received, in arrival order.
    pub deliveries: &'a [DeliveryRecord],
}

/// The per-handover ledger of one run: every handover of every client as a
/// typed [`HandoverRecord`], in client order (and time order per client).
///
/// The ledger replaces the aggregate-only counters the harness used to
/// keep: [`RunResult`]'s `handoffs`, `avg_handoff_delay_ms` and
/// `delay_samples` are now computed *from* these records (see
/// [`HandoverLedger::handoff_count`] and
/// [`HandoverLedger::mean_delay_ms`]), and the proclaimed-vs-reactive
/// comparison the paper's §4.1 motivates reads straight out of
/// [`HandoverLedger::kind_count`] / [`HandoverLedger::mean_gap_ms_of`].
#[derive(Debug, Clone, Default)]
pub struct HandoverLedger {
    /// All records, grouped by client in client-id order, time-ordered
    /// within a client.
    pub records: Vec<HandoverRecord>,
}

impl HandoverLedger {
    /// Build the ledger from raw run logs.
    ///
    /// * `published` — every event actually published (stamped);
    /// * `clients` — each subscriber's disconnect/reconnect/delivery logs,
    ///   in the order the aggregates should be accumulated (client order);
    /// * `pending` — events still buffered in protocol queues at the end of
    ///   the run (excluded from loss, as in the audit).
    pub fn assemble(
        published: &[Event],
        clients: &[ClientHandoverLog<'_>],
        pending: &[(ClientId, EventId)],
    ) -> HandoverLedger {
        let publish_time: BTreeMap<EventId, SimTime> =
            published.iter().map(|e| (e.id, e.published_at)).collect();
        let mut pending_by_client: BTreeMap<ClientId, BTreeSet<EventId>> = BTreeMap::new();
        for (c, e) in pending {
            pending_by_client.entry(*c).or_default().insert(*e);
        }

        let mut records = Vec::new();
        for log in clients {
            let base = records.len();
            // Pair each reconnection with the earliest unconsumed
            // disconnection that precedes it. A reconnect with no such
            // disconnect (a client attached by an explicit action instead of
            // the pre-installed initial state) is an initial attachment, not
            // a handover; a trailing unconsumed disconnect is a parked
            // client.
            let mut di = 0usize;
            for rec in log.reconnects {
                let Some(disc) = log.disconnects.get(di).filter(|d| d.at <= rec.at) else {
                    continue;
                };
                di += 1;
                records.push(HandoverRecord {
                    client: log.client,
                    kind: if disc.proclaimed_dest.is_some() {
                        HandoverKind::Proclaimed
                    } else {
                        HandoverKind::Reactive
                    },
                    from: disc.broker,
                    to: rec.to,
                    departed: disc.at,
                    arrived: rec.at,
                    first_delivery: rec.first_delivery,
                    is_handoff: rec.is_handoff,
                    buffered: 0,
                    lost: 0,
                    duplicates: 0,
                });
            }
            let count = records.len() - base;
            if count == 0 {
                continue;
            }
            // Disruption windows: record i owns [departed_i, departed_{i+1}),
            // the last record owns everything after its departure, and
            // anything before the first departure also falls to record 0 —
            // a partition, so per-window counts sum exactly to the client's
            // run-level audit counts.
            let windows = &mut records[base..];
            let departs: Vec<SimTime> = windows.iter().map(|r| r.departed).collect();
            let window_of = |t: SimTime| departs.partition_point(|&d| d <= t).saturating_sub(1);

            let expected: BTreeSet<EventId> = published
                .iter()
                .filter(|e| e.publisher != log.client && log.filter.matches(e))
                .map(|e| e.id)
                .collect();
            let mut seen: BTreeSet<EventId> = BTreeSet::new();
            for d in log.deliveries {
                if seen.insert(d.event) {
                    let w = &mut windows[window_of(d.at)];
                    if d.at >= w.arrived && d.published_at < w.arrived {
                        w.buffered += 1;
                    }
                } else {
                    windows[window_of(d.at)].duplicates += 1;
                }
            }
            let empty = BTreeSet::new();
            let pending_here = pending_by_client.get(&log.client).unwrap_or(&empty);
            for missing in expected.difference(&seen) {
                if pending_here.contains(missing) {
                    continue;
                }
                let at = publish_time.get(missing).copied().unwrap_or(SimTime::ZERO);
                windows[window_of(at)].lost += 1;
            }
        }
        HandoverLedger { records }
    }

    /// Number of handover records (including same-broker reconnections).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no client ever moved.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of real handoffs (`from != to`) — the paper's denominator.
    pub fn handoff_count(&self) -> u64 {
        self.records.iter().filter(|r| r.is_handoff).count() as u64
    }

    /// Number of real handoffs of one kind.
    pub fn kind_count(&self, kind: HandoverKind) -> u64 {
        self.records
            .iter()
            .filter(|r| r.is_handoff && r.kind == kind)
            .count() as u64
    }

    /// First-delivery gaps (ms) of all real handoffs that saw a delivery,
    /// in ledger order.
    pub fn delays_ms(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.is_handoff)
            .filter_map(HandoverRecord::first_delivery_gap_ms)
            .collect()
    }

    /// Mean first-delivery gap over all real handoffs with a delivery
    /// (0.0 when none saw one) — the paper's "average handoff delay".
    pub fn mean_delay_ms(&self) -> f64 {
        let delays = self.delays_ms();
        if delays.is_empty() {
            0.0
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        }
    }

    /// Mean first-delivery gap of one handover kind, or `None` when no
    /// handoff of that kind saw a delivery.
    pub fn mean_gap_ms_of(&self, kind: HandoverKind) -> Option<f64> {
        let delays = self.kind_delays_ms(kind);
        if delays.is_empty() {
            None
        } else {
            Some(delays.iter().sum::<f64>() / delays.len() as f64)
        }
    }

    /// First-delivery gaps (ms) of one handover kind, in ledger order.
    pub fn kind_delays_ms(&self, kind: HandoverKind) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.is_handoff && r.kind == kind)
            .filter_map(HandoverRecord::first_delivery_gap_ms)
            .collect()
    }

    /// The `q`-th percentile (`0 < q <= 100`, nearest-rank) of the
    /// first-delivery gaps over all real handoffs that saw a delivery, or
    /// `None` when none did. `percentile_gap_ms(50.0)` is the median.
    pub fn percentile_gap_ms(&self, q: f64) -> Option<f64> {
        percentile(self.delays_ms(), q)
    }

    /// The `q`-th percentile of one handover kind's first-delivery gaps.
    pub fn percentile_gap_ms_of(&self, kind: HandoverKind, q: f64) -> Option<f64> {
        percentile(self.kind_delays_ms(kind), q)
    }

    /// The (p50, p95, p99) first-delivery gap summary the distribution
    /// reports print, or `None` when no handoff saw a delivery. One ledger
    /// scan and one sort for all three ranks.
    pub fn gap_percentiles_ms(&self) -> Option<GapPercentiles> {
        GapPercentiles::of(self.delays_ms())
    }

    /// The (p50, p95, p99) summary of one handover kind's gaps.
    pub fn kind_gap_percentiles_ms(&self, kind: HandoverKind) -> Option<GapPercentiles> {
        GapPercentiles::of(self.kind_delays_ms(kind))
    }

    /// Sum of per-handover lost counts.
    pub fn total_lost(&self) -> u64 {
        self.records.iter().map(|r| r.lost).sum()
    }

    /// Sum of per-handover duplicate counts.
    pub fn total_duplicates(&self) -> u64 {
        self.records.iter().map(|r| r.duplicates).sum()
    }

    /// Sum of per-handover buffered-catch-up counts.
    pub fn total_buffered(&self) -> u64 {
        self.records.iter().map(|r| r.buffered).sum()
    }
}

/// One injected outage window with its measured impact on the run: how many
/// envelopes the fault layer dropped inside it, how many subscriber-side
/// losses and duplicates trace back to it, and how long the overlay took to
/// resume delivering after it healed.
#[derive(Debug, Clone)]
pub struct OutageRecord {
    /// Fault kind label (`"crash"`, `"partition"`, `"region"`).
    pub kind: &'static str,
    /// Human-readable scope (`"broker 12"`, `"link 3-4"`, `"region(5 nodes)"`).
    pub scope: String,
    /// Window start.
    pub start: SimTime,
    /// Window end (the repair instant).
    pub end: SimTime,
    /// Envelopes the fault layer dropped inside this window (exact: every
    /// drop is stamped with its window index at drop time).
    pub dropped_envelopes: u64,
    /// Subscriber-side losses attributed to this window (the lost event was
    /// published before this window healed, and no earlier-healing window
    /// claims it).
    pub lost: u64,
    /// Duplicate deliveries attributed to this window, by delivery time.
    pub duplicates: u64,
    /// Time from the window healing to the first client delivery anywhere in
    /// the system at or after the heal — the observed time-to-repair. `None`
    /// when nothing was delivered after the window (it healed too close to
    /// the end of the run).
    pub repair_ms: Option<f64>,
}

impl OutageRecord {
    /// Window length in milliseconds.
    pub fn outage_ms(&self) -> f64 {
        self.end.since(self.start).as_millis_f64()
    }
}

/// The per-outage recovery ledger of one run: one [`OutageRecord`] per
/// injected fault window, in schedule order, plus the losses and duplicates
/// no window accounts for.
///
/// Attribution is a *partition*: every audited loss goes to exactly one
/// window (the earliest-healing window still open — in the
/// published-before-heal sense — when the event was published) or to
/// `unattributed_lost`, and likewise for duplicates by delivery time. So
/// `total_lost() == audit.lost` and `total_duplicates() == audit.duplicates`
/// **exactly**, which [`RecoveryLedger::reconciles_with`] asserts — the
/// failure panel refuses to report numbers that don't add up.
#[derive(Clone, Default)]
pub struct RecoveryLedger {
    /// One record per injected outage window, in schedule order.
    pub records: Vec<OutageRecord>,
    /// Audited losses of events published after every window had healed
    /// (losses with no outage to blame).
    pub unattributed_lost: u64,
    /// Duplicates delivered after every window had healed.
    pub unattributed_duplicates: u64,
    /// Envelopes the link layer lost outright ([`DropCause::Loss`]) — the
    /// lossy-link counterpart of the per-window `dropped_envelopes`.
    pub lost_envelopes: u64,
    /// Envelopes delivered corrupted and discarded ([`DropCause::Corruption`]).
    pub corrupted: u64,
    /// Duplicate deliveries the broker dedup layer suppressed before they
    /// reached a client (filled in by the runner from broker counters; zero
    /// when `dedup_window == 0`).
    pub duplicates_suppressed: u64,
    /// Publisher-side retransmissions performed (filled in by the runner
    /// from client counters; zero unless retransmission was enabled).
    pub retransmissions: u64,
    /// Subscriptions a restarting broker had to re-install because its
    /// neighbour-held checkpoint replica was stale (filled in by the runner
    /// from broker counters; zero unless replication was enabled).
    pub stale_resubscribes: u64,
}

/// Hand-written so the reliability counters introduced with lossy links only
/// print when set: zero-loss, zero-dedup runs emit exactly the pre-reliability
/// `Debug` form, which keeps every existing golden (`debug_fnv` hashes this
/// output) byte-identical without regeneration.
impl std::fmt::Debug for RecoveryLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("RecoveryLedger");
        s.field("records", &self.records)
            .field("unattributed_lost", &self.unattributed_lost)
            .field("unattributed_duplicates", &self.unattributed_duplicates);
        if self.lost_envelopes > 0 {
            s.field("lost_envelopes", &self.lost_envelopes);
        }
        if self.corrupted > 0 {
            s.field("corrupted", &self.corrupted);
        }
        if self.duplicates_suppressed > 0 {
            s.field("duplicates_suppressed", &self.duplicates_suppressed);
        }
        if self.retransmissions > 0 {
            s.field("retransmissions", &self.retransmissions);
        }
        if self.stale_resubscribes > 0 {
            s.field("stale_resubscribes", &self.stale_resubscribes);
        }
        s.finish()
    }
}

impl RecoveryLedger {
    /// Build the ledger from the run's fault schedule, the engine's drop
    /// log, and the same raw logs the delivery audit consumes. Returns the
    /// empty ledger when no faults were injected and no envelope was
    /// dropped (the zero-fault, zero-loss fast path does no per-delivery
    /// work). A loss-only run (no outage windows, but lossy links dropped
    /// envelopes) still gets a full ledger: its audited losses all land in
    /// `unattributed_lost`, and every drop is counted by cause.
    ///
    /// Unlike [`HandoverLedger::assemble`], every subscriber participates —
    /// a stationary client loses events when its broker crashes, even though
    /// it never hands over.
    pub fn assemble(
        windows: &[OutageWindow],
        drops: &[DropRecord],
        published: &[Event],
        clients: &[ClientHandoverLog<'_>],
        pending: &[(ClientId, EventId)],
    ) -> RecoveryLedger {
        if windows.is_empty() && drops.is_empty() {
            return RecoveryLedger::default();
        }
        let mut records: Vec<OutageRecord> = windows
            .iter()
            .map(|w| OutageRecord {
                kind: w.kind.label(),
                scope: w.scope_label(),
                start: w.start,
                end: w.end,
                dropped_envelopes: 0,
                lost: 0,
                duplicates: 0,
                repair_ms: None,
            })
            .collect();
        let mut lost_envelopes = 0u64;
        let mut corrupted = 0u64;
        for d in drops {
            match d.cause {
                DropCause::Fault(w) => {
                    if let Some(r) = records.get_mut(w) {
                        r.dropped_envelopes += 1;
                    }
                }
                DropCause::Loss => lost_envelopes += 1,
                DropCause::Corruption => corrupted += 1,
            }
        }

        // Attribution order: earliest-healing window first, so a loss
        // overlapped by two windows goes to the one that healed first (the
        // one that could not have saved it).
        let mut by_end: Vec<usize> = (0..windows.len()).collect();
        by_end.sort_by_key(|&i| (windows[i].end, windows[i].start));
        let attribute = |t: SimTime| by_end.iter().copied().find(|&i| t < windows[i].end);

        let publish_time: BTreeMap<EventId, SimTime> =
            published.iter().map(|e| (e.id, e.published_at)).collect();
        let mut pending_by_client: BTreeMap<ClientId, BTreeSet<EventId>> = BTreeMap::new();
        for (c, e) in pending {
            pending_by_client.entry(*c).or_default().insert(*e);
        }

        let mut unattributed_lost = 0u64;
        let mut unattributed_duplicates = 0u64;
        let mut first_after: Vec<Option<SimTime>> = vec![None; windows.len()];

        for log in clients {
            // Mirror the audit exactly: expected = published events matching
            // the filter, minus own publications; duplicates = every
            // delivery beyond the first of an event; lost = expected events
            // neither seen nor pending.
            let expected: BTreeSet<EventId> = published
                .iter()
                .filter(|e| e.publisher != log.client && log.filter.matches(e))
                .map(|e| e.id)
                .collect();
            let mut seen: BTreeSet<EventId> = BTreeSet::new();
            for d in log.deliveries {
                if !seen.insert(d.event) {
                    match attribute(d.at) {
                        Some(i) => records[i].duplicates += 1,
                        None => unattributed_duplicates += 1,
                    }
                }
                for (i, w) in windows.iter().enumerate() {
                    if d.at >= w.end && first_after[i].is_none_or(|t| d.at < t) {
                        first_after[i] = Some(d.at);
                    }
                }
            }
            let empty = BTreeSet::new();
            let pending_here = pending_by_client.get(&log.client).unwrap_or(&empty);
            for missing in expected.difference(&seen) {
                if pending_here.contains(missing) {
                    continue;
                }
                let at = publish_time.get(missing).copied().unwrap_or(SimTime::ZERO);
                match attribute(at) {
                    Some(i) => records[i].lost += 1,
                    None => unattributed_lost += 1,
                }
            }
        }
        for (i, r) in records.iter_mut().enumerate() {
            r.repair_ms = first_after[i].map(|t| t.since(windows[i].end).as_millis_f64());
        }
        RecoveryLedger {
            records,
            unattributed_lost,
            unattributed_duplicates,
            lost_envelopes,
            corrupted,
            duplicates_suppressed: 0,
            retransmissions: 0,
            stale_resubscribes: 0,
        }
    }

    /// Number of injected outage windows.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the ledger has nothing to report: no faults were injected,
    /// no envelope was lost or corrupted, and the reliability layer never
    /// acted. Zero-fault, zero-loss runs stay on this path, which is what
    /// keeps their JSON exports (`"recovery": null`) byte-identical.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
            && self.unattributed_lost == 0
            && self.unattributed_duplicates == 0
            && self.lost_envelopes == 0
            && self.corrupted == 0
            && self.duplicates_suppressed == 0
            && self.retransmissions == 0
            && self.stale_resubscribes == 0
    }

    /// Total envelopes dropped, by any cause: fault windows plus link loss
    /// plus corruption.
    pub fn total_dropped(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.dropped_envelopes)
            .sum::<u64>()
            + self.lost_envelopes
            + self.corrupted
    }

    /// Total audited losses — attributed plus unattributed. Equals
    /// `audit.lost` by construction.
    pub fn total_lost(&self) -> u64 {
        self.records.iter().map(|r| r.lost).sum::<u64>() + self.unattributed_lost
    }

    /// Total audited duplicates — attributed plus unattributed. Equals
    /// `audit.duplicates` by construction.
    pub fn total_duplicates(&self) -> u64 {
        self.records.iter().map(|r| r.duplicates).sum::<u64>() + self.unattributed_duplicates
    }

    /// Mean observed time-to-repair over the windows that saw a delivery
    /// after healing; `None` when none did (or no faults were injected).
    pub fn mean_repair_ms(&self) -> Option<f64> {
        let repairs: Vec<f64> = self.records.iter().filter_map(|r| r.repair_ms).collect();
        if repairs.is_empty() {
            None
        } else {
            Some(repairs.iter().sum::<f64>() / repairs.len() as f64)
        }
    }

    /// Worst observed time-to-repair, if any window saw one.
    pub fn max_repair_ms(&self) -> Option<f64> {
        self.records
            .iter()
            .filter_map(|r| r.repair_ms)
            .max_by(f64::total_cmp)
    }

    /// Whether the ledger's loss and duplicate totals match the run-level
    /// delivery audit exactly — the failure panel's sanity gate.
    pub fn reconciles_with(&self, audit: &DeliveryAudit) -> bool {
        self.total_lost() == audit.lost && self.total_duplicates() == audit.duplicates
    }
}

/// The p50/p95/p99 summary of a ledger's first-delivery gap distribution —
/// the tail the mean hides (ROADMAP: percentile reporting over the ledger).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapPercentiles {
    /// Median first-delivery gap (ms).
    pub p50: f64,
    /// 95th-percentile gap (ms).
    pub p95: f64,
    /// 99th-percentile gap (ms).
    pub p99: f64,
}

impl GapPercentiles {
    /// Summarize an unsorted sample: one sort, three nearest-rank reads.
    fn of(mut samples: Vec<f64>) -> Option<GapPercentiles> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(f64::total_cmp);
        Some(GapPercentiles {
            p50: nearest_rank(&samples, 50.0),
            p95: nearest_rank(&samples, 95.0),
            p99: nearest_rank(&samples, 99.0),
        })
    }
}

/// Nearest-rank percentile of a **sorted, non-empty** sample.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let q = q.clamp(f64::MIN_POSITIVE, 100.0);
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Nearest-rank percentile of an unsorted sample (`0 < q <= 100`); `None`
/// on an empty sample.
fn percentile(mut samples: Vec<f64>, q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(f64::total_cmp);
    Some(nearest_rank(&samples, q))
}

/// Bytes-on-wire and serialization accounting of one run. All counters stay
/// zero when payload modeling is off (`payload_bytes_mean == 0`), which is
/// what lets [`RunResult`]'s `Debug` omit the whole block and keep
/// pre-payload goldens byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Bytes carried by event deliveries (broker → subscriber).
    pub delivery_bytes: u64,
    /// Bytes carried by every message class, summed over all links.
    pub total_wire_bytes: u64,
    /// Fan-outs that rendered at least one wire form.
    pub fanouts: u64,
    /// Full wire-form renders performed by brokers.
    pub serializations: u64,
    /// Total bytes rendered across all serializations.
    pub bytes_serialized: u64,
    /// Heap buffers allocated for fan-out wire forms.
    pub fanout_allocs: u64,
    /// Destinations served from an already-rendered cached form.
    pub cache_hits: u64,
    /// Highest buffered-bytes sample at any single broker (zero unless
    /// memory tracking was on).
    pub buffered_bytes_peak: u64,
    /// Largest modeled checkpoint written by any single broker restart.
    pub checkpoint_bytes_peak: u64,
    /// Highest dedup-state sample (watermarks plus recent-id window) at any
    /// single broker (zero unless memory tracking and dedup were both on).
    pub dedup_bytes_peak: u64,
}

/// The outcome of one scenario run: the paper's two performance metrics plus
/// the reliability audit, the per-handover ledger and raw counters useful
/// for debugging and reports.
#[derive(Clone)]
pub struct RunResult {
    /// Display label of the protocol that was run (e.g. `"MHH"`). A label
    /// rather than a closed enum, so registry-provided protocols flow
    /// through the metrics and reports unchanged; generic and
    /// dyn-dispatched runs of the same protocol carry the same label, which
    /// is what makes their results byte-identical.
    pub protocol: String,
    /// Number of handoffs that occurred (reconnections at a different
    /// broker). Derived from the ledger.
    pub handoffs: u64,
    /// Total network hops attributable to mobility management.
    pub mobility_hops: u64,
    /// The paper's "message overhead per handoff": mobility hops divided by
    /// the number of handoffs.
    pub overhead_per_handoff: f64,
    /// The paper's "average handoff delay" in milliseconds (reconnection to
    /// first delivered event), averaged over handoffs that received at least
    /// one event. Derived from the ledger.
    pub avg_handoff_delay_ms: f64,
    /// Number of handoffs that contributed a delay sample. Derived from the
    /// ledger.
    pub delay_samples: u64,
    /// Delivery-reliability audit (loss / duplicates / ordering).
    pub audit: DeliveryAudit,
    /// The per-handover ledger (one record per disconnect/reconnect pair).
    pub ledger: HandoverLedger,
    /// The per-outage recovery ledger (empty on zero-fault runs).
    pub recovery: RecoveryLedger,
    /// Total events published during the run.
    pub published: u64,
    /// Total event deliveries to clients.
    pub delivered_messages: u64,
    /// Total hops over all network traffic (context for the overhead metric).
    pub total_hops: u64,
    /// Simulated duration in seconds.
    pub sim_duration_s: f64,
    /// Bytes-on-wire and serialization accounting; all-zero (the default)
    /// when payload modeling is off.
    pub traffic: TrafficReport,
}

/// Hand-written so the `traffic` block only appears when payload modeling
/// produced any accounting: zero-payload runs print exactly the derived
/// `Debug` the pre-payload simulator had, which pins every existing golden
/// (`debug_fnv` hashes this output) without regeneration.
impl std::fmt::Debug for RunResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("RunResult");
        s.field("protocol", &self.protocol)
            .field("handoffs", &self.handoffs)
            .field("mobility_hops", &self.mobility_hops)
            .field("overhead_per_handoff", &self.overhead_per_handoff)
            .field("avg_handoff_delay_ms", &self.avg_handoff_delay_ms)
            .field("delay_samples", &self.delay_samples)
            .field("audit", &self.audit)
            .field("ledger", &self.ledger)
            .field("recovery", &self.recovery)
            .field("published", &self.published)
            .field("delivered_messages", &self.delivered_messages)
            .field("total_hops", &self.total_hops)
            .field("sim_duration_s", &self.sim_duration_s);
        if self.traffic != TrafficReport::default() {
            s.field("traffic", &self.traffic);
        }
        s.finish()
    }
}

impl RunResult {
    /// Fraction of expected deliveries that were lost (home-broker's
    /// reliability gap shows up here).
    pub fn loss_rate(&self) -> f64 {
        self.audit.loss_rate()
    }

    /// True when the run satisfied exactly-once ordered delivery.
    pub fn reliable(&self) -> bool {
        self.audit.is_reliable()
    }

    /// Number of proclaimed (§4.1) handoffs in the run.
    pub fn proclaimed_handoffs(&self) -> u64 {
        self.ledger.kind_count(HandoverKind::Proclaimed)
    }

    /// Number of reactive (§4.2) handoffs in the run.
    pub fn reactive_handoffs(&self) -> u64 {
        self.ledger.kind_count(HandoverKind::Reactive)
    }

    /// Mean first-delivery gap of one handover kind, if any handoff of that
    /// kind saw a delivery.
    pub fn mean_gap_ms(&self, kind: HandoverKind) -> Option<f64> {
        self.ledger.mean_gap_ms_of(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhh_pubsub::event::EventBuilder;
    use mhh_pubsub::{BrokerId, Op};

    fn sample_result(ledger: HandoverLedger) -> RunResult {
        RunResult {
            protocol: "MHH".to_string(),
            handoffs: ledger.handoff_count(),
            mobility_hops: 500,
            overhead_per_handoff: 50.0,
            avg_handoff_delay_ms: ledger.mean_delay_ms(),
            delay_samples: ledger.delays_ms().len() as u64,
            audit: DeliveryAudit {
                expected: 100,
                delivered: 98,
                duplicates: 0,
                pending: 2,
                lost: 0,
                out_of_order: 0,
            },
            ledger,
            recovery: RecoveryLedger::default(),
            published: 40,
            delivered_messages: 98,
            total_hops: 10_000,
            sim_duration_s: 600.0,
            traffic: TrafficReport::default(),
        }
    }

    #[test]
    fn run_result_debug_omits_an_all_zero_traffic_block() {
        // Golden safety: zero-payload runs must print the exact pre-payload
        // Debug form, so the block only appears once any counter is set.
        let plain = sample_result(HandoverLedger::default());
        assert!(!format!("{plain:?}").contains("traffic"));
        let mut with_bytes = plain.clone();
        with_bytes.traffic.delivery_bytes = 1;
        assert!(format!("{with_bytes:?}").contains("traffic"));
    }

    fn record(kind: HandoverKind, arrived_ms: u64, first_ms: Option<u64>) -> HandoverRecord {
        HandoverRecord {
            client: ClientId(0),
            kind,
            from: BrokerId(0),
            to: BrokerId(1),
            departed: SimTime::from_millis(arrived_ms.saturating_sub(50)),
            arrived: SimTime::from_millis(arrived_ms),
            first_delivery: first_ms.map(SimTime::from_millis),
            is_handoff: true,
            buffered: 0,
            lost: 0,
            duplicates: 0,
        }
    }

    #[test]
    fn derived_quantities() {
        let ledger = HandoverLedger {
            records: vec![
                record(HandoverKind::Reactive, 100, Some(180)),
                record(HandoverKind::Proclaimed, 400, Some(420)),
                record(HandoverKind::Proclaimed, 700, None),
            ],
        };
        let r = sample_result(ledger);
        assert!(r.reliable());
        assert_eq!(r.loss_rate(), 0.0);
        assert_eq!(r.handoffs, 3);
        assert_eq!(r.delay_samples, 2);
        assert_eq!(r.proclaimed_handoffs(), 2);
        assert_eq!(r.reactive_handoffs(), 1);
        assert_eq!(r.mean_gap_ms(HandoverKind::Reactive), Some(80.0));
        assert_eq!(r.mean_gap_ms(HandoverKind::Proclaimed), Some(20.0));
        assert_eq!(r.avg_handoff_delay_ms, 50.0);
    }

    #[test]
    fn percentiles_use_nearest_rank_over_the_gap_distribution() {
        // 100 handoffs with gaps 1..=100 ms: p50 = 50, p95 = 95, p99 = 99.
        let ledger = HandoverLedger {
            records: (1..=100u64)
                .map(|i| record(HandoverKind::Reactive, 1_000, Some(1_000 + i)))
                .collect(),
        };
        let p = ledger.gap_percentiles_ms().expect("gaps exist");
        assert_eq!((p.p50, p.p95, p.p99), (50.0, 95.0, 99.0));
        assert_eq!(ledger.percentile_gap_ms(100.0), Some(100.0));
        assert_eq!(ledger.percentile_gap_ms(1.0), Some(1.0));
        assert_eq!(
            ledger.percentile_gap_ms_of(HandoverKind::Reactive, 50.0),
            Some(50.0)
        );
        assert_eq!(
            ledger.percentile_gap_ms_of(HandoverKind::Proclaimed, 50.0),
            None
        );
        // Empty ledger: no percentiles.
        assert!(HandoverLedger::default().gap_percentiles_ms().is_none());
        // Records without deliveries contribute nothing.
        let sparse = HandoverLedger {
            records: vec![
                record(HandoverKind::Reactive, 100, None),
                record(HandoverKind::Reactive, 100, Some(170)),
            ],
        };
        let p = sparse.gap_percentiles_ms().unwrap();
        assert_eq!((p.p50, p.p95, p.p99), (70.0, 70.0, 70.0));
    }

    #[test]
    fn assemble_pairs_disconnects_with_reconnects_and_partitions_counts() {
        let filter = Filter::single("g", Op::Eq, 1i64);
        let ev = |id: u64, publisher: u32, at_ms: u64| {
            EventBuilder::new()
                .attr("g", 1i64)
                .build(id, ClientId(publisher), id)
                .stamped(SimTime::from_millis(at_ms))
        };
        // Publisher 9 publishes four matching events across two windows.
        let published = vec![
            ev(1, 9, 50),
            ev(2, 9, 150),
            ev(3, 9, 1_150),
            ev(4, 9, 1_200),
        ];
        let disconnects = vec![
            DisconnectRecord {
                at: SimTime::from_millis(100),
                broker: BrokerId(0),
                proclaimed_dest: None,
            },
            DisconnectRecord {
                at: SimTime::from_millis(1_100),
                broker: BrokerId(2),
                proclaimed_dest: Some(BrokerId(3)),
            },
        ];
        let reconnects = vec![
            ReconnectRecord {
                at: SimTime::from_millis(300),
                from: Some(BrokerId(0)),
                to: BrokerId(2),
                first_delivery: Some(SimTime::from_millis(350)),
                is_handoff: true,
            },
            ReconnectRecord {
                at: SimTime::from_millis(1_300),
                from: Some(BrokerId(2)),
                to: BrokerId(3),
                first_delivery: Some(SimTime::from_millis(1_320)),
                is_handoff: true,
            },
        ];
        // Event 2 (published during window 0) delivered after the first
        // reconnect (buffered catch-up); event 2 delivered again later
        // (duplicate, in window 1); event 3 delivered promptly; event 4
        // never delivered and not pending -> lost, in window 1. Event 1 was
        // delivered live before the first disconnect.
        let mk = |id: u64, pub_ms: u64, at_ms: u64| DeliveryRecord {
            at: SimTime::from_millis(at_ms),
            event: EventId(id),
            publisher: ClientId(9),
            seq: id,
            published_at: SimTime::from_millis(pub_ms),
        };
        let deliveries = vec![
            mk(1, 50, 80),
            mk(2, 150, 350),
            mk(3, 1_150, 1_320),
            mk(2, 150, 1_400),
        ];
        let logs = [ClientHandoverLog {
            client: ClientId(0),
            filter: &filter,
            disconnects: &disconnects,
            reconnects: &reconnects,
            deliveries: &deliveries,
        }];
        let ledger = HandoverLedger::assemble(&published, &logs, &[]);
        assert_eq!(ledger.len(), 2);
        let (w0, w1) = (&ledger.records[0], &ledger.records[1]);
        assert_eq!(w0.kind, HandoverKind::Reactive);
        assert_eq!(w1.kind, HandoverKind::Proclaimed);
        assert_eq!(w0.buffered, 1, "event 2 caught up after the reconnect");
        assert_eq!(w0.duplicates, 0);
        assert_eq!(w0.lost, 0);
        assert_eq!(w1.buffered, 1, "event 3 published at 1150 < arrive 1300");
        assert_eq!(w1.duplicates, 1, "event 2 redelivered at 1400");
        assert_eq!(w1.lost, 1, "event 4 vanished in window 1");
        assert_eq!(ledger.total_lost(), 1);
        assert_eq!(ledger.total_duplicates(), 1);
        assert_eq!(ledger.handoff_count(), 2);
        assert_eq!(ledger.kind_count(HandoverKind::Proclaimed), 1);
        // Pending events are not lost.
        let with_pending =
            HandoverLedger::assemble(&published, &logs, &[(ClientId(0), EventId(4))]);
        assert_eq!(with_pending.total_lost(), 0);
    }

    #[test]
    fn recovery_ledger_partitions_losses_and_reconciles_with_the_audit() {
        use mhh_simnet::{FaultKind, NodeId, OutageScope, TrafficClass};
        let windows = vec![
            OutageWindow {
                kind: FaultKind::BrokerCrash,
                start: SimTime::from_millis(100),
                end: SimTime::from_millis(300),
                scope: OutageScope::Node(NodeId(0)),
            },
            OutageWindow {
                kind: FaultKind::LinkPartition,
                start: SimTime::from_millis(200),
                end: SimTime::from_millis(600),
                scope: OutageScope::Link(NodeId(1), NodeId(2)),
            },
        ];
        let drop = |at_ms: u64, cause: DropCause| DropRecord {
            at: SimTime::from_millis(at_ms),
            from: NodeId(1),
            to: NodeId(0),
            kind: "event",
            class: TrafficClass::EventDelivery,
            cause,
        };
        let drops = vec![
            drop(120, DropCause::Fault(0)),
            drop(150, DropCause::Fault(0)),
            drop(250, DropCause::Fault(1)),
        ];

        let filter = Filter::single("g", Op::Eq, 1i64);
        let ev = |id: u64, at_ms: u64| {
            EventBuilder::new()
                .attr("g", 1i64)
                .build(id, ClientId(9), id)
                .stamped(SimTime::from_millis(at_ms))
        };
        // e4 delivered live; e1 delivered (plus two duplicate copies); e5
        // vanished during the crash; e2 vanished during the partition; e3
        // (published after every window healed) vanished with no outage to
        // blame; e6 is still pending, so it is not lost.
        let published = vec![
            ev(1, 150),
            ev(2, 400),
            ev(3, 700),
            ev(4, 50),
            ev(5, 150),
            ev(6, 150),
        ];
        let mk = |id: u64, pub_ms: u64, at_ms: u64| DeliveryRecord {
            at: SimTime::from_millis(at_ms),
            event: EventId(id),
            publisher: ClientId(9),
            seq: id,
            published_at: SimTime::from_millis(pub_ms),
        };
        let deliveries = vec![
            mk(1, 150, 250),
            mk(1, 150, 280),
            mk(4, 50, 350),
            mk(1, 150, 650),
        ];
        let logs = [ClientHandoverLog {
            client: ClientId(0),
            filter: &filter,
            disconnects: &[],
            reconnects: &[],
            deliveries: &deliveries,
        }];
        let ledger = RecoveryLedger::assemble(
            &windows,
            &drops,
            &published,
            &logs,
            &[(ClientId(0), EventId(6))],
        );

        assert_eq!(ledger.len(), 2);
        let (w0, w1) = (&ledger.records[0], &ledger.records[1]);
        assert_eq!((w0.kind, w0.scope.as_str()), ("crash", "broker 0"));
        assert_eq!((w1.kind, w1.scope.as_str()), ("partition", "link 1-2"));
        assert_eq!(w0.dropped_envelopes, 2);
        assert_eq!(w1.dropped_envelopes, 1);
        assert_eq!(w0.lost, 1, "e5 published at 150 < crash heal 300");
        assert_eq!(w1.lost, 1, "e2 published at 400 < partition heal 600");
        assert_eq!(ledger.unattributed_lost, 1, "e3 outlived every window");
        assert_eq!(w0.duplicates, 1, "the copy at 280 fell inside the crash");
        assert_eq!(w1.duplicates, 0);
        assert_eq!(
            ledger.unattributed_duplicates, 1,
            "the copy at 650 is past both windows"
        );
        // Time-to-repair: first delivery at/after each heal instant.
        assert_eq!(w0.repair_ms, Some(50.0), "350 − heal 300");
        assert_eq!(w1.repair_ms, Some(50.0), "650 − heal 600");
        assert_eq!(w0.outage_ms(), 200.0);
        assert_eq!(ledger.mean_repair_ms(), Some(50.0));
        assert_eq!(ledger.max_repair_ms(), Some(50.0));
        assert_eq!(ledger.total_dropped(), 3);
        // Exact reconciliation with the audit-style totals.
        assert_eq!(ledger.total_lost(), 3);
        assert_eq!(ledger.total_duplicates(), 2);
        let audit = DeliveryAudit {
            expected: 5,
            delivered: 2,
            duplicates: 2,
            pending: 1,
            lost: 3,
            out_of_order: 0,
        };
        assert!(ledger.reconciles_with(&audit));
        assert!(!ledger.reconciles_with(&DeliveryAudit::default()));
        // Zero faults: the empty ledger, no per-delivery work.
        assert!(RecoveryLedger::assemble(&[], &[], &published, &logs, &[]).is_empty());
    }

    #[test]
    fn loss_only_runs_assemble_a_ledger_and_debug_omits_zero_reliability_fields() {
        use mhh_simnet::{NodeId, TrafficClass};
        // Golden safety: the default ledger prints the exact pre-reliability
        // Debug form — no lost_envelopes / corrupted / suppressed /
        // retransmissions fields.
        let plain = format!("{:?}", RecoveryLedger::default());
        assert_eq!(
            plain,
            "RecoveryLedger { records: [], unattributed_lost: 0, \
             unattributed_duplicates: 0 }"
        );

        // A run with no outage windows but lossy-link drops still gets a
        // ledger: drops counted by cause, audited losses unattributed.
        let filter = Filter::single("g", Op::Eq, 1i64);
        let published = vec![EventBuilder::new()
            .attr("g", 1i64)
            .build(1, ClientId(9), 1)
            .stamped(SimTime::from_millis(50))];
        let logs = [ClientHandoverLog {
            client: ClientId(0),
            filter: &filter,
            disconnects: &[],
            reconnects: &[],
            deliveries: &[],
        }];
        let drop = |cause: DropCause| DropRecord {
            at: SimTime::from_millis(60),
            from: NodeId(1),
            to: NodeId(0),
            kind: "event",
            class: TrafficClass::EventDelivery,
            cause,
        };
        let drops = vec![
            drop(DropCause::Loss),
            drop(DropCause::Loss),
            drop(DropCause::Corruption),
        ];
        let ledger = RecoveryLedger::assemble(&[], &drops, &published, &logs, &[]);
        assert!(!ledger.is_empty(), "loss-only runs are not empty ledgers");
        assert_eq!(ledger.lost_envelopes, 2);
        assert_eq!(ledger.corrupted, 1);
        assert_eq!(ledger.total_dropped(), 3);
        assert_eq!(ledger.unattributed_lost, 1, "e1 lost, no window to blame");
        let audit = DeliveryAudit {
            expected: 1,
            delivered: 0,
            duplicates: 0,
            pending: 0,
            lost: 1,
            out_of_order: 0,
        };
        assert!(ledger.reconciles_with(&audit));
        let dbg = format!("{ledger:?}");
        assert!(dbg.contains("lost_envelopes: 2"), "{dbg}");
        assert!(dbg.contains("corrupted: 1"), "{dbg}");
        assert!(!dbg.contains("duplicates_suppressed"), "{dbg}");
        assert!(!dbg.contains("retransmissions"), "{dbg}");
    }

    #[test]
    fn unpaired_initial_reconnect_is_skipped() {
        let filter = Filter::single("g", Op::Eq, 1i64);
        let reconnects = vec![
            ReconnectRecord {
                at: SimTime::from_millis(10),
                from: None,
                to: BrokerId(0),
                first_delivery: None,
                is_handoff: false,
            },
            ReconnectRecord {
                at: SimTime::from_millis(500),
                from: Some(BrokerId(0)),
                to: BrokerId(1),
                first_delivery: None,
                is_handoff: true,
            },
        ];
        let disconnects = vec![DisconnectRecord {
            at: SimTime::from_millis(200),
            broker: BrokerId(0),
            proclaimed_dest: None,
        }];
        let logs = [ClientHandoverLog {
            client: ClientId(0),
            filter: &filter,
            disconnects: &disconnects,
            reconnects: &reconnects,
            deliveries: &[],
        }];
        let ledger = HandoverLedger::assemble(&[], &logs, &[]);
        assert_eq!(
            ledger.len(),
            1,
            "the action-driven initial attach is not a handover"
        );
        assert_eq!(ledger.records[0].from, BrokerId(0));
        assert_eq!(ledger.records[0].to, BrokerId(1));
    }

    #[test]
    fn initial_attach_plus_trailing_park_pair_by_time_not_by_count() {
        // Equal-length lists that must NOT pair index-to-index: the first
        // reconnect is an initial attach (precedes every disconnect) and the
        // last disconnect is a park (never followed by a reconnect).
        let filter = Filter::single("g", Op::Eq, 1i64);
        let reconnects = vec![
            ReconnectRecord {
                at: SimTime::from_millis(10),
                from: None,
                to: BrokerId(0),
                first_delivery: None,
                is_handoff: false,
            },
            ReconnectRecord {
                at: SimTime::from_millis(500),
                from: Some(BrokerId(0)),
                to: BrokerId(1),
                first_delivery: None,
                is_handoff: true,
            },
        ];
        let disconnects = vec![
            DisconnectRecord {
                at: SimTime::from_millis(200),
                broker: BrokerId(0),
                proclaimed_dest: None,
            },
            DisconnectRecord {
                at: SimTime::from_millis(900),
                broker: BrokerId(1),
                proclaimed_dest: None,
            },
        ];
        let logs = [ClientHandoverLog {
            client: ClientId(0),
            filter: &filter,
            disconnects: &disconnects,
            reconnects: &reconnects,
            deliveries: &[],
        }];
        let ledger = HandoverLedger::assemble(&[], &logs, &[]);
        assert_eq!(ledger.len(), 1);
        let r = &ledger.records[0];
        assert_eq!(r.departed, SimTime::from_millis(200));
        assert_eq!(r.arrived, SimTime::from_millis(500));
        assert!(r.departed <= r.arrived, "windows never run backwards");
    }
}
