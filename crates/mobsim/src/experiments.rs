//! The paper's parameter sweeps — Figure 5 (varying the connection-period
//! length) and Figure 6 (varying the network size) — plus the
//! mobility-model × protocol matrix the paper never ran.
//!
//! The protocol axis is data-driven: every sweep iterates the entries of a
//! [`ProtocolRegistry`] and runs them through the dyn-dispatched
//! [`run_spec`] path, so registering a new protocol adds a curve to every
//! figure and a column to every matrix without touching this module. The
//! default entry points use the process-wide registry; the `*_in` variants
//! take an explicit one.
//!
//! Each point of each curve is an independent simulation run; points are
//! distributed over scoped worker threads by
//! [`mhh_mobility::sweep::map_parallel`] (the runs themselves stay
//! single-threaded for determinism, so parallel results are byte-identical
//! to a serial sweep of the same seeds).

use std::time::Duration;

use mhh_mobility::sweep::{available_workers, map_parallel_budgeted};
use mhh_mobility::ModelKind;
use mhh_pubsub::FanoutMode;

use crate::config::ScenarioConfig;
use crate::metrics::RunResult;
use crate::protocols::{ProtocolRegistry, ProtocolSpec};
use crate::runner::run_spec;

/// First-seen-order deduplication, shared by the curve/row/column
/// accessors below (first-seen order = registry order for protocols).
fn first_seen<'a, T: PartialEq + ?Sized>(items: impl Iterator<Item = &'a T>) -> Vec<&'a T> {
    let mut out: Vec<&'a T> = Vec::new();
    for item in items {
        if !out.contains(&item) {
            out.push(item);
        }
    }
    out
}

/// One `(x, protocol)` point of a figure.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// The swept parameter value (connection period in seconds for Figure 5,
    /// number of base stations for Figure 6).
    pub x: f64,
    /// Display label of the protocol run at this point.
    pub protocol: String,
    /// Label of the mobility model the point ran under (parameter point
    /// included, e.g. `random-waypoint(pause=60s)`).
    pub mobility: String,
    /// Label of the network topology the point ran on (parameter point
    /// included, e.g. `scale-free(m=2)`).
    pub topology: String,
    /// The collected metrics.
    pub result: RunResult,
}

/// A complete figure: all points of all curves.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure identifier (e.g. `"figure5"`).
    pub name: String,
    /// Label of the swept parameter (the figures' x axis).
    pub x_label: String,
    /// All completed points.
    pub points: Vec<ExperimentPoint>,
    /// Points skipped because a wall-clock budget ran out before they could
    /// start, as `"x × protocol"` labels. Empty for unbudgeted sweeps.
    pub skipped: Vec<String>,
}

impl FigureResult {
    /// The distinct protocol labels, in first-seen (= registry) order.
    pub fn protocols(&self) -> Vec<&str> {
        first_seen(self.points.iter().map(|p| p.protocol.as_str()))
    }

    /// The points of one protocol (by display label), sorted by x.
    pub fn curve(&self, protocol: &str) -> Vec<&ExperimentPoint> {
        let mut pts: Vec<&ExperimentPoint> = self
            .points
            .iter()
            .filter(|p| p.protocol == protocol)
            .collect();
        pts.sort_by(|a, b| a.x.total_cmp(&b.x));
        pts
    }

    /// The overhead-per-handoff series of one protocol (the y values of
    /// Figures 5(a) / 6(a)).
    pub fn overhead_series(&self, protocol: &str) -> Vec<(f64, f64)> {
        self.curve(protocol)
            .iter()
            .map(|p| (p.x, p.result.overhead_per_handoff))
            .collect()
    }

    /// The handoff-delay series of one protocol (the y values of
    /// Figures 5(b) / 6(b)).
    pub fn delay_series(&self, protocol: &str) -> Vec<(f64, f64)> {
        self.curve(protocol)
            .iter()
            .map(|p| (p.x, p.result.avg_handoff_delay_ms))
            .collect()
    }
}

/// The connection-period values of Figure 5 (seconds, log-spaced).
pub const FIG5_CONN_PERIODS_S: [f64; 5] = [1.0, 10.0, 100.0, 1_000.0, 10_000.0];

/// The grid side lengths of Figure 6 (25, 49, 100, 144 and 196 stations).
pub const FIG6_GRID_SIDES: [usize; 5] = [5, 7, 10, 12, 14];

/// Run the Figure 5 sweep (message overhead and handoff delay vs. the average
/// connection-period length) on top of the given base configuration, with
/// every protocol of the process-wide registry. The paper fixes 100 base
/// stations and a 5-minute mean disconnection period; the base config
/// controls the scale so tests can run a smaller system.
pub fn figure5(base: &ScenarioConfig, conn_periods_s: &[f64]) -> FigureResult {
    figure5_with_workers(base, conn_periods_s, available_workers())
}

/// [`figure5`] with an explicit worker count (1 = serial). Parallel and
/// serial runs of the same base config produce byte-identical results.
pub fn figure5_with_workers(
    base: &ScenarioConfig,
    conn_periods_s: &[f64],
    workers: usize,
) -> FigureResult {
    figure5_in(&ProtocolRegistry::global(), base, conn_periods_s, workers)
}

/// [`figure5`] over an explicit protocol registry.
pub fn figure5_in(
    registry: &ProtocolRegistry,
    base: &ScenarioConfig,
    conn_periods_s: &[f64],
    workers: usize,
) -> FigureResult {
    figure5_budgeted_in(registry, base, conn_periods_s, workers, None)
}

/// [`figure5_in`] under an optional wall-clock budget: points that cannot
/// start before the budget elapses are recorded in
/// [`FigureResult::skipped`] instead of silently truncating the sweep.
pub fn figure5_budgeted_in(
    registry: &ProtocolRegistry,
    base: &ScenarioConfig,
    conn_periods_s: &[f64],
    workers: usize,
    budget: Option<Duration>,
) -> FigureResult {
    let jobs: Vec<(f64, &ProtocolSpec)> = conn_periods_s
        .iter()
        .flat_map(|&p| registry.specs().iter().map(move |spec| (p, spec)))
        .collect();
    let budgeted = map_parallel_budgeted(&jobs, workers, budget, |&(conn, spec)| {
        let config = ScenarioConfig {
            conn_mean_s: conn,
            ..base.clone()
        }
        .with_adaptive_duration(1.5);
        let result = run_spec(&config, spec);
        ExperimentPoint {
            x: conn,
            protocol: spec.label().to_string(),
            mobility: config.mobility.to_string(),
            topology: config.topology.to_string(),
            result,
        }
    });
    let skipped = budgeted
        .skipped
        .iter()
        .map(|&i| format!("{} × {}", jobs[i].0, jobs[i].1.label()))
        .collect();
    FigureResult {
        name: "figure5".to_string(),
        x_label: "avg. length of conn. period (s)".to_string(),
        points: budgeted.results.into_iter().flatten().collect(),
        skipped,
    }
}

/// Run the Figure 6 sweep (message overhead and handoff delay vs. the number
/// of base stations) on top of the given base configuration, with every
/// protocol of the process-wide registry. The paper fixes both period means
/// at 5 minutes.
pub fn figure6(base: &ScenarioConfig, grid_sides: &[usize]) -> FigureResult {
    figure6_with_workers(base, grid_sides, available_workers())
}

/// [`figure6`] with an explicit worker count (1 = serial).
pub fn figure6_with_workers(
    base: &ScenarioConfig,
    grid_sides: &[usize],
    workers: usize,
) -> FigureResult {
    figure6_in(&ProtocolRegistry::global(), base, grid_sides, workers)
}

/// [`figure6`] over an explicit protocol registry.
pub fn figure6_in(
    registry: &ProtocolRegistry,
    base: &ScenarioConfig,
    grid_sides: &[usize],
    workers: usize,
) -> FigureResult {
    figure6_budgeted_in(registry, base, grid_sides, workers, None)
}

/// [`figure6_in`] under an optional wall-clock budget; see
/// [`figure5_budgeted_in`].
pub fn figure6_budgeted_in(
    registry: &ProtocolRegistry,
    base: &ScenarioConfig,
    grid_sides: &[usize],
    workers: usize,
    budget: Option<Duration>,
) -> FigureResult {
    let jobs: Vec<(usize, &ProtocolSpec)> = grid_sides
        .iter()
        .flat_map(|&side| registry.specs().iter().map(move |spec| (side, spec)))
        .collect();
    let budgeted = map_parallel_budgeted(&jobs, workers, budget, |&(side, spec)| {
        let config = ScenarioConfig {
            grid_side: side,
            ..base.clone()
        }
        .with_adaptive_duration(1.5);
        let result = run_spec(&config, spec);
        ExperimentPoint {
            // x is the swept side², not broker_count(): an EdgeList topology
            // ignores grid_side, and identical x values would collapse the
            // sweep's rows in every rendered panel.
            x: (side * side) as f64,
            protocol: spec.label().to_string(),
            mobility: config.mobility.to_string(),
            topology: config.topology.to_string(),
            result,
        }
    });
    let skipped = budgeted
        .skipped
        .iter()
        .map(|&i| format!("{} × {}", jobs[i].0 * jobs[i].0, jobs[i].1.label()))
        .collect();
    FigureResult {
        name: "figure6".to_string(),
        x_label: "number of base stations".to_string(),
        points: budgeted.results.into_iter().flatten().collect(),
        skipped,
    }
}

/// One cell of the mobility-model × protocol matrix.
#[derive(Debug, Clone)]
pub struct MatrixPoint {
    /// The mobility model of this cell, *including its parameters* — the
    /// same kind may appear at several parameter points in one matrix.
    pub mobility: ModelKind,
    /// Display label of the protocol run in this cell.
    pub protocol: String,
    /// Label of the network topology the cell ran on.
    pub topology: String,
    /// The collected metrics.
    pub result: RunResult,
}

/// The full mobility-model × protocol matrix: every model parameter point
/// of the sweep run against every registered protocol on the same base
/// scenario.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// All completed cells, one per (model parameter point, protocol) pair.
    pub points: Vec<MatrixPoint>,
    /// Cells skipped because a wall-clock budget ran out before they could
    /// start, as `"model × protocol"` labels. Empty for unbudgeted sweeps.
    pub skipped: Vec<String>,
}

impl MatrixResult {
    /// The distinct model parameter points, in first-seen order.
    pub fn models(&self) -> Vec<&ModelKind> {
        first_seen(self.points.iter().map(|p| &p.mobility))
    }

    /// The distinct protocol labels, in first-seen (= registry) order.
    pub fn protocols(&self) -> Vec<&str> {
        first_seen(self.points.iter().map(|p| p.protocol.as_str()))
    }

    /// Look up one cell by exact model parameter point and protocol label.
    pub fn cell(&self, mobility: &ModelKind, protocol: &str) -> Option<&MatrixPoint> {
        self.points
            .iter()
            .find(|p| &p.mobility == mobility && p.protocol == protocol)
    }
}

/// Run every mobility model against every protocol of the process-wide
/// registry on `base` (the model stored in `base` itself is ignored in
/// favour of each sweep entry), in parallel over the available cores.
///
/// Cells are keyed by the full [`ModelKind`] value — kind *and* parameters —
/// so the `models` slice may sweep one kind across several parameter points
/// (e.g. three `RandomWaypoint`s with different pause times) without
/// collisions.
pub fn mobility_matrix(base: &ScenarioConfig, models: &[ModelKind]) -> MatrixResult {
    mobility_matrix_with_workers(base, models, available_workers())
}

/// [`mobility_matrix`] with an explicit worker count (1 = serial).
pub fn mobility_matrix_with_workers(
    base: &ScenarioConfig,
    models: &[ModelKind],
    workers: usize,
) -> MatrixResult {
    mobility_matrix_in(&ProtocolRegistry::global(), base, models, workers)
}

/// [`mobility_matrix`] over an explicit protocol registry.
pub fn mobility_matrix_in(
    registry: &ProtocolRegistry,
    base: &ScenarioConfig,
    models: &[ModelKind],
    workers: usize,
) -> MatrixResult {
    mobility_matrix_budgeted_in(registry, base, models, workers, None)
}

/// [`mobility_matrix_in`] under an optional wall-clock budget: matrix cells
/// that cannot start before the budget elapses are recorded in
/// [`MatrixResult::skipped`] instead of silently truncating the matrix.
pub fn mobility_matrix_budgeted_in(
    registry: &ProtocolRegistry,
    base: &ScenarioConfig,
    models: &[ModelKind],
    workers: usize,
    budget: Option<Duration>,
) -> MatrixResult {
    let jobs: Vec<(&ModelKind, &ProtocolSpec)> = models
        .iter()
        .flat_map(|kind| registry.specs().iter().map(move |spec| (kind, spec)))
        .collect();
    let budgeted = map_parallel_budgeted(&jobs, workers, budget, |&(kind, spec)| {
        let config = base.clone().with_mobility(kind.clone());
        let result = run_spec(&config, spec);
        MatrixPoint {
            mobility: kind.clone(),
            protocol: spec.label().to_string(),
            topology: config.topology.to_string(),
            result,
        }
    });
    let skipped = budgeted
        .skipped
        .iter()
        .map(|&i| format!("{} × {}", jobs[i].0, jobs[i].1.label()))
        .collect();
    MatrixResult {
        points: budgeted.results.into_iter().flatten().collect(),
        skipped,
    }
}

/// The scenario presets the failure panel runs by default: the seeded
/// broker-crash storm, the partition/region-outage city, and the lossy
/// crash storm whose ledgers carry the reliability-layer counters (see
/// [`crate::scenarios::registry`]).
pub const FAILURE_PRESETS: [&str; 3] = [
    "broker-crash-storm",
    "partitioned-city",
    "lossy-crash-storm",
];

/// One `(fault preset, protocol)` cell of the failure panel.
#[derive(Debug, Clone)]
pub struct FailurePanelPoint {
    /// Name of the fault-injecting scenario preset.
    pub scenario: String,
    /// Display label of the protocol run in this cell.
    pub protocol: String,
    /// The collected metrics, including the per-outage
    /// [`RecoveryLedger`](crate::metrics::RecoveryLedger).
    pub result: RunResult,
}

/// The failure panel: every fault preset run against every registered
/// protocol (by default the paper's three plus PSVR), comparing losses,
/// duplicates, dropped envelopes and time-to-repair under identical
/// injected outages. Every cell's recovery ledger reconciles exactly with
/// its delivery audit — asserted at assembly time, so a panel that reports
/// numbers at all reports numbers that add up.
#[derive(Debug, Clone)]
pub struct FailurePanelResult {
    /// All completed cells, preset-major in registry order.
    pub points: Vec<FailurePanelPoint>,
    /// Cells skipped because a wall-clock budget ran out, as
    /// `"preset × protocol"` labels. Empty for unbudgeted runs.
    pub skipped: Vec<String>,
}

impl FailurePanelResult {
    /// The distinct preset names, in first-seen order.
    pub fn scenarios(&self) -> Vec<&str> {
        first_seen(self.points.iter().map(|p| p.scenario.as_str()))
    }

    /// The distinct protocol labels, in first-seen (= registry) order.
    pub fn protocols(&self) -> Vec<&str> {
        first_seen(self.points.iter().map(|p| p.protocol.as_str()))
    }

    /// Look up one cell by preset name and protocol label.
    pub fn cell(&self, scenario: &str, protocol: &str) -> Option<&FailurePanelPoint> {
        self.points
            .iter()
            .find(|p| p.scenario == scenario && p.protocol == protocol)
    }
}

/// Run the failure panel over the default presets ([`FAILURE_PRESETS`])
/// with the extended registry (the paper's three protocols plus PSVR), in
/// parallel over the available cores.
pub fn failure_panel() -> FailurePanelResult {
    let presets: Vec<crate::scenarios::Scenario> = FAILURE_PRESETS
        .iter()
        .map(|name| crate::scenarios::find(name).expect("failure preset registered"))
        .collect();
    failure_panel_budgeted_in(
        &ProtocolRegistry::extended(),
        &presets,
        available_workers(),
        None,
    )
}

/// [`failure_panel`] over explicit presets, registry and worker count.
pub fn failure_panel_in(
    registry: &ProtocolRegistry,
    presets: &[crate::scenarios::Scenario],
    workers: usize,
) -> FailurePanelResult {
    failure_panel_budgeted_in(registry, presets, workers, None)
}

/// [`failure_panel_in`] under an optional wall-clock budget: cells that
/// cannot start before the budget elapses are recorded in
/// [`FailurePanelResult::skipped`].
///
/// # Panics
/// Panics when a completed cell's recovery ledger does not reconcile
/// exactly with its delivery audit — that would mean the per-outage
/// attribution lost count drifted from the ground truth, and the panel
/// refuses to report numbers that don't add up.
pub fn failure_panel_budgeted_in(
    registry: &ProtocolRegistry,
    presets: &[crate::scenarios::Scenario],
    workers: usize,
    budget: Option<Duration>,
) -> FailurePanelResult {
    let jobs: Vec<(&crate::scenarios::Scenario, &ProtocolSpec)> = presets
        .iter()
        .flat_map(|preset| registry.specs().iter().map(move |spec| (preset, spec)))
        .collect();
    let budgeted = map_parallel_budgeted(&jobs, workers, budget, |&(preset, spec)| {
        let result = run_spec(&preset.config, spec);
        FailurePanelPoint {
            scenario: preset.name.to_string(),
            protocol: spec.label().to_string(),
            result,
        }
    });
    let skipped = budgeted
        .skipped
        .iter()
        .map(|&i| format!("{} × {}", jobs[i].0.name, jobs[i].1.label()))
        .collect();
    let points: Vec<FailurePanelPoint> = budgeted.results.into_iter().flatten().collect();
    for p in &points {
        assert!(
            p.result.recovery.reconciles_with(&p.result.audit),
            "{} × {}: recovery ledger (lost {}, dup {}) does not reconcile \
             with the delivery audit (lost {}, dup {})",
            p.scenario,
            p.protocol,
            p.result.recovery.total_lost(),
            p.result.recovery.total_duplicates(),
            p.result.audit.lost,
            p.result.audit.duplicates,
        );
    }
    FailurePanelResult { points, skipped }
}

/// The reliability modes the reliability panel compares, in column order:
/// no reliability layer at all, broker dedup alone, and dedup plus
/// publisher ack/retransmit.
pub const RELIABILITY_MODES: [&str; 3] = ["baseline", "dedup", "dedup+retransmit"];

/// One `(mode, protocol)` cell of the reliability panel.
#[derive(Debug, Clone)]
pub struct ReliabilityPanelPoint {
    /// The reliability mode (one of [`RELIABILITY_MODES`]).
    pub mode: String,
    /// Display label of the protocol run in this cell.
    pub protocol: String,
    /// The collected metrics, including the
    /// [`RecoveryLedger`](crate::metrics::RecoveryLedger)'s per-cause drop
    /// accounting and reliability counters.
    pub result: RunResult,
}

/// The reliability trade-off panel: the `lossy-crash-storm` preset (2 %
/// link loss, 0.5 % corruption, a six-crash storm) run for every registered
/// protocol under each of the three reliability modes. Dedup is expected to
/// eliminate audited duplicates; retransmission trades extra mobility-layer
/// traffic for recovering link-lost publishes. Every cell's ledger
/// reconciles exactly with its delivery audit.
#[derive(Debug, Clone)]
pub struct ReliabilityPanelResult {
    /// All completed cells, mode-major in [`RELIABILITY_MODES`] order.
    pub points: Vec<ReliabilityPanelPoint>,
    /// Cells skipped under a wall-clock budget, as `"mode × protocol"`.
    pub skipped: Vec<String>,
}

impl ReliabilityPanelResult {
    /// The distinct mode names, in first-seen (= column) order.
    pub fn modes(&self) -> Vec<&str> {
        first_seen(self.points.iter().map(|p| p.mode.as_str()))
    }

    /// The distinct protocol labels, in first-seen (= registry) order.
    pub fn protocols(&self) -> Vec<&str> {
        first_seen(self.points.iter().map(|p| p.protocol.as_str()))
    }

    /// Look up one cell by mode name and protocol label.
    pub fn cell(&self, mode: &str, protocol: &str) -> Option<&ReliabilityPanelPoint> {
        self.points
            .iter()
            .find(|p| p.mode == mode && p.protocol == protocol)
    }
}

/// Derive one reliability mode's configuration from the panel's base
/// scenario: same seed, same storm, same lossy links — only the reliability
/// layer differs, so cells in a row are a paired comparison.
fn reliability_mode_config(base: &ScenarioConfig, mode: &str) -> ScenarioConfig {
    let mut config = base.clone();
    match mode {
        "baseline" => {
            config.dedup_window = 0;
            config.retransmit = false;
        }
        "dedup" => {
            config.retransmit = false;
        }
        _ => {}
    }
    config
}

/// Run the reliability panel over the `lossy-crash-storm` preset with the
/// extended registry, in parallel over the available cores.
pub fn reliability_panel() -> ReliabilityPanelResult {
    let base = crate::scenarios::find("lossy-crash-storm")
        .expect("lossy-crash-storm preset registered")
        .config;
    reliability_panel_budgeted_in(
        &ProtocolRegistry::extended(),
        &base,
        available_workers(),
        None,
    )
}

/// [`reliability_panel`] over an explicit base scenario, registry and
/// worker count, under an optional wall-clock budget: cells that cannot
/// start before the budget elapses are recorded in
/// [`ReliabilityPanelResult::skipped`]. The base scenario should carry the
/// full reliability configuration (lossy links, dedup window, retransmit,
/// replication); the panel switches the dedup/retransmit knobs off per
/// mode.
///
/// # Panics
/// Panics when a completed cell's recovery ledger does not reconcile with
/// its delivery audit (see [`failure_panel_budgeted_in`]).
pub fn reliability_panel_budgeted_in(
    registry: &ProtocolRegistry,
    base: &ScenarioConfig,
    workers: usize,
    budget: Option<Duration>,
) -> ReliabilityPanelResult {
    let jobs: Vec<(&str, &ProtocolSpec)> = RELIABILITY_MODES
        .iter()
        .flat_map(|&mode| registry.specs().iter().map(move |spec| (mode, spec)))
        .collect();
    let budgeted = map_parallel_budgeted(&jobs, workers, budget, |&(mode, spec)| {
        let config = reliability_mode_config(base, mode);
        ReliabilityPanelPoint {
            mode: mode.to_string(),
            protocol: spec.label().to_string(),
            result: run_spec(&config, spec),
        }
    });
    let skipped = budgeted
        .skipped
        .iter()
        .map(|&i| format!("{} × {}", jobs[i].0, jobs[i].1.label()))
        .collect();
    let points: Vec<ReliabilityPanelPoint> = budgeted.results.into_iter().flatten().collect();
    for p in &points {
        assert!(
            p.result.recovery.reconciles_with(&p.result.audit),
            "{} × {}: recovery ledger does not reconcile with the audit",
            p.mode,
            p.protocol,
        );
    }
    ReliabilityPanelResult { points, skipped }
}

/// The MQTT-shaped storm presets the traffic panel runs by default (see
/// [`crate::scenarios::registry`]).
pub const TRAFFIC_PRESETS: [&str; 4] = [
    "fan-in-storm",
    "fan-out-storm",
    "retained-replay",
    "shared-subscription",
];

/// One `(storm preset, fan-out mode)` cell of the traffic panel.
#[derive(Debug, Clone)]
pub struct TrafficPanelPoint {
    /// Name of the storm preset.
    pub scenario: String,
    /// Fan-out mode label (`"cached"` or `"clone"`).
    pub mode: String,
    /// The collected metrics, including the
    /// [`TrafficReport`](crate::metrics::TrafficReport) byte accounting.
    pub result: RunResult,
}

/// The traffic panel: every storm preset run under both fan-out modes
/// (serialize-once cached vs clone-per-destination), comparing fan-out
/// allocations, bytes serialized and throughput on byte-identical delivery
/// results. Every pair's delivery-side metrics are asserted identical at
/// assembly time — a panel that reports a speedup at all reports one
/// measured on provably equivalent runs.
#[derive(Debug, Clone)]
pub struct TrafficPanelResult {
    /// All completed cells, preset-major, cached before clone.
    pub points: Vec<TrafficPanelPoint>,
    /// Cells skipped because a wall-clock budget ran out, as
    /// `"preset × mode"` labels. Empty for unbudgeted runs.
    pub skipped: Vec<String>,
}

impl TrafficPanelResult {
    /// The distinct preset names, in first-seen order.
    pub fn scenarios(&self) -> Vec<&str> {
        first_seen(self.points.iter().map(|p| p.scenario.as_str()))
    }

    /// Look up one cell by preset name and fan-out mode label.
    pub fn cell(&self, scenario: &str, mode: &str) -> Option<&TrafficPanelPoint> {
        self.points
            .iter()
            .find(|p| p.scenario == scenario && p.mode == mode)
    }
}

/// Run the traffic panel over the default storm presets
/// ([`TRAFFIC_PRESETS`]) with MHH, in parallel over the available cores.
pub fn traffic_panel() -> TrafficPanelResult {
    let presets: Vec<crate::scenarios::Scenario> = TRAFFIC_PRESETS
        .iter()
        .map(|name| crate::scenarios::find(name).expect("traffic preset registered"))
        .collect();
    traffic_panel_budgeted_in(&presets, available_workers(), None)
}

/// [`traffic_panel`] over explicit presets, worker count and an optional
/// wall-clock budget; skipped cells are recorded instead of truncating.
///
/// # Panics
/// Panics when a completed cached/clone pair differs in any delivery-side
/// metric — the serialize-once cache must never change behavior, only
/// accounting.
pub fn traffic_panel_budgeted_in(
    presets: &[crate::scenarios::Scenario],
    workers: usize,
    budget: Option<Duration>,
) -> TrafficPanelResult {
    let modes = [FanoutMode::Cached, FanoutMode::CloneBaseline];
    let jobs: Vec<(&crate::scenarios::Scenario, FanoutMode)> = presets
        .iter()
        .flat_map(|preset| modes.iter().map(move |&m| (preset, m)))
        .collect();
    let budgeted = map_parallel_budgeted(&jobs, workers, budget, |&(preset, mode)| {
        let config = preset.config.clone().with_fanout_mode(mode);
        let result = crate::runner::run_scenario(&config, crate::config::Protocol::Mhh);
        TrafficPanelPoint {
            scenario: preset.name.to_string(),
            mode: mode.label().to_string(),
            result,
        }
    });
    let skipped = budgeted
        .skipped
        .iter()
        .map(|&i| format!("{} × {}", jobs[i].0.name, jobs[i].1.label()))
        .collect();
    let points: Vec<TrafficPanelPoint> = budgeted.results.into_iter().flatten().collect();
    let panel = TrafficPanelResult { points, skipped };
    for scenario in panel.scenarios() {
        let (Some(cached), Some(clone)) = (
            panel.cell(scenario, "cached"),
            panel.cell(scenario, "clone"),
        ) else {
            continue;
        };
        assert_eq!(
            (
                cached.result.delivered_messages,
                cached.result.traffic.delivery_bytes,
                format!("{:?}", cached.result.audit),
            ),
            (
                clone.result.delivered_messages,
                clone.result.traffic.delivery_bytes,
                format!("{:?}", clone.result.audit),
            ),
            "{scenario}: cached and clone fan-out must deliver identically"
        );
    }
    panel
}

/// One protocol's paired reactive-vs-proclaimed comparison: the *same* move
/// schedule (same seed, same workload) run once with every move silent and
/// once with every move proclaimed.
#[derive(Debug, Clone)]
pub struct ProclaimedComparePoint {
    /// Display label of the protocol.
    pub protocol: String,
    /// The run with `proclaimed_fraction = 0.0` (every move §4.2).
    pub reactive: RunResult,
    /// The run with `proclaimed_fraction = 1.0` (every move §4.1).
    pub proclaimed: RunResult,
}

impl ProclaimedComparePoint {
    /// Mean per-handover first-delivery gap of the reactive run (ms).
    pub fn reactive_gap_ms(&self) -> f64 {
        self.reactive.avg_handoff_delay_ms
    }

    /// Mean per-handover first-delivery gap of the proclaimed run (ms).
    pub fn proclaimed_gap_ms(&self) -> f64 {
        self.proclaimed.avg_handoff_delay_ms
    }

    /// How much of the reactive gap the proclamation removed (0..1; negative
    /// when proclamation hurt).
    pub fn gap_reduction(&self) -> f64 {
        let r = self.reactive_gap_ms();
        if r == 0.0 {
            0.0
        } else {
            1.0 - self.proclaimed_gap_ms() / r
        }
    }
}

/// The proclaimed-vs-reactive comparison across every registered protocol.
#[derive(Debug, Clone)]
pub struct ProclaimedCompareResult {
    /// One paired comparison per protocol, in registry order.
    pub points: Vec<ProclaimedComparePoint>,
    /// Protocols whose pair could not complete before a wall-clock budget
    /// ran out (a half-finished pair is useless, so the whole pair is
    /// dropped and recorded here). Empty for unbudgeted runs.
    pub skipped: Vec<String>,
}

impl ProclaimedCompareResult {
    /// Look up one protocol's pair by display label.
    pub fn point(&self, protocol: &str) -> Option<&ProclaimedComparePoint> {
        self.points.iter().find(|p| p.protocol == protocol)
    }
}

/// Run the reactive-vs-proclaimed comparison (§4.1 vs §4.2) for every
/// protocol of the process-wide registry on `base`. The base's own
/// `proclaimed_fraction` is overridden to 0 and 1; everything else —
/// including the move schedule — is shared, so each pair is a true paired
/// comparison.
pub fn proclaimed_comparison(base: &ScenarioConfig) -> ProclaimedCompareResult {
    proclaimed_comparison_in(&ProtocolRegistry::global(), base, available_workers())
}

/// [`proclaimed_comparison`] over an explicit registry and worker count.
pub fn proclaimed_comparison_in(
    registry: &ProtocolRegistry,
    base: &ScenarioConfig,
    workers: usize,
) -> ProclaimedCompareResult {
    proclaimed_comparison_budgeted_in(registry, base, workers, None)
}

/// [`proclaimed_comparison_in`] under an optional wall-clock budget:
/// protocols whose reactive/proclaimed pair cannot both complete are
/// recorded in [`ProclaimedCompareResult::skipped`].
pub fn proclaimed_comparison_budgeted_in(
    registry: &ProtocolRegistry,
    base: &ScenarioConfig,
    workers: usize,
    budget: Option<Duration>,
) -> ProclaimedCompareResult {
    let jobs: Vec<(&ProtocolSpec, f64)> = registry
        .specs()
        .iter()
        .flat_map(|spec| [(spec, 0.0f64), (spec, 1.0f64)])
        .collect();
    let budgeted = map_parallel_budgeted(&jobs, workers, budget, |&(spec, fraction)| {
        let config = base.clone().with_proclaimed_fraction(fraction);
        run_spec(&config, spec)
    });
    let mut points = Vec::new();
    let mut skipped = Vec::new();
    let mut results = budgeted.results.into_iter();
    for spec in registry.specs() {
        let reactive = results.next().expect("two slots per spec");
        let proclaimed = results.next().expect("two slots per spec");
        match (reactive, proclaimed) {
            (Some(reactive), Some(proclaimed)) => points.push(ProclaimedComparePoint {
                protocol: spec.label().to_string(),
                reactive,
                proclaimed,
            }),
            _ => skipped.push(spec.label().to_string()),
        }
    }
    ProclaimedCompareResult { points, skipped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;

    /// A deliberately tiny base configuration so the sweep smoke tests run in
    /// seconds while still exercising the full pipeline.
    fn tiny_base() -> ScenarioConfig {
        ScenarioConfig {
            grid_side: 4,
            clients_per_broker: 3,
            mobile_fraction: 0.25,
            conn_mean_s: 30.0,
            disc_mean_s: 30.0,
            publish_interval_s: 15.0,
            duration_s: 240.0,
            seed: 3,
            ..ScenarioConfig::paper_defaults()
        }
    }

    #[test]
    fn figure5_sweep_produces_all_curves() {
        let fig = figure5_in(&ProtocolRegistry::builtin(), &tiny_base(), &[5.0, 60.0], 4);
        assert_eq!(fig.points.len(), 6);
        assert_eq!(fig.protocols(), vec!["sub-unsub", "MHH", "HB"]);
        for proto in Protocol::ALL {
            let series = fig.overhead_series(proto.label());
            assert_eq!(series.len(), 2);
            assert!(series[0].0 < series[1].0, "series sorted by x");
            assert_eq!(fig.delay_series(proto.label()).len(), 2);
        }
    }

    /// A config with enough stored backlog per disconnection that the
    /// protocol differences (bulk shuttling, wait intervals) dominate the
    /// handoff metrics, as in the paper's full-size workload.
    fn dense_base() -> ScenarioConfig {
        ScenarioConfig {
            grid_side: 4,
            clients_per_broker: 4,
            mobile_fraction: 0.25,
            conn_mean_s: 30.0,
            disc_mean_s: 60.0,
            publish_interval_s: 5.0,
            duration_s: 300.0,
            seed: 3,
            ..ScenarioConfig::paper_defaults()
        }
    }

    #[test]
    fn figure5_shape_mhh_beats_sub_unsub_under_frequent_movement() {
        // At very short connection periods the sub-unsub protocol shuttles
        // stored queues repeatedly and makes the client wait for the whole
        // handoff; MHH must be cheaper per handoff and must deliver faster —
        // the headline claim of Figure 5.
        let fig = figure5_in(&ProtocolRegistry::builtin(), &dense_base(), &[5.0], 4);
        let mhh = &fig.curve("MHH")[0].result;
        let su = &fig.curve("sub-unsub")[0].result;
        assert!(mhh.reliable(), "{:?}", mhh.audit);
        assert!(su.reliable(), "{:?}", su.audit);
        assert!(
            mhh.overhead_per_handoff < su.overhead_per_handoff,
            "MHH {} vs sub-unsub {}",
            mhh.overhead_per_handoff,
            su.overhead_per_handoff
        );
        assert!(
            mhh.avg_handoff_delay_ms < su.avg_handoff_delay_ms,
            "MHH {} ms vs sub-unsub {} ms",
            mhh.avg_handoff_delay_ms,
            su.avg_handoff_delay_ms
        );
    }

    #[test]
    fn figure6_sweep_produces_all_curves() {
        let fig = figure6_in(&ProtocolRegistry::builtin(), &tiny_base(), &[3, 4], 4);
        assert_eq!(fig.points.len(), 6);
        for proto in Protocol::ALL {
            assert_eq!(fig.overhead_series(proto.label()).len(), 2);
            assert_eq!(fig.delay_series(proto.label()).len(), 2);
            // Every point produced at least one handoff and a sane delay.
            for p in fig.curve(proto.label()) {
                assert!(
                    p.result.handoffs > 0,
                    "{proto:?} point {} had no handoffs",
                    p.x
                );
                assert!(p.result.avg_handoff_delay_ms >= 0.0);
            }
        }
    }

    #[test]
    fn matrix_keys_cells_by_parameter_point_not_label() {
        // One model kind at two parameter points in the same matrix — the
        // collision the old label-keyed cells could not represent.
        let short = ModelKind::RandomWaypoint { pause_mean_s: 5.0 };
        let long = ModelKind::RandomWaypoint {
            pause_mean_s: 2_000.0,
        };
        let models = [short.clone(), long.clone()];
        let matrix = mobility_matrix_in(&ProtocolRegistry::builtin(), &tiny_base(), &models, 4);
        assert_eq!(matrix.points.len(), 6);
        assert_eq!(matrix.models(), vec![&short, &long]);
        let s = matrix.cell(&short, "MHH").expect("short-pause cell");
        let l = matrix.cell(&long, "MHH").expect("long-pause cell");
        assert!(
            s.result.handoffs > l.result.handoffs,
            "short pauses ({}) must move more than pauses longer than the \
             horizon ({})",
            s.result.handoffs,
            l.result.handoffs
        );
    }

    #[test]
    fn exhausted_budget_reports_skipped_points() {
        let registry = ProtocolRegistry::builtin();
        let fig = figure5_budgeted_in(
            &registry,
            &tiny_base(),
            &[5.0, 60.0],
            2,
            Some(Duration::ZERO),
        );
        assert!(fig.points.is_empty());
        assert_eq!(fig.skipped.len(), 6, "every point recorded as skipped");
        assert!(
            fig.skipped.iter().any(|s| s.contains("MHH")),
            "{:?}",
            fig.skipped
        );

        let matrix = mobility_matrix_budgeted_in(
            &registry,
            &tiny_base(),
            &[ModelKind::UniformRandom],
            2,
            Some(Duration::ZERO),
        );
        assert!(matrix.points.is_empty());
        assert_eq!(matrix.skipped.len(), 3);

        // A generous budget completes everything and reports nothing.
        let full = figure5_budgeted_in(
            &registry,
            &tiny_base(),
            &[5.0],
            2,
            Some(Duration::from_secs(3600)),
        );
        assert!(full.skipped.is_empty());
        assert_eq!(full.points.len(), 3);

        // The comparison drops whole pairs under an exhausted budget.
        let cmp =
            proclaimed_comparison_budgeted_in(&registry, &tiny_base(), 2, Some(Duration::ZERO));
        assert!(cmp.points.is_empty());
        assert_eq!(cmp.skipped, vec!["sub-unsub", "MHH", "HB"]);
    }

    #[test]
    fn proclaimed_comparison_is_paired_and_helps_mhh() {
        let cmp = proclaimed_comparison_in(&ProtocolRegistry::builtin(), &dense_base(), 4);
        assert_eq!(cmp.points.len(), 3);
        assert!(cmp.skipped.is_empty());
        let mhh = cmp.point("MHH").expect("builtin");
        // Paired: identical move schedule on both sides.
        assert_eq!(mhh.reactive.handoffs, mhh.proclaimed.handoffs);
        assert_eq!(mhh.reactive.proclaimed_handoffs(), 0);
        assert_eq!(
            mhh.proclaimed.proclaimed_handoffs(),
            mhh.proclaimed.handoffs
        );
        // Migrating ahead of the client must shrink the disruption window.
        assert!(
            mhh.proclaimed_gap_ms() < mhh.reactive_gap_ms(),
            "proclaimed {} ms must beat reactive {} ms",
            mhh.proclaimed_gap_ms(),
            mhh.reactive_gap_ms()
        );
        assert!(mhh.gap_reduction() > 0.0);
        assert!(mhh.proclaimed.reliable(), "{:?}", mhh.proclaimed.audit);
    }

    #[test]
    fn failure_panel_runs_four_protocols_on_faulty_presets_and_reconciles() {
        use crate::config::FaultPlan;
        use crate::scenarios::Scenario;
        // Two tiny fault presets so the panel smoke-runs in seconds.
        let base = ScenarioConfig {
            duration_s: 200.0,
            ..tiny_base()
        };
        let presets = [
            Scenario {
                name: "tiny-crash",
                summary: "one mid-run broker crash",
                config: base.clone().with_faults(FaultPlan {
                    broker_crashes: vec![(5, 60.0, 90.0)],
                    ..FaultPlan::default()
                }),
            },
            Scenario {
                name: "tiny-partition",
                summary: "one mid-run link partition",
                config: base.with_faults(FaultPlan {
                    link_partitions: vec![(0, 1, 60.0, 120.0)],
                    ..FaultPlan::default()
                }),
            },
        ];
        let registry = ProtocolRegistry::extended();
        let panel = failure_panel_in(&registry, &presets, 4);
        assert_eq!(panel.points.len(), 8, "2 presets × 4 protocols");
        assert!(panel.skipped.is_empty());
        assert_eq!(panel.scenarios(), vec!["tiny-crash", "tiny-partition"]);
        assert_eq!(panel.protocols(), vec!["sub-unsub", "MHH", "HB", "PSVR"]);
        for p in &panel.points {
            assert_eq!(p.result.recovery.len(), 1, "one injected window");
            // Reconciliation is asserted inside the panel; double-check the
            // invariant is really exact here too.
            assert!(p.result.recovery.reconciles_with(&p.result.audit));
        }
        // A budget of zero skips whole cells, never half-reports them.
        let starved = failure_panel_budgeted_in(&registry, &presets, 2, Some(Duration::ZERO));
        assert!(starved.points.is_empty());
        assert_eq!(starved.skipped.len(), 8);
        assert!(starved.skipped.iter().any(|s| s.contains("PSVR")));
    }

    #[test]
    fn reliability_panel_trades_duplicates_for_retransmissions() {
        use crate::config::FaultPlan;
        // A shrunk lossy-crash-storm: same knobs, smaller world, so the
        // 3 modes × 4 protocols panel smoke-runs in seconds.
        let base = ScenarioConfig {
            duration_s: 300.0,
            publish_interval_s: 15.0,
            loss_rate: 0.02,
            corruption_rate: 0.005,
            dedup_window: 64,
            retransmit: true,
            checkpoint_replication_ms: 5_000,
            ..tiny_base()
        }
        .with_faults(FaultPlan {
            crash_storm: Some((3, 20.0)),
            ..FaultPlan::default()
        });
        let registry = ProtocolRegistry::extended();
        let panel = reliability_panel_budgeted_in(&registry, &base, 4, None);
        assert_eq!(panel.points.len(), 12, "3 modes × 4 protocols");
        assert!(panel.skipped.is_empty());
        assert_eq!(panel.modes(), RELIABILITY_MODES.to_vec());
        assert_eq!(panel.protocols(), vec!["sub-unsub", "MHH", "HB", "PSVR"]);
        for proto in panel.protocols() {
            let baseline = &panel.cell("baseline", proto).unwrap().result;
            let dedup = &panel.cell("dedup", proto).unwrap().result;
            let full = &panel.cell("dedup+retransmit", proto).unwrap().result;
            // The baseline never suppresses or retransmits anything.
            assert_eq!(baseline.recovery.duplicates_suppressed, 0);
            assert_eq!(baseline.recovery.retransmissions, 0);
            // Dedup can only remove audited duplicates, never add them.
            assert!(
                dedup.audit.duplicates <= baseline.audit.duplicates,
                "{proto}: dedup {} vs baseline {}",
                dedup.audit.duplicates,
                baseline.audit.duplicates
            );
            assert_eq!(dedup.recovery.retransmissions, 0);
            // Retransmission really fires under 2% loss, and its duplicate
            // copies are absorbed by the dedup layer, not the subscribers.
            assert!(
                full.recovery.retransmissions > 0,
                "{proto}: lossy links must trigger retransmissions"
            );
            if proto == "PSVR" {
                // PSVR re-delivers events during ring stabilization on top
                // of the retransmit copies, so the bounded window can only
                // cap its duplicates, never zero them.
                assert!(
                    full.audit.duplicates <= baseline.audit.duplicates,
                    "{proto}: full {} vs baseline {}",
                    full.audit.duplicates,
                    baseline.audit.duplicates
                );
            } else {
                assert_eq!(
                    full.audit.duplicates, 0,
                    "{proto}: dedup must absorb retransmitted copies: {:?}",
                    full.audit
                );
            }
        }
    }

    #[test]
    fn registered_protocols_join_every_sweep() {
        use crate::protocols::ProtocolSpec;
        use mhh_pubsub::{broker::NoProtocol, erase};
        let mut registry = ProtocolRegistry::builtin();
        registry.register(ProtocolSpec::new(
            "static",
            "static",
            "no mobility support",
            |_, _| Box::new(|_| erase(NoProtocol)),
        ));
        let matrix = mobility_matrix_in(&registry, &tiny_base(), &[ModelKind::UniformRandom], 2);
        assert_eq!(matrix.points.len(), 4);
        assert_eq!(matrix.protocols(), vec!["sub-unsub", "MHH", "HB", "static"]);
        assert!(matrix.cell(&ModelKind::UniformRandom, "static").is_some());
    }
}
