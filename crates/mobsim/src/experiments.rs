//! The paper's parameter sweeps — Figure 5 (varying the connection-period
//! length) and Figure 6 (varying the network size) — plus the
//! mobility-model × protocol matrix the paper never ran.
//!
//! Each point of each curve is an independent simulation run; points are
//! distributed over scoped worker threads by
//! [`mhh_mobility::sweep::map_parallel`] (the runs themselves stay
//! single-threaded for determinism, so parallel results are byte-identical
//! to a serial sweep of the same seeds).

use mhh_mobility::sweep::{available_workers, map_parallel};
use mhh_mobility::ModelKind;

use crate::config::{Protocol, ScenarioConfig};
use crate::metrics::RunResult;
use crate::runner::run_scenario;

/// One `(x, protocol)` point of a figure.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// The swept parameter value (connection period in seconds for Figure 5,
    /// number of base stations for Figure 6).
    pub x: f64,
    /// The protocol run at this point.
    pub protocol: Protocol,
    /// Label of the mobility model the point ran under.
    pub mobility: String,
    /// The collected metrics.
    pub result: RunResult,
}

/// A complete figure: all points of all curves.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure identifier (e.g. `"figure5"`).
    pub name: String,
    /// Label of the swept parameter (the figures' x axis).
    pub x_label: String,
    /// All points.
    pub points: Vec<ExperimentPoint>,
}

impl FigureResult {
    /// The points of one protocol, sorted by x.
    pub fn curve(&self, protocol: Protocol) -> Vec<&ExperimentPoint> {
        let mut pts: Vec<&ExperimentPoint> = self
            .points
            .iter()
            .filter(|p| p.protocol == protocol)
            .collect();
        pts.sort_by(|a, b| a.x.total_cmp(&b.x));
        pts
    }

    /// The overhead-per-handoff series of one protocol (the y values of
    /// Figures 5(a) / 6(a)).
    pub fn overhead_series(&self, protocol: Protocol) -> Vec<(f64, f64)> {
        self.curve(protocol)
            .iter()
            .map(|p| (p.x, p.result.overhead_per_handoff))
            .collect()
    }

    /// The handoff-delay series of one protocol (the y values of
    /// Figures 5(b) / 6(b)).
    pub fn delay_series(&self, protocol: Protocol) -> Vec<(f64, f64)> {
        self.curve(protocol)
            .iter()
            .map(|p| (p.x, p.result.avg_handoff_delay_ms))
            .collect()
    }
}

/// The connection-period values of Figure 5 (seconds, log-spaced).
pub const FIG5_CONN_PERIODS_S: [f64; 5] = [1.0, 10.0, 100.0, 1_000.0, 10_000.0];

/// The grid side lengths of Figure 6 (25, 49, 100, 144 and 196 stations).
pub const FIG6_GRID_SIDES: [usize; 5] = [5, 7, 10, 12, 14];

/// Run the Figure 5 sweep (message overhead and handoff delay vs. the average
/// connection-period length) on top of the given base configuration. The
/// paper fixes 100 base stations and a 5-minute mean disconnection period;
/// the base config controls the scale so tests can run a smaller system.
pub fn figure5(base: &ScenarioConfig, conn_periods_s: &[f64]) -> FigureResult {
    figure5_with_workers(base, conn_periods_s, available_workers())
}

/// [`figure5`] with an explicit worker count (1 = serial). Parallel and
/// serial runs of the same base config produce byte-identical results.
pub fn figure5_with_workers(
    base: &ScenarioConfig,
    conn_periods_s: &[f64],
    workers: usize,
) -> FigureResult {
    let jobs: Vec<(f64, Protocol)> = conn_periods_s
        .iter()
        .flat_map(|&p| Protocol::ALL.into_iter().map(move |proto| (p, proto)))
        .collect();
    let points = map_parallel(&jobs, workers, |&(conn, protocol)| {
        let config = ScenarioConfig {
            conn_mean_s: conn,
            ..base.clone()
        }
        .with_adaptive_duration(1.5);
        let result = run_scenario(&config, protocol);
        ExperimentPoint {
            x: conn,
            protocol,
            mobility: config.mobility.label().to_string(),
            result,
        }
    });
    FigureResult {
        name: "figure5".to_string(),
        x_label: "avg. length of conn. period (s)".to_string(),
        points,
    }
}

/// Run the Figure 6 sweep (message overhead and handoff delay vs. the number
/// of base stations) on top of the given base configuration. The paper fixes
/// both period means at 5 minutes.
pub fn figure6(base: &ScenarioConfig, grid_sides: &[usize]) -> FigureResult {
    figure6_with_workers(base, grid_sides, available_workers())
}

/// [`figure6`] with an explicit worker count (1 = serial).
pub fn figure6_with_workers(
    base: &ScenarioConfig,
    grid_sides: &[usize],
    workers: usize,
) -> FigureResult {
    let jobs: Vec<(usize, Protocol)> = grid_sides
        .iter()
        .flat_map(|&side| Protocol::ALL.into_iter().map(move |proto| (side, proto)))
        .collect();
    let points = map_parallel(&jobs, workers, |&(side, protocol)| {
        let config = ScenarioConfig {
            grid_side: side,
            ..base.clone()
        }
        .with_adaptive_duration(1.5);
        let result = run_scenario(&config, protocol);
        ExperimentPoint {
            x: (side * side) as f64,
            protocol,
            mobility: config.mobility.label().to_string(),
            result,
        }
    });
    FigureResult {
        name: "figure6".to_string(),
        x_label: "number of base stations".to_string(),
        points,
    }
}

/// One cell of the mobility-model × protocol matrix.
#[derive(Debug, Clone)]
pub struct MatrixPoint {
    /// Label of the mobility model.
    pub mobility: String,
    /// The protocol run in this cell.
    pub protocol: Protocol,
    /// The collected metrics.
    pub result: RunResult,
}

/// The full mobility-model × protocol matrix: every model of the sweep run
/// against every protocol on the same base scenario.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// All cells, one per (model, protocol) pair.
    pub points: Vec<MatrixPoint>,
}

impl MatrixResult {
    /// The distinct model labels, in first-seen order.
    pub fn models(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for p in &self.points {
            if !out.contains(&p.mobility.as_str()) {
                out.push(&p.mobility);
            }
        }
        out
    }

    /// Look up one cell.
    pub fn cell(&self, mobility: &str, protocol: Protocol) -> Option<&MatrixPoint> {
        self.points
            .iter()
            .find(|p| p.mobility == mobility && p.protocol == protocol)
    }
}

/// Run every mobility model against every protocol on `base` (the model
/// stored in `base` itself is ignored in favour of each sweep entry), in
/// parallel over the available cores.
///
/// Matrix cells are keyed by model *label*, so the `models` slice should
/// contain at most one entry per model kind — two `RandomWaypoint`s with
/// different pause times collide on `"random-waypoint"` and
/// [`MatrixResult::cell`] / [`MatrixResult::models`] would surface only the
/// first. To sweep one model across parameter values, run
/// [`figure5_with_workers`]-style sweeps (or separate matrices) instead.
pub fn mobility_matrix(base: &ScenarioConfig, models: &[ModelKind]) -> MatrixResult {
    mobility_matrix_with_workers(base, models, available_workers())
}

/// [`mobility_matrix`] with an explicit worker count (1 = serial).
pub fn mobility_matrix_with_workers(
    base: &ScenarioConfig,
    models: &[ModelKind],
    workers: usize,
) -> MatrixResult {
    let jobs: Vec<(ModelKind, Protocol)> = models
        .iter()
        .flat_map(|kind| {
            Protocol::ALL
                .into_iter()
                .map(move |proto| (kind.clone(), proto))
        })
        .collect();
    let points = map_parallel(&jobs, workers, |(kind, protocol)| {
        let config = base.clone().with_mobility(kind.clone());
        let result = run_scenario(&config, *protocol);
        MatrixPoint {
            mobility: kind.label().to_string(),
            protocol: *protocol,
            result,
        }
    });
    MatrixResult { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately tiny base configuration so the sweep smoke tests run in
    /// seconds while still exercising the full pipeline.
    fn tiny_base() -> ScenarioConfig {
        ScenarioConfig {
            grid_side: 4,
            clients_per_broker: 3,
            mobile_fraction: 0.25,
            conn_mean_s: 30.0,
            disc_mean_s: 30.0,
            publish_interval_s: 15.0,
            duration_s: 240.0,
            seed: 3,
            ..ScenarioConfig::paper_defaults()
        }
    }

    #[test]
    fn figure5_sweep_produces_all_curves() {
        let fig = figure5(&tiny_base(), &[5.0, 60.0]);
        assert_eq!(fig.points.len(), 6);
        for proto in Protocol::ALL {
            let series = fig.overhead_series(proto);
            assert_eq!(series.len(), 2);
            assert!(series[0].0 < series[1].0, "series sorted by x");
            assert_eq!(fig.delay_series(proto).len(), 2);
        }
    }

    /// A config with enough stored backlog per disconnection that the
    /// protocol differences (bulk shuttling, wait intervals) dominate the
    /// handoff metrics, as in the paper's full-size workload.
    fn dense_base() -> ScenarioConfig {
        ScenarioConfig {
            grid_side: 4,
            clients_per_broker: 4,
            mobile_fraction: 0.25,
            conn_mean_s: 30.0,
            disc_mean_s: 60.0,
            publish_interval_s: 5.0,
            duration_s: 300.0,
            seed: 3,
            ..ScenarioConfig::paper_defaults()
        }
    }

    #[test]
    fn figure5_shape_mhh_beats_sub_unsub_under_frequent_movement() {
        // At very short connection periods the sub-unsub protocol shuttles
        // stored queues repeatedly and makes the client wait for the whole
        // handoff; MHH must be cheaper per handoff and must deliver faster —
        // the headline claim of Figure 5.
        let fig = figure5(&dense_base(), &[5.0]);
        let mhh = &fig.curve(Protocol::Mhh)[0].result;
        let su = &fig.curve(Protocol::SubUnsub)[0].result;
        assert!(mhh.reliable(), "{:?}", mhh.audit);
        assert!(su.reliable(), "{:?}", su.audit);
        assert!(
            mhh.overhead_per_handoff < su.overhead_per_handoff,
            "MHH {} vs sub-unsub {}",
            mhh.overhead_per_handoff,
            su.overhead_per_handoff
        );
        assert!(
            mhh.avg_handoff_delay_ms < su.avg_handoff_delay_ms,
            "MHH {} ms vs sub-unsub {} ms",
            mhh.avg_handoff_delay_ms,
            su.avg_handoff_delay_ms
        );
    }

    #[test]
    fn figure6_sweep_produces_all_curves() {
        let fig = figure6(&tiny_base(), &[3, 4]);
        assert_eq!(fig.points.len(), 6);
        for proto in Protocol::ALL {
            assert_eq!(fig.overhead_series(proto).len(), 2);
            assert_eq!(fig.delay_series(proto).len(), 2);
            // Every point produced at least one handoff and a sane delay.
            for p in fig.curve(proto) {
                assert!(
                    p.result.handoffs > 0,
                    "{proto:?} point {} had no handoffs",
                    p.x
                );
                assert!(p.result.avg_handoff_delay_ms >= 0.0);
            }
        }
    }
}
