//! The scenario registry: named presets combining a [`ScenarioConfig`] with
//! a mobility model, so experiments, examples and benches can refer to
//! well-known setups by name instead of re-tuning parameters.
//!
//! ```
//! use mhh_mobsim::scenarios;
//! use mhh_mobsim::{run_scenario, Protocol};
//!
//! let preset = scenarios::find("trace-smoke").expect("registered");
//! let result = run_scenario(&preset.config, Protocol::Mhh);
//! assert!(result.reliable());
//! ```

use std::sync::Arc;

use mhh_mobility::{ModelKind, TraceRecord};
use mhh_simnet::TopologyKind;

use crate::config::{FaultPlan, ScenarioConfig};

/// One named preset.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry key (kebab-case).
    pub name: &'static str,
    /// One-line description of what the preset stresses.
    pub summary: &'static str,
    /// The full configuration, including the mobility model.
    pub config: ScenarioConfig,
}

/// All registered presets.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "paper-fig5",
            summary: "The paper's Figure 5 environment: 100 brokers, 1000 clients, \
                      uniform random mobility; sweep conn_mean_s externally.",
            config: ScenarioConfig::paper_defaults(),
        },
        Scenario {
            name: "paper-fig6",
            summary: "The paper's Figure 6 environment (same base; sweep grid_side \
                      externally).",
            config: ScenarioConfig::paper_defaults(),
        },
        Scenario {
            name: "paper-fig5-proclaimed",
            summary: "The Figure 5 environment with every move proclaimed (§4.1): \
                      the paired counterpart of paper-fig5 for reactive-vs-proclaimed \
                      comparisons on the identical move schedule.",
            config: ScenarioConfig::paper_defaults().with_proclaimed_fraction(1.0),
        },
        Scenario {
            name: "vehicular-commute",
            summary: "Road-network commuting: street-grid movement at commute pace, \
                      every handoff between adjacent cells and proclaimed ahead \
                      (the next cell is predictable on a road).",
            config: ScenarioConfig {
                mobile_fraction: 0.3,
                conn_mean_s: 45.0,
                disc_mean_s: 20.0,
                publish_interval_s: 120.0,
                mobility: ModelKind::ManhattanGrid,
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "platoon-convoy",
            summary: "Vehicle platoons sharing one trajectory with jittered \
                      departures: bulk migration of whole groups into the same \
                      destination broker, proclaimed ahead.",
            config: ScenarioConfig {
                mobile_fraction: 0.5,
                conn_mean_s: 90.0,
                disc_mean_s: 30.0,
                mobility: ModelKind::GroupPlatoon {
                    platoon_size: 5,
                    jitter_s: 10.0,
                },
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "city-scale",
            summary: "The engine stress preset: a 64-broker scale-free city \
                      backbone with 2,048 clients, half the movers in \
                      proclaimed vehicle platoons and half commuting into \
                      five shared hotspots — the workload the hot-path \
                      overhaul (dense/sharded link clocks, pooled event \
                      list) is sized for.",
            config: ScenarioConfig {
                grid_side: 8,
                topology: TopologyKind::ScaleFree { edges_per_node: 2 },
                clients_per_broker: 32,
                mobile_fraction: 0.3,
                conn_mean_s: 120.0,
                disc_mean_s: 45.0,
                publish_interval_s: 120.0,
                duration_s: 900.0,
                mobility: ModelKind::mix(vec![
                    (
                        0.5,
                        ModelKind::GroupPlatoon {
                            platoon_size: 8,
                            jitter_s: 10.0,
                        },
                    ),
                    (0.5, ModelKind::HotspotCommuter { hotspots: 5 }),
                ]),
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "scale-free-jitter",
            summary: "Beyond the paper's environment: a Barabási–Albert \
                      scale-free broker backbone with jittered, asymmetric \
                      links — hub congestion plus variable latency, the \
                      regime where per-link FIFO must hold by construction.",
            config: ScenarioConfig {
                topology: TopologyKind::ScaleFree { edges_per_node: 2 },
                jitter_ms: 8,
                link_asymmetry: 0.2,
                mobile_fraction: 0.3,
                conn_mean_s: 120.0,
                disc_mean_s: 60.0,
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "degraded-window",
            summary: "The paper's grid with a mid-run link-degradation \
                      window (all latencies tripled for five minutes): \
                      handovers and safety intervals under transient \
                      congestion.",
            config: ScenarioConfig {
                degraded_windows: vec![(600.0, 900.0, 3.0)],
                jitter_ms: 2,
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "manhattan-rush-hour",
            summary: "Street-grid movement with short connection periods: many cheap \
                      adjacent-broker handoffs in quick succession.",
            config: ScenarioConfig {
                conn_mean_s: 60.0,
                disc_mean_s: 30.0,
                publish_interval_s: 120.0,
                mobility: ModelKind::ManhattanGrid,
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "hotspot-flash-crowd",
            summary: "Commuters oscillating between homes and three shared hotspot \
                      brokers: filter-table contention at the hot brokers.",
            config: ScenarioConfig {
                mobile_fraction: 0.4,
                conn_mean_s: 120.0,
                disc_mean_s: 60.0,
                mobility: ModelKind::HotspotCommuter { hotspots: 3 },
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "waypoint-campus",
            summary: "Random-waypoint walks with two-minute pauses: sustained chains \
                      of short-distance handoffs.",
            config: ScenarioConfig {
                conn_mean_s: 45.0,
                disc_mean_s: 20.0,
                mobility: ModelKind::RandomWaypoint {
                    pause_mean_s: 120.0,
                },
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "broker-crash-storm",
            summary: "The failure-panel crash preset: a seeded storm of six \
                      broker crashes (half-minute mean downtime) over a \
                      reduced grid — checkpoint/restore, crash detours and \
                      each protocol's recovery dialogue under repeated \
                      mid-run restarts.",
            config: ScenarioConfig {
                grid_side: 5,
                clients_per_broker: 4,
                mobile_fraction: 0.25,
                conn_mean_s: 60.0,
                disc_mean_s: 40.0,
                publish_interval_s: 15.0,
                duration_s: 600.0,
                seed: 0x0053_544f_524d,
                faults: FaultPlan {
                    crash_storm: Some((6, 30.0)),
                    ..FaultPlan::default()
                },
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "lossy-crash-storm",
            summary: "The reliability preset: the crash-storm grid with 2 % \
                      link loss and 0.5 % corruption, broker dedup \
                      watermarks, publisher ack/retransmit and 5 s \
                      neighbour-replicated checkpoints — every drop \
                      accounted by cause, zero silent loss end to end.",
            config: ScenarioConfig {
                grid_side: 5,
                clients_per_broker: 4,
                mobile_fraction: 0.25,
                conn_mean_s: 60.0,
                disc_mean_s: 40.0,
                publish_interval_s: 15.0,
                duration_s: 600.0,
                seed: 0x004c_4f53_5359,
                loss_rate: 0.02,
                corruption_rate: 0.005,
                dedup_window: 64,
                retransmit: true,
                checkpoint_replication_ms: 5_000,
                faults: FaultPlan {
                    crash_storm: Some((6, 30.0)),
                    ..FaultPlan::default()
                },
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "partitioned-city",
            summary: "The failure-panel partition preset: two overlay links \
                      sever mid-run and a nine-broker region blacks out — \
                      partition tunnels, region detours and post-heal \
                      convergence on the paper's grid.",
            config: ScenarioConfig {
                grid_side: 5,
                clients_per_broker: 4,
                mobile_fraction: 0.25,
                conn_mean_s: 60.0,
                disc_mean_s: 40.0,
                publish_interval_s: 15.0,
                duration_s: 600.0,
                seed: 0x5041_5254,
                faults: FaultPlan {
                    // Two grid-adjacent overlay links go dark for a minute
                    // each, staggered; then the city centre (broker 12 and
                    // its grid neighbours) blacks out for 45 s.
                    link_partitions: vec![(6, 7, 120.0, 180.0), (17, 18, 200.0, 260.0)],
                    region_outages: vec![(12, 1, 350.0, 395.0)],
                    ..FaultPlan::default()
                },
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "fan-in-storm",
            summary: "MQTT-shaped fan-in: 2,000 publishers flood 100 \
                      subscribers with 512-byte payloads — many small \
                      publishes, modest per-event fan-out; the \
                      serialize-once cache is measured against this shape's \
                      render-heavy baseline.",
            config: ScenarioConfig {
                grid_side: 4,
                publish_interval_s: 10.0,
                duration_s: 20.0,
                seed: 0x4641_4e49,
                payload_bytes_mean: 512,
                track_mem: true,
                storm_publishers: 2_000,
                storm_subscribers: 100,
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "fan-out-storm",
            summary: "MQTT-shaped fan-out: 100 publishers, 2,000 \
                      subscribers, 1 KiB payloads — every publish fans out \
                      to ~125 local subscribers per broker, the shape where \
                      serialize-once beats clone-per-subscriber by well \
                      over an order of magnitude.",
            config: ScenarioConfig {
                grid_side: 4,
                publish_interval_s: 10.0,
                duration_s: 20.0,
                seed: 0x4641_4e4f,
                payload_bytes_mean: 1_024,
                track_mem: true,
                storm_publishers: 100,
                storm_subscribers: 2_000,
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "retained-replay",
            summary: "The MQTT retained-message pattern: brokers keep each \
                      publisher's last event; half the subscribers join \
                      mid-run and receive the retained matches on connect.",
            config: ScenarioConfig {
                grid_side: 4,
                publish_interval_s: 15.0,
                duration_s: 60.0,
                seed: 0x5245_5441,
                payload_bytes_mean: 512,
                retained: true,
                track_mem: true,
                storm_publishers: 100,
                storm_subscribers: 400,
                late_subscriber_fraction: 0.5,
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "shared-subscription",
            summary: "MQTT shared subscriptions: same-broker subscribers are \
                      bucketed into groups of four and each event is \
                      delivered to exactly one member per group \
                      (load-balanced consumption, deterministic pick).",
            config: ScenarioConfig {
                grid_side: 4,
                publish_interval_s: 10.0,
                duration_s: 30.0,
                seed: 0x5348_4152,
                payload_bytes_mean: 512,
                shared_group_size: 4,
                track_mem: true,
                storm_publishers: 100,
                storm_subscribers: 800,
                ..ScenarioConfig::paper_defaults()
            },
        },
        Scenario {
            name: "trace-smoke",
            summary: "Tiny deterministic trace-playback scenario for regression \
                      tests: fixed move list, fixed gaps, no sampled mobility.",
            config: ScenarioConfig {
                grid_side: 3,
                clients_per_broker: 2,
                mobile_fraction: 0.0,
                conn_mean_s: 60.0,
                disc_mean_s: 5.0,
                publish_interval_s: 20.0,
                duration_s: 300.0,
                seed: 42,
                mobility: ModelKind::TracePlayback(Arc::new(vec![
                    // Client 0 lives on broker 0, tours the first column.
                    TraceRecord {
                        at_s: 40.0,
                        client: 0,
                        from: 0,
                        to: 3,
                    },
                    TraceRecord {
                        at_s: 110.0,
                        client: 0,
                        from: 3,
                        to: 6,
                    },
                    TraceRecord {
                        at_s: 190.0,
                        client: 0,
                        from: 6,
                        to: 0,
                    },
                    // Client 7 (home broker 7) visits the centre and returns.
                    TraceRecord {
                        at_s: 75.0,
                        client: 7,
                        from: 7,
                        to: 4,
                    },
                    TraceRecord {
                        at_s: 150.0,
                        client: 7,
                        from: 4,
                        to: 7,
                    },
                ])),
                ..ScenarioConfig::paper_defaults()
            },
        },
    ]
}

/// Look up a preset by name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;
    use crate::runner::run_scenario;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate preset names");
        for name in names {
            assert!(find(name).is_some());
        }
        assert!(find("no-such-preset").is_none());
    }

    #[test]
    fn trace_smoke_replays_exactly_five_moves() {
        let preset = find("trace-smoke").unwrap();
        let r = run_scenario(&preset.config, Protocol::Mhh);
        assert_eq!(r.handoffs, 5, "the fixed move list has five moves");
        assert!(r.reliable(), "{:?}", r.audit);
        // Byte-for-byte reproducible: same preset, same metrics.
        let again = run_scenario(&preset.config, Protocol::Mhh);
        assert_eq!(format!("{r:?}"), format!("{again:?}"));
    }

    #[test]
    fn presets_carry_the_advertised_models() {
        assert_eq!(
            find("manhattan-rush-hour").unwrap().config.mobility.label(),
            "manhattan-grid"
        );
        assert_eq!(
            find("hotspot-flash-crowd").unwrap().config.mobility.label(),
            "hotspot-commuter"
        );
        assert_eq!(
            find("paper-fig5").unwrap().config.mobility.label(),
            "uniform-random"
        );
        assert_eq!(
            find("vehicular-commute").unwrap().config.mobility.label(),
            "manhattan-grid"
        );
        assert_eq!(
            find("platoon-convoy").unwrap().config.mobility.label(),
            "group-platoon"
        );
        assert_eq!(find("city-scale").unwrap().config.mobility.label(), "mix");
    }

    #[test]
    fn city_scale_is_actually_city_scale() {
        let c = find("city-scale").unwrap().config;
        assert!(c.broker_count() >= 64, "needs a city-sized backbone");
        assert!(c.client_count() >= 2_000, "needs ≥2000 clients");
        assert_eq!(c.topology.label(), "scale-free");
        // The mixture carries both stress components.
        let rendered = c.mobility.to_string();
        assert!(rendered.contains("group-platoon"), "{rendered}");
        assert!(rendered.contains("hotspot-commuter"), "{rendered}");
        // Past the dense clock-table threshold: this preset exercises the
        // sharded representation (brokers + clients = engine nodes).
        assert!(
            c.broker_count() + c.client_count() > mhh_simnet::clocks::DENSE_NODE_LIMIT,
            "city-scale should run on the sharded clock table"
        );
    }

    #[test]
    fn jittered_presets_carry_topology_and_link_models() {
        let sf = find("scale-free-jitter").unwrap().config;
        assert_eq!(sf.topology.label(), "scale-free");
        assert_eq!(sf.jitter_ms, 8);
        assert!(sf.link_model().is_some());
        let dw = find("degraded-window").unwrap().config;
        assert_eq!(dw.topology.label(), "grid");
        assert_eq!(dw.degraded_windows.len(), 1);
        assert!(dw.link_model().is_some());
    }

    #[test]
    fn failure_presets_inject_faults_and_zero_fault_presets_do_not() {
        for preset in registry() {
            let faulty = preset.name == "broker-crash-storm"
                || preset.name == "partitioned-city"
                || preset.name == "lossy-crash-storm";
            assert_eq!(
                !preset.config.faults.is_empty(),
                faulty,
                "{}: only the failure-panel presets may inject faults",
                preset.name
            );
        }
        let storm = find("broker-crash-storm").unwrap().config;
        assert_eq!(storm.faults.crash_storm, Some((6, 30.0)));
        let net = storm.build_network();
        assert_eq!(storm.fault_schedule(&net).windows().len(), 6);
        let city = find("partitioned-city").unwrap().config;
        let net = city.build_network();
        let schedule = city.fault_schedule(&net);
        assert_eq!(schedule.windows().len(), 3, "two partitions + one region");
        // The centre of a 5×5 grid plus its four neighbours go down.
        assert_eq!(schedule.windows()[2].down_nodes().len(), 5);
    }

    #[test]
    fn lossy_preset_turns_every_reliability_knob() {
        let c = find("lossy-crash-storm").unwrap().config;
        assert!(c.loss_model().is_some(), "lossy links must be modeled");
        assert_eq!(c.dedup_window, 64);
        assert!(c.retransmit);
        assert_eq!(c.checkpoint_replication_ms, 5_000);
        assert_eq!(c.faults.crash_storm, Some((6, 30.0)));
        // The seed differs from broker-crash-storm, so the two storms are
        // independent draws.
        assert_ne!(c.seed, find("broker-crash-storm").unwrap().config.seed);
    }

    #[test]
    fn crash_storm_preset_actually_bites() {
        let preset = find("broker-crash-storm").unwrap();
        let r = run_scenario(&preset.config, Protocol::Mhh);
        assert!(
            !r.recovery.is_empty(),
            "the storm must leave outage records"
        );
        assert_eq!(r.recovery.len(), 6);
        assert!(
            r.recovery.total_dropped() > 0,
            "six crashes over ten minutes must drop envelopes: {:?}",
            r.recovery
        );
        assert!(
            r.recovery.reconciles_with(&r.audit),
            "ledger {:?} must reconcile with audit {:?}",
            r.recovery,
            r.audit
        );
        // Deterministic end to end under faults.
        let again = run_scenario(&preset.config, Protocol::Mhh);
        assert_eq!(format!("{r:?}"), format!("{again:?}"));
    }

    #[test]
    fn storm_presets_are_storm_shaped_and_zero_fault() {
        for name in [
            "fan-in-storm",
            "fan-out-storm",
            "retained-replay",
            "shared-subscription",
        ] {
            let c = find(name).unwrap().config;
            assert!(c.is_storm(), "{name} must use the storm workload");
            assert!(c.faults.is_empty(), "{name} must stay zero-fault");
            assert!(c.payload_bytes_mean > 0, "{name} must model payloads");
        }
        let fan_in = find("fan-in-storm").unwrap().config;
        assert_eq!(
            (fan_in.storm_publishers, fan_in.storm_subscribers),
            (2_000, 100)
        );
        let fan_out = find("fan-out-storm").unwrap().config;
        assert_eq!(
            (fan_out.storm_publishers, fan_out.storm_subscribers),
            (100, 2_000)
        );
        let replay = find("retained-replay").unwrap().config;
        assert!(replay.retained);
        assert_eq!(replay.late_subscriber_fraction, 0.5);
        let shared = find("shared-subscription").unwrap().config;
        assert_eq!(shared.shared_group_size, 4);
    }

    #[test]
    fn proclaimed_preset_pairs_with_the_reactive_figure_preset() {
        let reactive = find("paper-fig5").unwrap().config;
        let proclaimed = find("paper-fig5-proclaimed").unwrap().config;
        assert_eq!(reactive.proclaimed_fraction, 0.0);
        assert_eq!(proclaimed.proclaimed_fraction, 1.0);
        // Same seed and environment: the move schedules are identical, so
        // runs of the two presets are a paired §4.1-vs-§4.2 comparison.
        assert_eq!(reactive.seed, proclaimed.seed);
        assert_eq!(reactive.grid_side, proclaimed.grid_side);
        assert_eq!(reactive.conn_mean_s, proclaimed.conn_mean_s);
    }
}
