//! Plain-text and JSON reporting of experiment results.
//!
//! Tables are fully data-driven: protocol columns come from the points
//! themselves (first-seen order = registry order), so a figure or matrix
//! run with extra registered protocols renders extra columns without any
//! change here.

use std::fmt::Write as _;

use crate::experiments::{
    FailurePanelResult, FigureResult, MatrixResult, ProclaimedCompareResult,
    ReliabilityPanelResult, TrafficPanelResult,
};
use crate::json::Json;
use crate::metrics::{HandoverKind, HandoverLedger, RecoveryLedger, RunResult, TrafficReport};

/// Render one figure as fixed-width tables (overhead, mean-delay and
/// delay-percentile panels), in the same orientation as the paper's plots:
/// one row per x value, one column per protocol. Points that ran on a
/// non-grid topology announce it in the header.
pub fn render_figure(fig: &FigureResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", fig.name);
    let mut topologies: Vec<&str> = fig.points.iter().map(|p| p.topology.as_str()).collect();
    topologies.sort_unstable();
    topologies.dedup();
    if topologies.iter().any(|t| *t != "grid") {
        let _ = writeln!(out, "-- topology: {} --", topologies.join(", "));
    }
    let _ = writeln!(out, "-- (a) message overhead per handoff (hops) --");
    out.push_str(&render_panel(fig, &fig.x_label, |p| {
        p.result.overhead_per_handoff
    }));
    let _ = writeln!(out, "-- (b) average handoff delay (ms) --");
    out.push_str(&render_panel(fig, &fig.x_label, |p| {
        p.result.avg_handoff_delay_ms
    }));
    let _ = writeln!(out, "-- (c) first-delivery gap p50/p95/p99 (ms) --");
    out.push_str(&render_gap_percentiles(fig));
    let _ = writeln!(out, "-- reliability (lost / duplicated / out-of-order) --");
    out.push_str(&render_reliability(fig));
    // The handover-mix panel only appears when some run actually proclaimed
    // a move, so purely reactive figures render exactly as before.
    if fig
        .points
        .iter()
        .any(|p| p.result.proclaimed_handoffs() > 0)
    {
        let _ = writeln!(out, "-- handover mix (proclaimed/reactive) --");
        out.push_str(&render_handover_mix(fig));
    }
    if !fig.skipped.is_empty() {
        let _ = writeln!(
            out,
            "-- skipped (wall-clock budget exhausted): {} --",
            fig.skipped.join(", ")
        );
    }
    out
}

fn render_handover_mix(fig: &FigureResult) -> String {
    let mut out = String::new();
    for x in x_values(fig) {
        let _ = write!(out, "{x:>28} |");
        for proto in fig.protocols() {
            if let Some(p) = fig
                .points
                .iter()
                .find(|p| p.protocol == proto && (p.x - x).abs() < 1e-9)
            {
                let _ = write!(
                    out,
                    " {}/{} |",
                    p.result.proclaimed_handoffs(),
                    p.result.reactive_handoffs()
                );
            } else {
                let _ = write!(out, " - |");
            }
        }
        let _ = writeln!(out);
    }
    out
}

fn render_gap_percentiles(fig: &FigureResult) -> String {
    let protocols = fig.protocols();
    let mut out = panel_header(&fig.x_label, &protocols);
    for x in x_values(fig) {
        let _ = write!(out, "{x:>28}");
        for proto in &protocols {
            let point = fig
                .points
                .iter()
                .find(|p| p.protocol == *proto && (p.x - x).abs() < 1e-9);
            match point.and_then(|p| p.result.ledger.gap_percentiles_ms()) {
                Some(g) => {
                    let cell = format!("{:.0}/{:.0}/{:.0}", g.p50, g.p95, g.p99);
                    let _ = write!(out, " | {cell:>12}");
                }
                None => {
                    let _ = write!(out, " | {:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// The shared `{x_label} | proto | proto …` header + separator line of the
/// figure panels.
fn panel_header(x_label: &str, protocols: &[&str]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{x_label:>28}");
    for proto in protocols {
        let _ = write!(out, " | {proto:>12}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(28 + protocols.len() * 15));
    out
}

fn x_values(fig: &FigureResult) -> Vec<f64> {
    let mut xs: Vec<f64> = fig.points.iter().map(|p| p.x).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    xs
}

fn render_panel(
    fig: &FigureResult,
    x_label: &str,
    metric: impl Fn(&crate::experiments::ExperimentPoint) -> f64,
) -> String {
    let protocols = fig.protocols();
    let mut out = panel_header(x_label, &protocols);
    for x in x_values(fig) {
        let _ = write!(out, "{x:>28}");
        for proto in &protocols {
            match fig
                .points
                .iter()
                .find(|p| p.protocol == *proto && (p.x - x).abs() < 1e-9)
            {
                Some(p) => {
                    let _ = write!(out, " | {:12.1}", metric(p));
                }
                None => {
                    let _ = write!(out, " | {:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

fn render_reliability(fig: &FigureResult) -> String {
    let mut out = String::new();
    for x in x_values(fig) {
        let _ = write!(out, "{x:>28} |");
        for proto in fig.protocols() {
            if let Some(p) = fig
                .points
                .iter()
                .find(|p| p.protocol == proto && (p.x - x).abs() < 1e-9)
            {
                let a = &p.result.audit;
                let _ = write!(out, " {}/{}/{} |", a.lost, a.duplicates, a.out_of_order);
            } else {
                let _ = write!(out, " - |");
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// JSON document for one run's metrics, including the ledger-derived
/// handover summary (counts per kind, mean first-delivery gap per kind,
/// p50/p95/p99 gap percentiles overall and per kind, buffered catch-ups).
pub fn run_result_json(r: &RunResult) -> Json {
    let gap = |kind| r.mean_gap_ms(kind).map(Json::Num).unwrap_or(Json::Null);
    let pct = |p: Option<crate::metrics::GapPercentiles>| match p {
        Some(g) => Json::obj(vec![
            ("p50", Json::Num(g.p50)),
            ("p95", Json::Num(g.p95)),
            ("p99", Json::Num(g.p99)),
        ]),
        None => Json::Null,
    };
    let kind_pct = |kind| pct(r.ledger.kind_gap_percentiles_ms(kind));
    Json::obj(vec![
        ("protocol", Json::str(&r.protocol)),
        ("handoffs", Json::UInt(r.handoffs)),
        ("mobility_hops", Json::UInt(r.mobility_hops)),
        ("overhead_per_handoff", Json::Num(r.overhead_per_handoff)),
        ("avg_handoff_delay_ms", Json::Num(r.avg_handoff_delay_ms)),
        ("delay_samples", Json::UInt(r.delay_samples)),
        ("gap_percentiles_ms", pct(r.ledger.gap_percentiles_ms())),
        (
            "handover",
            Json::obj(vec![
                ("proclaimed", Json::UInt(r.proclaimed_handoffs())),
                ("reactive", Json::UInt(r.reactive_handoffs())),
                ("proclaimed_gap_ms", gap(HandoverKind::Proclaimed)),
                ("reactive_gap_ms", gap(HandoverKind::Reactive)),
                (
                    "proclaimed_gap_percentiles_ms",
                    kind_pct(HandoverKind::Proclaimed),
                ),
                (
                    "reactive_gap_percentiles_ms",
                    kind_pct(HandoverKind::Reactive),
                ),
                ("buffered", Json::UInt(r.ledger.total_buffered())),
                ("ledger_lost", Json::UInt(r.ledger.total_lost())),
                ("ledger_duplicates", Json::UInt(r.ledger.total_duplicates())),
            ]),
        ),
        (
            "audit",
            Json::obj(vec![
                ("expected", Json::UInt(r.audit.expected)),
                ("delivered", Json::UInt(r.audit.delivered)),
                ("duplicates", Json::UInt(r.audit.duplicates)),
                ("pending", Json::UInt(r.audit.pending)),
                ("lost", Json::UInt(r.audit.lost)),
                ("out_of_order", Json::UInt(r.audit.out_of_order)),
            ]),
        ),
        ("recovery", recovery_json(&r.recovery)),
        ("published", Json::UInt(r.published)),
        ("delivered_messages", Json::UInt(r.delivered_messages)),
        ("total_hops", Json::UInt(r.total_hops)),
        ("sim_duration_s", Json::Num(r.sim_duration_s)),
        ("traffic", traffic_json(&r.traffic)),
    ])
}

/// JSON document for one run's byte accounting. `Null` when payload
/// modeling was off (every counter zero), so classic paper-figure exports
/// stay clean.
pub fn traffic_json(t: &TrafficReport) -> Json {
    if *t == TrafficReport::default() {
        return Json::Null;
    }
    Json::obj(vec![
        ("delivery_bytes", Json::UInt(t.delivery_bytes)),
        ("total_wire_bytes", Json::UInt(t.total_wire_bytes)),
        ("fanouts", Json::UInt(t.fanouts)),
        ("serializations", Json::UInt(t.serializations)),
        ("bytes_serialized", Json::UInt(t.bytes_serialized)),
        ("fanout_allocs", Json::UInt(t.fanout_allocs)),
        ("cache_hits", Json::UInt(t.cache_hits)),
        ("buffered_bytes_peak", Json::UInt(t.buffered_bytes_peak)),
        ("checkpoint_bytes_peak", Json::UInt(t.checkpoint_bytes_peak)),
        ("dedup_bytes_peak", Json::UInt(t.dedup_bytes_peak)),
    ])
}

/// JSON document for one run's per-outage recovery ledger. `Null` for
/// zero-fault runs, so fault-free figure exports stay clean.
pub fn recovery_json(ledger: &RecoveryLedger) -> Json {
    if ledger.is_empty() {
        return Json::Null;
    }
    let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
    Json::obj(vec![
        (
            "outages",
            Json::Arr(
                ledger
                    .records
                    .iter()
                    .map(|o| {
                        Json::obj(vec![
                            ("kind", Json::str(o.kind)),
                            ("scope", Json::str(&o.scope)),
                            ("start_ms", Json::Num(o.start.as_millis_f64())),
                            ("end_ms", Json::Num(o.end.as_millis_f64())),
                            ("outage_ms", Json::Num(o.outage_ms())),
                            ("dropped_envelopes", Json::UInt(o.dropped_envelopes)),
                            ("lost", Json::UInt(o.lost)),
                            ("duplicates", Json::UInt(o.duplicates)),
                            ("repair_ms", opt(o.repair_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("unattributed_lost", Json::UInt(ledger.unattributed_lost)),
        (
            "unattributed_duplicates",
            Json::UInt(ledger.unattributed_duplicates),
        ),
        ("lost_envelopes", Json::UInt(ledger.lost_envelopes)),
        ("corrupted", Json::UInt(ledger.corrupted)),
        (
            "duplicates_suppressed",
            Json::UInt(ledger.duplicates_suppressed),
        ),
        ("retransmissions", Json::UInt(ledger.retransmissions)),
        ("stale_resubscribes", Json::UInt(ledger.stale_resubscribes)),
        ("total_dropped", Json::UInt(ledger.total_dropped())),
        ("total_lost", Json::UInt(ledger.total_lost())),
        ("total_duplicates", Json::UInt(ledger.total_duplicates())),
        ("mean_repair_ms", opt(ledger.mean_repair_ms())),
        ("max_repair_ms", opt(ledger.max_repair_ms())),
    ])
}

/// Serialise a figure to pretty JSON (written next to EXPERIMENTS.md so the
/// numbers in the write-up can be regenerated). Budget-skipped points are
/// listed under `"skipped"` so a truncated sweep is distinguishable from a
/// complete one.
pub fn to_json(fig: &FigureResult) -> String {
    Json::obj(vec![
        ("name", Json::str(&fig.name)),
        ("x_label", Json::str(&fig.x_label)),
        (
            "points",
            Json::Arr(
                fig.points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("x", Json::Num(p.x)),
                            ("protocol", Json::str(&p.protocol)),
                            ("mobility", Json::str(&p.mobility)),
                            ("topology", Json::str(&p.topology)),
                            ("result", run_result_json(&p.result)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "skipped",
            Json::Arr(fig.skipped.iter().map(Json::str).collect()),
        ),
    ])
    .pretty()
}

/// Serialise one ledger as a JSON array of per-handover records (times in
/// milliseconds), the raw material for external plotting of gap
/// distributions (`--dump-ledger`).
pub fn ledger_json(ledger: &HandoverLedger) -> Json {
    Json::Arr(
        ledger
            .records
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("client", Json::UInt(r.client.0 as u64)),
                    (
                        "kind",
                        Json::str(match r.kind {
                            HandoverKind::Proclaimed => "proclaimed",
                            HandoverKind::Reactive => "reactive",
                        }),
                    ),
                    ("from", Json::UInt(r.from.0 as u64)),
                    ("to", Json::UInt(r.to.0 as u64)),
                    ("departed_ms", Json::Num(r.departed.as_millis_f64())),
                    ("arrived_ms", Json::Num(r.arrived.as_millis_f64())),
                    (
                        "first_delivery_gap_ms",
                        r.first_delivery_gap_ms()
                            .map(Json::Num)
                            .unwrap_or(Json::Null),
                    ),
                    ("is_handoff", Json::Bool(r.is_handoff)),
                    ("buffered", Json::UInt(r.buffered)),
                    ("lost", Json::UInt(r.lost)),
                    ("duplicates", Json::UInt(r.duplicates)),
                ])
            })
            .collect(),
    )
}

/// Serialise every per-point ledger of a figure to pretty JSON — one entry
/// per `(x, protocol)` point with the full handover record list. This is
/// the `--dump-ledger` export for external plotting.
pub fn figure_ledgers_json(fig: &FigureResult) -> String {
    Json::obj(vec![
        ("name", Json::str(&fig.name)),
        ("x_label", Json::str(&fig.x_label)),
        (
            "points",
            Json::Arr(
                fig.points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("x", Json::Num(p.x)),
                            ("protocol", Json::str(&p.protocol)),
                            ("mobility", Json::str(&p.mobility)),
                            ("topology", Json::str(&p.topology)),
                            ("ledger", ledger_json(&p.result.ledger)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .pretty()
}

/// Render the failure panel as fixed-width tables: per fault preset, one
/// protocol-summary table (drops, losses, duplicates, time-to-repair) and
/// one per-outage table (each injected window's losses and observed
/// time-to-repair per protocol).
pub fn render_failure_panel(panel: &FailurePanelResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== failure & recovery panel ==");
    let fmt_ms = |v: Option<f64>| match v {
        Some(x) => format!("{x:.0}"),
        None => "-".to_string(),
    };
    for scenario in panel.scenarios() {
        let _ = writeln!(out, "-- {scenario} --");
        let _ = writeln!(
            out,
            "{:>12} | {:>8} | {:>6} | {:>6} | {:>10} | {:>7} | {:>10} | {:>9} | {:>14} | {:>13}",
            "protocol",
            "dropped",
            "lost",
            "dup",
            "suppressed",
            "retrans",
            "unattr l/d",
            "loss rate",
            "mean repair ms",
            "max repair ms"
        );
        let _ = writeln!(out, "{}", "-".repeat(122));
        for proto in panel.protocols() {
            let Some(p) = panel.cell(scenario, proto) else {
                continue;
            };
            let rec = &p.result.recovery;
            let _ = writeln!(
                out,
                "{:>12} | {:>8} | {:>6} | {:>6} | {:>10} | {:>7} | {:>10} | {:>8.2}% | {:>14} | {:>13}",
                proto,
                rec.total_dropped(),
                rec.total_lost(),
                rec.total_duplicates(),
                rec.duplicates_suppressed,
                rec.retransmissions,
                format!("{}/{}", rec.unattributed_lost, rec.unattributed_duplicates),
                p.result.loss_rate() * 100.0,
                fmt_ms(rec.mean_repair_ms()),
                fmt_ms(rec.max_repair_ms()),
            );
        }
        // Loss-by-cause line, only when lossy links actually dropped
        // something (zero-loss panels render exactly as before).
        for proto in panel.protocols() {
            let Some(p) = panel.cell(scenario, proto) else {
                continue;
            };
            let rec = &p.result.recovery;
            if rec.lost_envelopes > 0 || rec.corrupted > 0 {
                let _ = writeln!(
                    out,
                    "{:>12} : link drops — {} lost, {} corrupted",
                    proto, rec.lost_envelopes, rec.corrupted
                );
            }
            if rec.stale_resubscribes > 0 {
                let _ = writeln!(
                    out,
                    "{:>12} : {} re-subscribes forced by stale checkpoint replicas",
                    proto, rec.stale_resubscribes
                );
            }
        }
        // The injected schedule is identical for every protocol of a preset,
        // so row labels come from the first cell that has them.
        let Some(first) = panel
            .protocols()
            .iter()
            .find_map(|proto| panel.cell(scenario, proto))
        else {
            continue;
        };
        if first.result.recovery.is_empty() {
            continue;
        }
        let protocols = panel.protocols();
        let _ = writeln!(out, "-- {scenario}: per-outage lost / repair ms --");
        let _ = write!(out, "{:>34}", "outage");
        for proto in &protocols {
            let _ = write!(out, " | {proto:>12}");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "-".repeat(34 + protocols.len() * 15));
        for (i, o) in first.result.recovery.records.iter().enumerate() {
            let label = format!(
                "{} {} [{:.0}s,{:.0}s)",
                o.kind,
                o.scope,
                o.start.as_millis_f64() / 1_000.0,
                o.end.as_millis_f64() / 1_000.0
            );
            let _ = write!(out, "{label:>34}");
            for proto in &protocols {
                let cell = panel
                    .cell(scenario, proto)
                    .and_then(|p| p.result.recovery.records.get(i))
                    .map(|o| format!("{} / {}", o.lost, fmt_ms(o.repair_ms)))
                    .unwrap_or_else(|| "-".to_string());
                let _ = write!(out, " | {cell:>12}");
            }
            let _ = writeln!(out);
        }
    }
    if !panel.skipped.is_empty() {
        let _ = writeln!(
            out,
            "-- skipped (wall-clock budget exhausted): {} --",
            panel.skipped.join(", ")
        );
    }
    out
}

/// Serialise the failure panel to pretty JSON; each point's `result`
/// carries the full per-outage recovery section. Budget-skipped cells are
/// listed under `"skipped"`.
pub fn failure_to_json(panel: &FailurePanelResult) -> String {
    Json::obj(vec![
        (
            "points",
            Json::Arr(
                panel
                    .points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("scenario", Json::str(&p.scenario)),
                            ("protocol", Json::str(&p.protocol)),
                            ("result", run_result_json(&p.result)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "skipped",
            Json::Arr(panel.skipped.iter().map(Json::str).collect()),
        ),
    ])
    .pretty()
}

/// Render the reliability panel as one fixed-width trade-off table per
/// protocol: a row per reliability mode (baseline / dedup /
/// dedup+retransmit) with the audited losses and duplicates, the broker's
/// suppression work, the publisher's retransmission work and the per-cause
/// drop accounting — the end-to-end delivery-guarantee trade-off at a
/// glance.
pub fn render_reliability_panel(panel: &ReliabilityPanelResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== reliability trade-off panel (lossy links) ==");
    for proto in panel.protocols() {
        let _ = writeln!(out, "-- {proto} --");
        let _ = writeln!(
            out,
            "{:>17} | {:>6} | {:>6} | {:>10} | {:>7} | {:>10} | {:>9} | {:>7} | {:>12}",
            "mode",
            "lost",
            "dup",
            "suppressed",
            "retrans",
            "link l/c",
            "resubs",
            "dropped",
            "deliv msgs"
        );
        let _ = writeln!(out, "{}", "-".repeat(106));
        for mode in panel.modes() {
            let Some(p) = panel.cell(mode, proto) else {
                continue;
            };
            let rec = &p.result.recovery;
            let _ = writeln!(
                out,
                "{:>17} | {:>6} | {:>6} | {:>10} | {:>7} | {:>10} | {:>9} | {:>7} | {:>12}",
                mode,
                p.result.audit.lost,
                p.result.audit.duplicates,
                rec.duplicates_suppressed,
                rec.retransmissions,
                format!("{}/{}", rec.lost_envelopes, rec.corrupted),
                rec.stale_resubscribes,
                rec.total_dropped(),
                p.result.delivered_messages,
            );
        }
    }
    if !panel.skipped.is_empty() {
        let _ = writeln!(
            out,
            "-- skipped (wall-clock budget exhausted): {} --",
            panel.skipped.join(", ")
        );
    }
    out
}

/// Serialise the reliability panel to pretty JSON; each point's `result`
/// carries the recovery ledger's per-cause drop counters and reliability
/// totals. Budget-skipped cells are listed under `"skipped"`.
pub fn reliability_to_json(panel: &ReliabilityPanelResult) -> String {
    Json::obj(vec![
        (
            "points",
            Json::Arr(
                panel
                    .points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("mode", Json::str(&p.mode)),
                            ("protocol", Json::str(&p.protocol)),
                            ("result", run_result_json(&p.result)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "skipped",
            Json::Arr(panel.skipped.iter().map(Json::str).collect()),
        ),
    ])
    .pretty()
}

/// Render the traffic panel as fixed-width tables: per storm preset, one
/// row per fan-out mode (serialize-once cached vs clone-per-destination)
/// with delivery and serialization byte counters, followed by the cached
/// path's savings factors. Delivery columns are identical between modes by
/// construction — the panel asserts it — so the table makes the
/// accounting-only nature of the cache visible at a glance.
pub fn render_traffic(panel: &TrafficPanelResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== payload traffic panel (mhh) ==");
    let ratio = |clone: u64, cached: u64| -> String {
        if cached == 0 {
            if clone == 0 {
                "-".to_string()
            } else {
                "inf".to_string()
            }
        } else {
            format!("{:.1}x", clone as f64 / cached as f64)
        }
    };
    for scenario in panel.scenarios() {
        let _ = writeln!(out, "-- {scenario} --");
        let _ = writeln!(
            out,
            "{:>8} | {:>9} | {:>12} | {:>8} | {:>10} | {:>12} | {:>10} | {:>10}",
            "mode",
            "delivered",
            "deliv bytes",
            "fanouts",
            "serialize",
            "bytes ser",
            "allocs",
            "cache hits"
        );
        let _ = writeln!(out, "{}", "-".repeat(98));
        for mode in ["cached", "clone"] {
            let Some(p) = panel.cell(scenario, mode) else {
                continue;
            };
            let t = &p.result.traffic;
            let _ = writeln!(
                out,
                "{:>8} | {:>9} | {:>12} | {:>8} | {:>10} | {:>12} | {:>10} | {:>10}",
                mode,
                p.result.delivered_messages,
                t.delivery_bytes,
                t.fanouts,
                t.serializations,
                t.bytes_serialized,
                t.fanout_allocs,
                t.cache_hits
            );
        }
        if let (Some(cached), Some(clone)) = (
            panel.cell(scenario, "cached"),
            panel.cell(scenario, "clone"),
        ) {
            let (ct, bt) = (&cached.result.traffic, &clone.result.traffic);
            let _ = writeln!(
                out,
                "   cached saves: {} fewer fan-out allocations, {} fewer bytes serialized",
                ratio(bt.fanout_allocs, ct.fanout_allocs),
                ratio(bt.bytes_serialized, ct.bytes_serialized),
            );
            if ct.buffered_bytes_peak > 0 || ct.checkpoint_bytes_peak > 0 {
                let _ = writeln!(
                    out,
                    "   memory high-water: buffered {} B, checkpoints {} B",
                    ct.buffered_bytes_peak, ct.checkpoint_bytes_peak
                );
            }
        }
    }
    if !panel.skipped.is_empty() {
        let _ = writeln!(
            out,
            "-- skipped (wall-clock budget exhausted): {} --",
            panel.skipped.join(", ")
        );
    }
    out
}

/// Serialise the traffic panel to pretty JSON; each point's `result`
/// carries the full byte-accounting section. Budget-skipped cells are
/// listed under `"skipped"`.
pub fn traffic_to_json(panel: &TrafficPanelResult) -> String {
    Json::obj(vec![
        (
            "points",
            Json::Arr(
                panel
                    .points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("scenario", Json::str(&p.scenario)),
                            ("mode", Json::str(&p.mode)),
                            ("result", run_result_json(&p.result)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "skipped",
            Json::Arr(panel.skipped.iter().map(Json::str).collect()),
        ),
    ])
    .pretty()
}

/// Metric accessor used by the matrix tables.
type MetricFn = fn(&RunResult) -> f64;

/// Render the mobility-model × protocol matrix as fixed-width tables: one
/// row per model parameter point, one column per protocol, one table per
/// metric.
pub fn render_matrix(matrix: &MatrixResult) -> String {
    let protocols = matrix.protocols();
    let models = matrix.models();
    let row_width = models
        .iter()
        .map(|m| m.to_string().len())
        .max()
        .unwrap_or(0)
        .max(20);
    let mut out = String::new();
    let _ = writeln!(out, "== mobility-model x protocol matrix ==");
    let metrics: [(&str, MetricFn); 3] = [
        ("message overhead per handoff (hops)", |r| {
            r.overhead_per_handoff
        }),
        ("average handoff delay (ms)", |r| r.avg_handoff_delay_ms),
        ("lost events", |r| r.audit.lost as f64),
    ];
    for (title, metric) in metrics {
        let _ = writeln!(out, "-- {title} --");
        let _ = write!(out, "{:>row_width$}", "model");
        for proto in &protocols {
            let _ = write!(out, " | {proto:>12}");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "-".repeat(row_width + protocols.len() * 15));
        for model in &models {
            let _ = write!(out, "{:>row_width$}", model.to_string());
            for proto in &protocols {
                match matrix.cell(model, proto) {
                    Some(p) => {
                        let _ = write!(out, " | {:12.1}", metric(&p.result));
                    }
                    None => {
                        let _ = write!(out, " | {:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Serialise the matrix to pretty JSON. `mobility` is the parameter-point
/// label (e.g. `"random-waypoint(pause=60s)"`), `model` the bare kind label.
/// Budget-skipped cells are listed under `"skipped"`.
pub fn matrix_to_json(matrix: &MatrixResult) -> String {
    Json::obj(vec![
        (
            "points",
            Json::Arr(
                matrix
                    .points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("mobility", Json::str(p.mobility.to_string())),
                            ("model", Json::str(p.mobility.label())),
                            ("protocol", Json::str(&p.protocol)),
                            ("topology", Json::str(&p.topology)),
                            ("result", run_result_json(&p.result)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "skipped",
            Json::Arr(matrix.skipped.iter().map(Json::str).collect()),
        ),
    ])
    .pretty()
}

/// Render the reactive-vs-proclaimed comparison as a fixed-width table: one
/// row per protocol, the paired per-handover first-delivery gaps, the
/// reduction the proclamation bought, and the paired overhead.
pub fn render_proclaimed(cmp: &ProclaimedCompareResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== reactive (§4.2) vs proclaimed (§4.1) handovers ==");
    let _ = writeln!(
        out,
        "{:>12} | {:>16} | {:>17} | {:>9} | {:>14} | {:>14}",
        "protocol",
        "reactive gap ms",
        "proclaimed gap ms",
        "reduction",
        "reactive ovh",
        "proclaimed ovh"
    );
    let _ = writeln!(out, "{}", "-".repeat(96));
    for p in &cmp.points {
        let _ = writeln!(
            out,
            "{:>12} | {:>16.1} | {:>17.1} | {:>8.0}% | {:>14.1} | {:>14.1}",
            p.protocol,
            p.reactive_gap_ms(),
            p.proclaimed_gap_ms(),
            p.gap_reduction() * 100.0,
            p.reactive.overhead_per_handoff,
            p.proclaimed.overhead_per_handoff,
        );
    }
    // The tail the means hide: per-kind gap percentiles from the ledgers.
    let _ = writeln!(out, "-- first-delivery gap p50/p95/p99 (ms) --");
    let fmt_pct = |ledger: &HandoverLedger| match ledger.gap_percentiles_ms() {
        Some(g) => format!("{:.0}/{:.0}/{:.0}", g.p50, g.p95, g.p99),
        None => "-".to_string(),
    };
    for p in &cmp.points {
        let _ = writeln!(
            out,
            "{:>12} | reactive {:>16} | proclaimed {:>16}",
            p.protocol,
            fmt_pct(&p.reactive.ledger),
            fmt_pct(&p.proclaimed.ledger),
        );
    }
    if !cmp.skipped.is_empty() {
        let _ = writeln!(
            out,
            "-- skipped (wall-clock budget exhausted): {} --",
            cmp.skipped.join(", ")
        );
    }
    out
}

/// Serialise the reactive-vs-proclaimed comparison to pretty JSON.
/// Budget-skipped protocol pairs are listed under `"skipped"`.
pub fn proclaimed_to_json(cmp: &ProclaimedCompareResult) -> String {
    Json::obj(vec![
        (
            "points",
            Json::Arr(
                cmp.points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("protocol", Json::str(&p.protocol)),
                            ("gap_reduction", Json::Num(p.gap_reduction())),
                            ("reactive", run_result_json(&p.reactive)),
                            ("proclaimed", run_result_json(&p.proclaimed)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "skipped",
            Json::Arr(cmp.skipped.iter().map(Json::str).collect()),
        ),
    ])
    .pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::experiments::{figure5_in, mobility_matrix_in};
    use crate::protocols::ProtocolRegistry;
    use mhh_mobility::ModelKind;

    fn base() -> ScenarioConfig {
        ScenarioConfig {
            grid_side: 3,
            clients_per_broker: 2,
            mobile_fraction: 0.5,
            conn_mean_s: 20.0,
            disc_mean_s: 20.0,
            publish_interval_s: 10.0,
            duration_s: 120.0,
            seed: 1,
            ..ScenarioConfig::paper_defaults()
        }
    }

    #[test]
    fn render_contains_all_protocols_and_x_values() {
        let fig = figure5_in(&ProtocolRegistry::builtin(), &base(), &[10.0, 50.0], 4);
        let text = render_figure(&fig);
        assert!(text.contains("MHH"));
        assert!(text.contains("sub-unsub"));
        assert!(text.contains("HB"));
        assert!(text.contains("10"));
        assert!(text.contains("50"));
        let json = to_json(&fig);
        assert!(json.contains("\"figure5\""));
    }

    #[test]
    fn proclaimed_runs_render_the_handover_dimension() {
        use crate::experiments::proclaimed_comparison_in;
        let proclaimed_base = base().with_proclaimed_fraction(1.0);
        let fig = figure5_in(&ProtocolRegistry::builtin(), &proclaimed_base, &[20.0], 2);
        let text = render_figure(&fig);
        assert!(
            text.contains("handover mix"),
            "proclaimed figure renders the mix panel:\n{text}"
        );
        let json = to_json(&fig);
        assert!(json.contains("\"proclaimed\""), "{json}");
        assert!(json.contains("\"proclaimed_gap_ms\""), "{json}");
        assert!(json.contains("\"skipped\": []"), "{json}");

        // Purely reactive figures render without the panel.
        let reactive = figure5_in(&ProtocolRegistry::builtin(), &base(), &[20.0], 2);
        assert!(!render_figure(&reactive).contains("handover mix"));

        let cmp = proclaimed_comparison_in(&ProtocolRegistry::builtin(), &base(), 2);
        let table = render_proclaimed(&cmp);
        assert!(
            table.contains("MHH") && table.contains("reduction"),
            "{table}"
        );
        let cjson = proclaimed_to_json(&cmp);
        assert!(cjson.contains("\"gap_reduction\""));
    }

    #[test]
    fn failure_panel_renders_outage_tables_and_json_recovery_sections() {
        use crate::config::FaultPlan;
        use crate::experiments::failure_panel_in;
        use crate::scenarios::Scenario;
        let preset = Scenario {
            name: "tiny-crash",
            summary: "one mid-run crash",
            config: base().with_faults(FaultPlan {
                broker_crashes: vec![(4, 30.0, 50.0)],
                ..FaultPlan::default()
            }),
        };
        let panel = failure_panel_in(&ProtocolRegistry::extended(), &[preset], 4);
        let text = render_failure_panel(&panel);
        assert!(text.contains("failure & recovery panel"), "{text}");
        assert!(text.contains("tiny-crash"), "{text}");
        assert!(text.contains("PSVR"), "{text}");
        assert!(text.contains("crash broker 4"), "{text}");
        assert!(text.contains("mean repair ms"), "{text}");
        let json = failure_to_json(&panel);
        assert!(json.contains("\"recovery\""), "{json}");
        assert!(json.contains("\"repair_ms\""), "{json}");
        assert!(json.contains("\"dropped_envelopes\""), "{json}");
        assert!(json.contains("\"skipped\": []"), "{json}");
        // Zero-fault runs export a null recovery section.
        let fig = figure5_in(&ProtocolRegistry::builtin(), &base(), &[20.0], 2);
        let fig_json = to_json(&fig);
        assert!(fig_json.contains("\"recovery\": null"), "{fig_json}");
    }

    #[test]
    fn matrix_rows_carry_parameter_points() {
        let models = [
            ModelKind::RandomWaypoint { pause_mean_s: 5.0 },
            ModelKind::RandomWaypoint { pause_mean_s: 50.0 },
        ];
        let matrix = mobility_matrix_in(&ProtocolRegistry::builtin(), &base(), &models, 4);
        let text = render_matrix(&matrix);
        assert!(text.contains("random-waypoint(pause=5s)"), "{text}");
        assert!(text.contains("random-waypoint(pause=50s)"), "{text}");
        let json = matrix_to_json(&matrix);
        assert!(json.contains("\"random-waypoint(pause=5s)\""));
        assert!(json.contains("\"model\": \"random-waypoint\""));
    }
}
