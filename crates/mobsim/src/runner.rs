//! Scenario runner: build the deployment for a protocol, inject the
//! workload, run to completion and compute the metrics.
//!
//! Two equivalent paths exist. [`run_scenario`] is the generic fast path:
//! the deployment is monomorphized per protocol. [`run_spec`] /
//! [`run_named`] are the dyn paths: the protocol comes out of a
//! [`crate::protocols::ProtocolRegistry`] entry and runs
//! behind `Box<dyn DynProtocol>`. Both replay the identical seeded workload
//! and exchange the identical messages, so their [`RunResult`]s are
//! byte-identical — asserted by the integration tests and the sweep bench.

use std::cell::Cell;
use std::sync::Arc;

use mhh_baselines::{HomeBroker, SubUnsub};
use mhh_pubsub::broker::MobilityProtocol;
use mhh_pubsub::delivery::{audit, SubscriberLog};
use mhh_pubsub::dynproto::BoxedMsg;
use mhh_pubsub::{repair_drives, ClientId, Deployment, DeploymentConfig, Event, NetMsg};
use mhh_simnet::{
    EngineArena, EnginePerf, FaultSchedule, Network, PhaseBreakdown, SimDuration, TrafficClass,
};

use crate::builder::SimError;
use crate::config::{Protocol, ScenarioConfig};
use crate::metrics::{ClientHandoverLog, HandoverLedger, RecoveryLedger, RunResult, TrafficReport};
use crate::protocols::{mhh_for, sub_unsub_wait, ProtocolRegistry, ProtocolSpec};
use crate::workload::Workload;

/// Translate a scenario config into the deployment config of the substrate.
fn deployment_config(config: &ScenarioConfig) -> DeploymentConfig {
    DeploymentConfig {
        grid_side: config.grid_side,
        topology: config.topology.clone(),
        seed: config.seed,
        wired_latency: SimDuration::from_millis(config.wired_ms),
        wireless_latency: SimDuration::from_millis(config.wireless_ms),
        link_model: config.link_model(),
        covering: config.covering,
        engine_workers: config.engine_workers,
        fanout_mode: config.fanout_mode,
        retained: config.retained,
        shared_group_size: config.shared_group_size,
        track_mem: config.track_mem,
        dedup_window: config.dedup_window,
        retransmit: config.retransmit,
        checkpoint_replication_ms: config.checkpoint_replication_ms,
        // The replication tick stops re-arming at the workload horizon, so
        // the post-horizon drain terminates.
        replication_horizon_ms: (config.duration_s * 1000.0).ceil() as u64,
    }
}

/// Run one scenario with one protocol and collect the metrics — the generic
/// fast path (one monomorphized deployment per protocol). The workload is
/// regenerated from the scenario seed, so calling this for different
/// protocols with the same config performs a paired comparison. The broker
/// network — topology, MST overlay, distance and routing tables — is built
/// **once** here and shared by the workload generator, the safety-interval
/// derivation and the deployment.
pub fn run_scenario(config: &ScenarioConfig, protocol: Protocol) -> RunResult {
    run_scenario_perf(config, protocol).0
}

/// [`run_scenario`] plus the engine's hot-path performance counters
/// ([`EnginePerf`]: peak queue depth, storage-growth events) — the counters
/// the `BENCH_engine.json` trajectory records. The metrics half is
/// byte-identical to [`run_scenario`]'s.
pub fn run_scenario_perf(config: &ScenarioConfig, protocol: Protocol) -> (RunResult, EnginePerf) {
    let (result, perf, _) = run_scenario_full(config, protocol, false);
    (result, perf)
}

/// [`run_scenario_perf`] plus the serial engine's per-phase cost breakdown
/// (queue / clocks / protocol / stats nanoseconds). Profiling is a
/// serial-engine feature, so the run is forced onto the serial backend
/// whatever `engine_workers` says; the metrics half stays byte-identical to
/// an unprofiled serial run. The timer reads add per-delivery overhead, so
/// report throughput from a separate unprofiled pass.
pub fn run_scenario_phases(
    config: &ScenarioConfig,
    protocol: Protocol,
) -> (RunResult, EnginePerf, PhaseBreakdown) {
    let serial = ScenarioConfig {
        engine_workers: 0,
        ..config.clone()
    };
    let (result, perf, phases) = run_scenario_full(&serial, protocol, true);
    (
        result,
        perf,
        phases.expect("the serial engine was asked to profile"),
    )
}

fn run_scenario_full(
    config: &ScenarioConfig,
    protocol: Protocol,
    profile: bool,
) -> (RunResult, EnginePerf, Option<PhaseBreakdown>) {
    let network = config.build_network();
    let workload = Workload::generate_on(config, &network);
    let label = protocol.label();
    match protocol {
        Protocol::Mhh => run_with(config, network, label, &workload, profile, |_| {
            mhh_for(config)
        }),
        Protocol::HomeBroker => run_with(config, network, label, &workload, profile, |_| {
            HomeBroker::new()
        }),
        Protocol::SubUnsub => {
            let wait = sub_unsub_wait(config, &network);
            run_with(
                config,
                network.clone(),
                label,
                &workload,
                profile,
                move |_| SubUnsub::new(wait),
            )
        }
    }
}

thread_local! {
    /// The dyn path's recycled engine storage. Every registry protocol runs
    /// as `Deployment<Box<dyn DynProtocol>>`, so one arena type fits them
    /// all: a sweep worker thread grows the queue/clock/scratch storage on
    /// its first point and then reuses it for every subsequent point
    /// (allocation-free steady state; `EnginePerf::alloc_events` stays flat
    /// across a sweep). Dies with the sweep worker's scoped thread.
    static SWEEP_ARENA: Cell<Option<EngineArena<NetMsg<BoxedMsg>>>> = const { Cell::new(None) };
}

/// Run one scenario with a registry protocol — the dyn path. The deployment
/// is `Deployment<Box<dyn DynProtocol>>`, so one compiled code path runs
/// every registered protocol; results are byte-identical to the generic
/// path for the same protocol.
pub fn run_spec(config: &ScenarioConfig, spec: &ProtocolSpec) -> RunResult {
    run_spec_perf(config, spec).0
}

/// [`run_spec`] plus the engine's hot-path counters (see
/// [`run_scenario_perf`]). This is the path sweep workers take: the engine
/// arena is recycled across calls on the same thread, so back-to-back
/// points reuse the warmed storage instead of re-growing it.
pub fn run_spec_perf(config: &ScenarioConfig, spec: &ProtocolSpec) -> (RunResult, EnginePerf) {
    let network = config.build_network();
    let workload = Workload::generate_on(config, &network);
    let factory = spec.instantiate(config, &network);
    let arena = SWEEP_ARENA.take().unwrap_or_default();
    let (result, perf, _, arena) = run_with_arena(
        config,
        network,
        spec.label(),
        &workload,
        false,
        factory,
        arena,
    );
    if let Some(arena) = arena {
        SWEEP_ARENA.set(Some(arena));
    }
    (result, perf)
}

/// Run one scenario with a protocol resolved by name in the process-wide
/// [`ProtocolRegistry`].
pub fn run_named(config: &ScenarioConfig, protocol: &str) -> Result<RunResult, SimError> {
    let registry = ProtocolRegistry::global();
    let spec = registry
        .find(protocol)
        .ok_or_else(|| SimError::unknown_protocol(protocol, &registry))?;
    Ok(run_spec(config, spec))
}

fn run_with<P, F>(
    config: &ScenarioConfig,
    network: Arc<Network>,
    label: &str,
    workload: &Workload,
    profile: bool,
    make_protocol: F,
) -> (RunResult, EnginePerf, Option<PhaseBreakdown>)
where
    P: MobilityProtocol,
    F: FnMut(mhh_pubsub::BrokerId) -> P,
{
    let (result, perf, phases, _) = run_with_arena(
        config,
        network,
        label,
        workload,
        profile,
        make_protocol,
        EngineArena::new(),
    );
    (result, perf, phases)
}

/// [`run_with`] threading a recycled storage arena in and back out (`None`
/// comes back when the run used the parallel backend, whose storage is
/// sharded and not recyclable).
#[allow(clippy::type_complexity)]
fn run_with_arena<P, F>(
    config: &ScenarioConfig,
    network: Arc<Network>,
    label: &str,
    workload: &Workload,
    profile: bool,
    make_protocol: F,
    arena: EngineArena<NetMsg<P::Msg>>,
) -> (
    RunResult,
    EnginePerf,
    Option<PhaseBreakdown>,
    Option<EngineArena<NetMsg<P::Msg>>>,
)
where
    P: MobilityProtocol,
    F: FnMut(mhh_pubsub::BrokerId) -> P,
{
    let dep_config = deployment_config(config);
    let faults = config.fault_schedule(&network);
    // Reject malformed schedules up front with the typed error instead of
    // letting an unsorted or never-firing window skew ledger attribution.
    if let Err(e) = faults.validate(mhh_simnet::SimTime::from_secs_f64(config.duration_s)) {
        panic!("invalid fault schedule: {e}");
    }
    let mut dep: Deployment<P> = Deployment::build_on_in(
        network.clone(),
        &dep_config,
        &workload.clients,
        make_protocol,
        arena,
    );
    if profile {
        dep.engine.enable_phase_profile();
    }
    if let Some(loss) = config.loss_model() {
        dep.engine.set_loss(loss);
    }

    // The repair layer's failure-detection drives (peer-down/up, link-down/up
    // and restart kicks). Empty on the zero-fault fast path, where the
    // engine never even stores the schedule.
    let drives = if faults.is_empty() {
        Vec::new()
    } else {
        dep.engine.set_faults(Arc::new(faults.clone()));
        repair_drives(
            &faults,
            &network,
            &dep.book,
            SimDuration::from_secs_f64(config.faults.detection_delay_s),
        )
    };

    // External messages (repair drives first, then the timeline) claim the
    // sequence window [0, N) up front so lazy injection below assigns the
    // same (time, seq) total order the old schedule-everything-eagerly loop
    // produced — runs stay byte-identical — while the event queue only ever
    // holds the in-flight horizon instead of the whole workload.
    dep.engine
        .reserve_external_seqs((drives.len() + workload.timeline.len()) as u64);
    // The replication clock draws ordinary (post-reservation) sequence
    // numbers, so it must be armed after the reservation above.
    dep.arm_replication_ticks();
    for (at, node, msg) in drives {
        dep.engine.schedule_external_reserved(at, node, msg);
    }

    // Lazy timeline injection: drain the engine strictly up to each entry's
    // timestamp, then enqueue it. The timeline is interleaved per client, so
    // a stable sort by time (preserving generation order at equal instants)
    // fixes the injection order.
    let mut order: Vec<usize> = (0..workload.timeline.len()).collect();
    order.sort_by_key(|&i| workload.timeline[i].at);
    for &i in &order {
        let entry = &workload.timeline[i];
        dep.engine.run_strictly_before(entry.at);
        dep.engine.schedule_external_reserved(
            entry.at,
            dep.book.client_node(entry.client),
            NetMsg::Action(entry.action.clone()),
        );
    }
    dep.engine.run_to_completion();
    let perf = dep.engine.perf();
    let phases = dep.engine.phase_breakdown();
    let result = collect(config, label, &dep, &faults);
    let (_, _, _, recycled) = dep.engine.recycle();
    (result, perf, phases, recycled)
}

fn collect<P: MobilityProtocol>(
    config: &ScenarioConfig,
    protocol: &str,
    dep: &Deployment<P>,
    faults: &FaultSchedule,
) -> RunResult {
    let published: Vec<Event> = dep.clients().flat_map(|c| c.published.clone()).collect();
    let buffered = dep.buffered_events();

    // Reliability audit over every subscriber.
    let logs: Vec<(
        ClientId,
        mhh_pubsub::Filter,
        Vec<mhh_pubsub::DeliveryRecord>,
    )> = dep
        .clients()
        .map(|c| (c.id, c.filter.clone(), c.received.clone()))
        .collect();
    let subscriber_logs: Vec<SubscriberLog<'_>> = logs
        .iter()
        .map(|(id, filter, recs)| SubscriberLog {
            client: *id,
            filter,
            deliveries: recs,
        })
        .collect();
    let audit_result = audit(&published, &subscriber_logs, &buffered);

    // The per-handover ledger; the paper's aggregate metrics derive from it.
    let handover_logs: Vec<ClientHandoverLog<'_>> = dep
        .clients()
        .zip(logs.iter())
        .map(|(c, (_, filter, recs))| ClientHandoverLog {
            client: c.id,
            filter,
            disconnects: &c.disconnects,
            reconnects: &c.reconnects,
            deliveries: recs,
        })
        .collect();
    let ledger = HandoverLedger::assemble(&published, &handover_logs, &buffered);
    let mut recovery = RecoveryLedger::assemble(
        faults.windows(),
        dep.engine.drops(),
        &published,
        &handover_logs,
        &buffered,
    );
    // Reliability-layer counters live in the brokers/clients, not the drop
    // log; all zero (and Debug-invisible) unless the knobs were turned on.
    recovery.duplicates_suppressed = dep.duplicates_suppressed();
    recovery.retransmissions = dep.retransmissions();
    recovery.stale_resubscribes = dep.stale_resubscribes();

    let handoffs = ledger.handoff_count();
    let delays = ledger.delays_ms();
    let delay_samples = delays.len() as u64;
    let avg_delay = ledger.mean_delay_ms();
    let stats = dep.engine.stats();
    let mobility_hops = stats.mobility_hops();
    let overhead = if handoffs == 0 {
        0.0
    } else {
        mobility_hops as f64 / handoffs as f64
    };
    let delivered_messages = stats.class(TrafficClass::EventDelivery).messages;

    let fanout = dep.fanout_stats();
    let traffic = TrafficReport {
        delivery_bytes: stats.class(TrafficClass::EventDelivery).bytes,
        total_wire_bytes: stats.total_bytes(),
        fanouts: fanout.fanouts,
        serializations: fanout.serializations,
        bytes_serialized: fanout.bytes_serialized,
        fanout_allocs: fanout.fanout_allocs,
        cache_hits: fanout.cache_hits,
        buffered_bytes_peak: dep.buffered_bytes_peak(),
        checkpoint_bytes_peak: dep.checkpoint_bytes_peak(),
        dedup_bytes_peak: dep.dedup_bytes_peak(),
    };

    RunResult {
        protocol: protocol.to_string(),
        handoffs,
        mobility_hops,
        overhead_per_handoff: overhead,
        avg_handoff_delay_ms: avg_delay,
        delay_samples,
        audit: audit_result,
        ledger,
        recovery,
        published: published.len() as u64,
        delivered_messages,
        total_hops: stats.total_hops(),
        sim_duration_s: config.duration_s,
        traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScenarioConfig {
        ScenarioConfig {
            grid_side: 4,
            clients_per_broker: 3,
            mobile_fraction: 0.25,
            conn_mean_s: 40.0,
            disc_mean_s: 40.0,
            publish_interval_s: 20.0,
            duration_s: 400.0,
            seed: 11,
            ..ScenarioConfig::paper_defaults()
        }
    }

    #[test]
    fn mhh_run_is_reliable_and_produces_handoffs() {
        let r = run_scenario(&tiny(), Protocol::Mhh);
        assert!(r.handoffs > 0, "workload must move clients: {r:?}");
        assert!(
            r.reliable(),
            "MHH must be exactly-once/ordered: {:?}",
            r.audit
        );
        assert!(r.mobility_hops > 0);
        assert!(r.avg_handoff_delay_ms > 0.0);
        assert!(r.published > 0);
    }

    #[test]
    fn sub_unsub_run_is_reliable_but_slower() {
        let cfg = tiny();
        let su = run_scenario(&cfg, Protocol::SubUnsub);
        let mhh = run_scenario(&cfg, Protocol::Mhh);
        assert!(su.reliable(), "sub-unsub must be reliable: {:?}", su.audit);
        assert_eq!(su.handoffs, mhh.handoffs, "paired workload → same handoffs");
        assert!(
            su.avg_handoff_delay_ms > mhh.avg_handoff_delay_ms,
            "sub-unsub delay {} must exceed MHH delay {}",
            su.avg_handoff_delay_ms,
            mhh.avg_handoff_delay_ms
        );
    }

    #[test]
    fn home_broker_run_may_lose_but_never_duplicates() {
        let r = run_scenario(&tiny(), Protocol::HomeBroker);
        assert_eq!(r.audit.duplicates, 0, "{:?}", r.audit);
        assert_eq!(r.audit.out_of_order, 0, "{:?}", r.audit);
        assert!(r.handoffs > 0);
    }

    #[test]
    fn dyn_path_is_byte_identical_to_generic_path() {
        let cfg = tiny();
        let registry = ProtocolRegistry::builtin();
        for protocol in Protocol::ALL {
            let generic = run_scenario(&cfg, protocol);
            let spec = registry.find(protocol.name()).expect("builtin registered");
            let erased = run_spec(&cfg, spec);
            assert_eq!(
                format!("{generic:?}"),
                format!("{erased:?}"),
                "{}: dyn dispatch must not change the metrics",
                protocol.label()
            );
        }
    }

    #[test]
    fn run_named_resolves_the_global_registry() {
        let cfg = tiny();
        let by_name = run_named(&cfg, "mhh").expect("mhh is builtin");
        let generic = run_scenario(&cfg, Protocol::Mhh);
        assert_eq!(format!("{by_name:?}"), format!("{generic:?}"));
        assert!(run_named(&cfg, "no-such-protocol").is_err());
    }

    #[test]
    fn perf_counters_accompany_identical_metrics() {
        let cfg = tiny();
        let (r, perf) = run_scenario_perf(&cfg, Protocol::Mhh);
        let plain = run_scenario(&cfg, Protocol::Mhh);
        assert_eq!(
            format!("{r:?}"),
            format!("{plain:?}"),
            "the perf variant must not change the metrics"
        );
        assert!(perf.deliveries > 0);
        assert!(perf.peak_queue_depth > 0);
        // The allocation sanity counter: storage growths are a vanishing
        // fraction of deliveries even in a short run.
        assert!(
            (perf.alloc_events as f64) < 0.5 * perf.deliveries as f64,
            "alloc_events {} vs deliveries {}",
            perf.alloc_events,
            perf.deliveries
        );
    }

    #[test]
    fn parallel_engine_runs_are_byte_identical_to_serial() {
        // The full metrics pipeline — delivery audit, handover ledger,
        // recovery ledger, traffic stats — as the equality oracle, across
        // worker counts, on both the constant-latency fast path and the
        // jittered + crash-storm slow path.
        let constant = tiny();
        let jittered = tiny()
            .with_jitter_ms(5)
            .with_faults(crate::config::FaultPlan {
                crash_storm: Some((3, 30.0)),
                ..crate::config::FaultPlan::default()
            });
        for cfg in [constant, jittered] {
            let serial = run_scenario(&cfg, Protocol::Mhh);
            for workers in [2, 4, 8] {
                let par = run_scenario(&cfg.clone().with_engine_workers(workers), Protocol::Mhh);
                assert_eq!(
                    format!("{serial:?}"),
                    format!("{par:?}"),
                    "engine_workers={workers} must not change any metric"
                );
            }
        }
    }

    #[test]
    fn sweep_arena_reuse_pins_allocations_flat() {
        let registry = ProtocolRegistry::builtin();
        let spec = registry.find("mhh").expect("mhh is builtin");
        let points: Vec<ScenarioConfig> = [11u64, 12, 13]
            .into_iter()
            .map(|seed| ScenarioConfig { seed, ..tiny() })
            .collect();
        // First pass grows this thread's arena to the sweep's high-water
        // mark; the second pass over the same points must then be
        // allocation-free — the reuse satellite's whole point.
        let first: Vec<_> = points.iter().map(|c| run_spec_perf(c, spec)).collect();
        assert!(first.iter().any(|(_, p)| p.alloc_events > 0));
        for (c, (warm_result, _)) in points.iter().zip(&first) {
            let (result, perf) = run_spec_perf(c, spec);
            assert_eq!(perf.alloc_events, 0, "seed {}: arena must be warm", c.seed);
            assert_eq!(
                format!("{result:?}"),
                format!("{warm_result:?}"),
                "seed {}: reuse must not change the metrics",
                c.seed
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_scenario(&tiny(), Protocol::Mhh);
        let b = run_scenario(&tiny(), Protocol::Mhh);
        assert_eq!(a.mobility_hops, b.mobility_hops);
        assert_eq!(a.handoffs, b.handoffs);
        assert_eq!(a.avg_handoff_delay_ms, b.avg_handoff_delay_ms);
        assert_eq!(a.audit, b.audit);
    }
}
