//! The fluent simulation facade: one entry point to configure and run any
//! scenario × protocol × mobility-model × worker-count combination.
//!
//! [`Sim`] starts a builder from a named scenario preset (the
//! [`crate::scenarios`] registry) or a raw [`ScenarioConfig`];
//! [`SimBuilder`] layers overrides on top and ends in a run:
//!
//! ```
//! use mhh_mobsim::{ModelKind, Sim};
//!
//! let result = Sim::scenario("paper-fig5")
//!     .protocol("mhh")
//!     .mobility(ModelKind::ManhattanGrid)
//!     .grid_side(4)
//!     .clients_per_broker(3)
//!     .duration_s(300.0)
//!     .run()
//!     .unwrap();
//! assert!(result.reliable());
//! ```
//!
//! Lookup failures (unknown scenario or protocol name) are carried inside
//! the builder and surface as a [`SimError`] from the terminal call, so the
//! chain itself stays `?`-free. Protocol names resolve against the
//! process-wide [`ProtocolRegistry`] (builtin three plus anything passed to
//! [`crate::protocols::register`]) unless a local registry is supplied via
//! [`SimBuilder::registry`].

use std::time::Duration;

use mhh_mobility::sweep::{available_workers, map_parallel_budgeted};
use mhh_mobility::ModelKind;
use mhh_simnet::TopologyKind;

use crate::config::ScenarioConfig;
use crate::experiments::{
    figure5_budgeted_in, figure6_budgeted_in, mobility_matrix_budgeted_in,
    proclaimed_comparison_budgeted_in, FigureResult, MatrixResult, ProclaimedCompareResult,
};
use crate::metrics::RunResult;
use crate::protocols::ProtocolRegistry;
use crate::runner::run_spec;
use crate::scenarios;

/// What went wrong while resolving a builder chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No scenario preset with this name.
    UnknownScenario {
        /// The requested name.
        name: String,
        /// All registered preset names.
        available: Vec<String>,
    },
    /// No protocol with this name in the registry in use.
    UnknownProtocol {
        /// The requested name.
        name: String,
        /// All registered protocol names.
        available: Vec<String>,
    },
    /// No topology kind with this name.
    UnknownTopology {
        /// The requested name.
        name: String,
        /// All parseable topology names.
        available: Vec<String>,
    },
}

impl SimError {
    pub(crate) fn unknown_scenario(name: &str) -> SimError {
        SimError::UnknownScenario {
            name: name.to_string(),
            available: scenarios::registry()
                .iter()
                .map(|s| s.name.to_string())
                .collect(),
        }
    }

    pub(crate) fn unknown_protocol(name: &str, registry: &ProtocolRegistry) -> SimError {
        SimError::UnknownProtocol {
            name: name.to_string(),
            available: registry.names().iter().map(|n| n.to_string()).collect(),
        }
    }

    pub(crate) fn unknown_topology(name: &str) -> SimError {
        SimError::UnknownTopology {
            name: name.to_string(),
            available: TopologyKind::names()
                .iter()
                .map(|n| n.to_string())
                .collect(),
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownScenario { name, available } => write!(
                f,
                "unknown scenario {name:?}; registered scenarios: {}",
                available.join(", ")
            ),
            SimError::UnknownProtocol { name, available } => write!(
                f,
                "unknown protocol {name:?}; registered protocols: {}",
                available.join(", ")
            ),
            SimError::UnknownTopology { name, available } => write!(
                f,
                "unknown topology {name:?}; parseable topologies: {} \
                 (edge lists go through ScenarioConfig::topology directly)",
                available.join(", ")
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Entry point of the fluent API.
pub struct Sim;

impl Sim {
    /// Start from a named preset of the scenario registry. An unknown name
    /// is reported by the terminal `run`/sweep call, not here.
    pub fn scenario(name: &str) -> SimBuilder {
        SimBuilder {
            config: scenarios::find(name)
                .map(|s| s.config)
                .ok_or_else(|| SimError::unknown_scenario(name)),
            protocol: "mhh".to_string(),
            workers: None,
            registry: None,
            budget: None,
        }
    }

    /// Start from an explicit configuration.
    pub fn config(config: ScenarioConfig) -> SimBuilder {
        SimBuilder {
            config: Ok(config),
            protocol: "mhh".to_string(),
            workers: None,
            registry: None,
            budget: None,
        }
    }
}

/// Accumulates scenario, protocol, mobility and execution choices; terminal
/// calls ([`run`](SimBuilder::run), [`run_all`](SimBuilder::run_all),
/// [`figure5`](SimBuilder::figure5), [`figure6`](SimBuilder::figure6),
/// [`matrix`](SimBuilder::matrix)) execute the simulation(s). Cloning is
/// cheap, so one configured builder can seed several runs.
#[derive(Clone)]
pub struct SimBuilder {
    config: Result<ScenarioConfig, SimError>,
    protocol: String,
    workers: Option<usize>,
    registry: Option<ProtocolRegistry>,
    budget: Option<Duration>,
}

impl SimBuilder {
    /// Select the protocol by registry name (default `"mhh"`).
    pub fn protocol(mut self, name: impl Into<String>) -> Self {
        self.protocol = name.into();
        self
    }

    /// Replace the mobility model.
    pub fn mobility(mut self, kind: ModelKind) -> Self {
        self.configure_in_place(|c| c.mobility = kind);
        self
    }

    /// Select the network topology by name (`"grid"`, `"torus"`,
    /// `"random-geometric"`, `"scale-free"`) with default parameters. An
    /// unknown name surfaces as [`SimError::UnknownTopology`] from the
    /// terminal call. Parameterized or imported topologies go through
    /// [`topology_kind`](Self::topology_kind).
    pub fn topology(mut self, name: &str) -> Self {
        match TopologyKind::parse(name) {
            Some(kind) => self.configure_in_place(|c| c.topology = kind),
            None => {
                if self.config.is_ok() {
                    self.config = Err(SimError::unknown_topology(name));
                }
            }
        }
        self
    }

    /// Replace the network topology with an explicit kind (parameter
    /// points, imported edge lists).
    pub fn topology_kind(mut self, kind: TopologyKind) -> Self {
        self.configure_in_place(|c| c.topology = kind);
        self
    }

    /// Bound the per-message link jitter (milliseconds); `0` restores the
    /// paper's constant latencies (and the byte-identical fast path).
    pub fn jitter_ms(mut self, jitter_ms: u64) -> Self {
        self.configure_in_place(|c| c.jitter_ms = jitter_ms);
        self
    }

    /// Set the per-direction link asymmetry (each ordered pair's latency is
    /// scaled by a stable factor in `[1, 1 + asymmetry]`).
    pub fn link_asymmetry(mut self, asymmetry: f64) -> Self {
        self.configure_in_place(|c| c.link_asymmetry = asymmetry.max(0.0));
        self
    }

    /// Replace the fault-injection plan (broker crashes, link partitions,
    /// region outages, seeded crash storms). An empty plan — the default —
    /// keeps the run on the byte-identical zero-fault fast path.
    pub fn faults(mut self, plan: crate::config::FaultPlan) -> Self {
        self.configure_in_place(|c| c.faults = plan);
        self
    }

    /// Make this fraction of proclaimed moves announce a *wrong*
    /// destination broker (client announces B, reconnects at C) —
    /// prediction error exercising MHH's pending-handoff/abort path.
    pub fn misproclaim_fraction(mut self, fraction: f64) -> Self {
        self.configure_in_place(|c| c.misproclaim_fraction = fraction.clamp(0.0, 1.0));
        self
    }

    /// Number of sweep worker threads (default: all cores). Single runs are
    /// one simulation and always execute on the calling thread.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Worker shards for the conservative-parallel engine *inside* each run
    /// (`0`/`1` = the serial engine; results are byte-identical either way).
    /// Orthogonal to [`workers`](Self::workers), which fans out *across*
    /// runs; the sweep executor budgets the two levels against each other so
    /// `workers(w)` never uses more than `w` threads in total.
    pub fn engine_workers(mut self, workers: usize) -> Self {
        self.configure_in_place(|c| c.engine_workers = workers);
        self
    }

    /// Replace the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.configure_in_place(|c| c.seed = seed);
        self
    }

    /// Replace the proclamation override fraction (§4.1): moves the model
    /// left silent proclaim with this probability. `1.0` makes every move
    /// proclaimed, `0.0` (the default) defers to the model.
    pub fn proclaimed_fraction(mut self, fraction: f64) -> Self {
        self.configure_in_place(|c| c.proclaimed_fraction = fraction.clamp(0.0, 1.0));
        self
    }

    /// Bound the wall-clock time of the sweep terminals
    /// ([`figure5`](Self::figure5), [`figure6`](Self::figure6),
    /// [`matrix`](Self::matrix)): points that cannot start before the
    /// budget elapses are reported in the result's `skipped` list instead
    /// of running. Single runs ignore the budget.
    pub fn budget_ms(mut self, budget_ms: u64) -> Self {
        self.budget = Some(Duration::from_millis(budget_ms));
        self
    }

    /// Replace the simulated duration (seconds).
    pub fn duration_s(mut self, duration_s: f64) -> Self {
        self.configure_in_place(|c| c.duration_s = duration_s);
        self
    }

    /// Replace the grid side length (k ⇒ k² brokers).
    pub fn grid_side(mut self, side: usize) -> Self {
        self.configure_in_place(|c| c.grid_side = side);
        self
    }

    /// Replace the per-broker client count.
    pub fn clients_per_broker(mut self, clients: usize) -> Self {
        self.configure_in_place(|c| c.clients_per_broker = clients);
        self
    }

    /// Replace the mean modeled payload size in bytes (`0` = payload
    /// modeling off, the byte-identical pre-payload path).
    pub fn payload_bytes(mut self, mean: u32) -> Self {
        self.configure_in_place(|c| c.payload_bytes_mean = mean);
        self
    }

    /// Replace the broker fan-out mode (serialize-once cached vs the
    /// clone-per-destination baseline). Delivery results are byte-identical
    /// between modes; only the serialization accounting differs.
    pub fn fanout_mode(mut self, mode: mhh_pubsub::FanoutMode) -> Self {
        self.configure_in_place(|c| c.fanout_mode = mode);
        self
    }

    /// Set the per-message link loss and corruption probabilities (clamped
    /// to `[0, 1]`); `(0, 0)` restores the lossless byte-identical fast
    /// path.
    pub fn loss(mut self, loss_rate: f64, corruption_rate: f64) -> Self {
        self.configure_in_place(|c| {
            c.loss_rate = loss_rate.clamp(0.0, 1.0);
            c.corruption_rate = corruption_rate.clamp(0.0, 1.0);
        });
        self
    }

    /// Set the broker duplicate-suppression window (`0` = off).
    pub fn dedup_window(mut self, window: usize) -> Self {
        self.configure_in_place(|c| c.dedup_window = window);
        self
    }

    /// Enable/disable publisher-side ack/retransmit.
    pub fn retransmit(mut self, retransmit: bool) -> Self {
        self.configure_in_place(|c| c.retransmit = retransmit);
        self
    }

    /// Set the neighbour-replicated checkpoint period in milliseconds
    /// (`0` = the legacy local self-checkpoint restore).
    pub fn checkpoint_replication_ms(mut self, period_ms: u64) -> Self {
        self.configure_in_place(|c| c.checkpoint_replication_ms = period_ms);
        self
    }

    /// Switch to a storm-shaped workload (static publishers/subscribers, no
    /// mobility); `(0, 0)` restores the paper's mobile population.
    pub fn storm(mut self, publishers: u32, subscribers: u32) -> Self {
        self.configure_in_place(|c| {
            c.storm_publishers = publishers;
            c.storm_subscribers = subscribers;
        });
        self
    }

    /// Arbitrary configuration access, for knobs without a dedicated
    /// builder method.
    pub fn configure(mut self, f: impl FnOnce(&mut ScenarioConfig)) -> Self {
        self.configure_in_place(f);
        self
    }

    /// Resolve protocol names against this registry instead of the
    /// process-wide one (hermetic tests, experiment-local protocol sets).
    pub fn registry(mut self, registry: ProtocolRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    fn configure_in_place(&mut self, f: impl FnOnce(&mut ScenarioConfig)) {
        if let Ok(config) = &mut self.config {
            f(config);
        }
    }

    fn registry_in_use(&self) -> ProtocolRegistry {
        self.registry
            .clone()
            .unwrap_or_else(ProtocolRegistry::global)
    }

    fn workers_in_use(&self) -> usize {
        self.workers.unwrap_or_else(available_workers)
    }

    /// The fully-resolved configuration (mainly for inspection and tests).
    pub fn build_config(self) -> Result<ScenarioConfig, SimError> {
        self.config
    }

    /// Run the configured scenario with the selected protocol.
    pub fn run(self) -> Result<RunResult, SimError> {
        let registry = self.registry_in_use();
        let config = self.config?;
        let spec = registry
            .find(&self.protocol)
            .ok_or_else(|| SimError::unknown_protocol(&self.protocol, &registry))?;
        Ok(run_spec(&config, spec))
    }

    /// Run the configured scenario once per registered protocol (paired
    /// comparison over the identical workload), in registry order, fanned
    /// out over the configured workers. Ignores any configured budget; use
    /// [`run_all_budgeted`](Self::run_all_budgeted) to honour it.
    pub fn run_all(self) -> Result<Vec<RunResult>, SimError> {
        // One shared fan-out path: an unbudgeted map completes every spec.
        let (results, skipped) = Self {
            budget: None,
            ..self
        }
        .run_all_budgeted()?;
        debug_assert!(skipped.is_empty());
        Ok(results)
    }

    /// [`run_all`](Self::run_all) honouring any
    /// [`budget_ms`](Self::budget_ms): protocols that cannot *start* before
    /// the budget elapses are dropped from the results and reported by
    /// label in the second element (never silently truncated). The CI smoke
    /// of the `city-scale` stress preset runs through this, so a slow
    /// machine degrades to fewer protocols instead of a hung job.
    pub fn run_all_budgeted(self) -> Result<(Vec<RunResult>, Vec<String>), SimError> {
        let registry = self.registry_in_use();
        let workers = self.workers_in_use();
        let budget = self.budget;
        let config = self.config?;
        let specs: Vec<_> = registry.specs().to_vec();
        let map = map_parallel_budgeted(&specs, workers, budget, |spec| run_spec(&config, spec));
        let skipped = map
            .skipped
            .iter()
            .map(|&i| specs[i].label().to_string())
            .collect();
        Ok((map.results.into_iter().flatten().collect(), skipped))
    }

    /// Run the Figure 5 sweep (connection-period lengths × every registered
    /// protocol) on top of this configuration, honouring any
    /// [`budget_ms`](Self::budget_ms).
    pub fn figure5(self, conn_periods_s: &[f64]) -> Result<FigureResult, SimError> {
        let registry = self.registry_in_use();
        let workers = self.workers_in_use();
        let budget = self.budget;
        let config = self.config?;
        Ok(figure5_budgeted_in(
            &registry,
            &config,
            conn_periods_s,
            workers,
            budget,
        ))
    }

    /// Run the Figure 6 sweep (grid sizes × every registered protocol) on
    /// top of this configuration, honouring any
    /// [`budget_ms`](Self::budget_ms).
    pub fn figure6(self, grid_sides: &[usize]) -> Result<FigureResult, SimError> {
        let registry = self.registry_in_use();
        let workers = self.workers_in_use();
        let budget = self.budget;
        let config = self.config?;
        Ok(figure6_budgeted_in(
            &registry, &config, grid_sides, workers, budget,
        ))
    }

    /// Run the mobility-model × protocol matrix: every given model
    /// parameter point against every registered protocol, honouring any
    /// [`budget_ms`](Self::budget_ms).
    pub fn matrix(self, models: &[ModelKind]) -> Result<MatrixResult, SimError> {
        let registry = self.registry_in_use();
        let workers = self.workers_in_use();
        let budget = self.budget;
        let config = self.config?;
        Ok(mobility_matrix_budgeted_in(
            &registry, &config, models, workers, budget,
        ))
    }

    /// Run the reactive-vs-proclaimed comparison (§4.2 vs §4.1): every
    /// registered protocol twice on the identical move schedule, once with
    /// `proclaimed_fraction = 0.0` and once with `1.0`, honouring any
    /// [`budget_ms`](Self::budget_ms) (a pair whose halves cannot both
    /// complete is dropped and recorded as skipped).
    pub fn compare_proclaimed(self) -> Result<ProclaimedCompareResult, SimError> {
        let registry = self.registry_in_use();
        let workers = self.workers_in_use();
        let budget = self.budget;
        let config = self.config?;
        Ok(proclaimed_comparison_budgeted_in(
            &registry, &config, workers, budget,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_names_surface_at_the_terminal_call() {
        let err = Sim::scenario("no-such-scenario").run().unwrap_err();
        match err {
            SimError::UnknownScenario { name, available } => {
                assert_eq!(name, "no-such-scenario");
                assert!(available.iter().any(|s| s == "paper-fig5"));
            }
            other => panic!("wrong error: {other:?}"),
        }

        let err = Sim::scenario("trace-smoke")
            .protocol("no-such-protocol")
            .run()
            .unwrap_err();
        match err {
            SimError::UnknownProtocol { name, available } => {
                assert_eq!(name, "no-such-protocol");
                assert!(available.iter().any(|s| s == "mhh"));
            }
            other => panic!("wrong error: {other:?}"),
        }
        // Errors render actionably.
        let shown = Sim::scenario("nope").run().unwrap_err().to_string();
        assert!(
            shown.contains("nope") && shown.contains("paper-fig5"),
            "{shown}"
        );
    }

    #[test]
    fn run_all_budgeted_without_budget_matches_run_all() {
        let shrink = |b: SimBuilder| {
            b.grid_side(3)
                .clients_per_broker(2)
                .duration_s(120.0)
                .workers(2)
        };
        let (budgeted, skipped) = shrink(Sim::scenario("trace-smoke"))
            .run_all_budgeted()
            .unwrap();
        assert!(
            skipped.is_empty(),
            "no budget, nothing skipped: {skipped:?}"
        );
        let plain = shrink(Sim::scenario("trace-smoke")).run_all().unwrap();
        assert_eq!(format!("{budgeted:?}"), format!("{plain:?}"));
        // An already-expired budget skips every protocol, reported by label.
        let (none, skipped) = shrink(Sim::scenario("trace-smoke"))
            .budget_ms(0)
            .run_all_budgeted()
            .unwrap();
        assert!(none.is_empty());
        assert_eq!(skipped.len(), 3, "all three builtins reported: {skipped:?}");
        assert!(skipped.iter().any(|s| s == "MHH"));
    }

    #[test]
    fn builder_overrides_compose() {
        let config = Sim::scenario("paper-fig5")
            .mobility(ModelKind::ManhattanGrid)
            .topology("scale-free")
            .jitter_ms(4)
            .link_asymmetry(0.1)
            .misproclaim_fraction(0.5)
            .grid_side(4)
            .clients_per_broker(2)
            .duration_s(120.0)
            .seed(9)
            .configure(|c| c.publish_interval_s = 30.0)
            .build_config()
            .unwrap();
        assert_eq!(config.grid_side, 4);
        assert_eq!(config.clients_per_broker, 2);
        assert_eq!(config.seed, 9);
        assert_eq!(config.publish_interval_s, 30.0);
        assert_eq!(config.mobility, ModelKind::ManhattanGrid);
        assert_eq!(
            config.topology,
            TopologyKind::ScaleFree { edges_per_node: 2 }
        );
        assert_eq!(config.jitter_ms, 4);
        assert_eq!(config.link_asymmetry, 0.1);
        assert_eq!(config.misproclaim_fraction, 0.5);
    }

    #[test]
    fn unknown_topology_surfaces_at_the_terminal_call() {
        let err = Sim::scenario("trace-smoke")
            .topology("mesh-of-trees")
            .run()
            .unwrap_err();
        match err {
            SimError::UnknownTopology { name, available } => {
                assert_eq!(name, "mesh-of-trees");
                assert!(available.iter().any(|t| t == "scale-free"));
            }
            other => panic!("wrong error: {other:?}"),
        }
        let shown = Sim::scenario("trace-smoke")
            .topology("nope")
            .run()
            .unwrap_err()
            .to_string();
        assert!(shown.contains("nope") && shown.contains("torus"), "{shown}");
    }

    #[test]
    fn fluent_run_executes_the_scenario() {
        let result = Sim::scenario("trace-smoke").protocol("mhh").run().unwrap();
        assert_eq!(result.protocol, "MHH");
        assert_eq!(result.handoffs, 5, "trace-smoke replays five moves");
        assert!(result.reliable(), "{:?}", result.audit);
    }

    #[test]
    fn fluent_faults_override_reaches_the_run() {
        let plan = crate::config::FaultPlan {
            broker_crashes: vec![(0, 30.0, 60.0)],
            ..crate::config::FaultPlan::default()
        };
        let result = Sim::scenario("trace-smoke")
            .protocol("mhh")
            .duration_s(200.0)
            .faults(plan)
            .run()
            .unwrap();
        assert_eq!(result.recovery.len(), 1, "one outage window recorded");
        assert!(result.recovery.reconciles_with(&result.audit));
    }

    #[test]
    fn nested_sweep_and_parallel_engine_compose_deterministically() {
        // Sweep fan-out × parallel engine: the executor hands each of its
        // workers a slice of the 8-thread budget, the nested engines clamp
        // to it, and every metric stays byte-identical to the fully serial
        // run — the nested-parallelism acceptance cell.
        let shrink = |b: SimBuilder| b.grid_side(3).clients_per_broker(2).duration_s(120.0);
        let serial = shrink(Sim::scenario("trace-smoke"))
            .workers(1)
            .run_all()
            .unwrap();
        let nested = || {
            shrink(Sim::scenario("trace-smoke"))
                .workers(8)
                .engine_workers(8)
                .run_all()
                .unwrap()
        };
        let a = nested();
        let b = nested();
        assert_eq!(format!("{serial:?}"), format!("{a:?}"));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn run_all_is_a_paired_comparison_in_registry_order() {
        let results = Sim::scenario("trace-smoke")
            .registry(ProtocolRegistry::builtin())
            .workers(2)
            .run_all()
            .unwrap();
        let labels: Vec<&str> = results.iter().map(|r| r.protocol.as_str()).collect();
        assert_eq!(labels, vec!["sub-unsub", "MHH", "HB"]);
        // Identical workload for every protocol.
        assert!(results.windows(2).all(|w| w[0].handoffs == w[1].handoffs));
    }
}
