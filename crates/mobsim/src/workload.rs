//! Workload generation: client population, subscriptions with the paper's
//! 6.25 % selectivity, publication schedules and mobility timelines.
//!
//! Everything is a pure function of the scenario seed, so the *same* workload
//! (same subscriptions, same events, same move times) is replayed for every
//! protocol being compared — the comparison in the figures is therefore
//! paired, like the paper's.

use std::sync::Arc;

use mhh_mobility::{MobilityWorld, MoveStep};
use mhh_pubsub::event::EventBuilder;
use mhh_pubsub::{BrokerId, ClientAction, ClientId, ClientSpec, Event, Filter, Op};
use mhh_simnet::random::DetRng;
use mhh_simnet::{Network, SimDuration, SimTime};

use crate::config::ScenarioConfig;

/// One pre-scheduled client action.
#[derive(Debug, Clone)]
pub struct TimelineEntry {
    /// When the action fires.
    pub at: SimTime,
    /// The client performing it.
    pub client: ClientId,
    /// The action.
    pub action: ClientAction,
}

/// A complete, reproducible workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Client population (filters, homes, mobility flags).
    pub clients: Vec<ClientSpec>,
    /// Every pre-scheduled action, in no particular order (the engine sorts
    /// by time).
    pub timeline: Vec<TimelineEntry>,
    /// Total number of publish actions scheduled.
    pub publish_count: usize,
    /// Number of disconnect/reconnect pairs scheduled.
    pub move_count: usize,
    /// How many of the scheduled moves are proclaimed (§4.1) — the model's
    /// own decision plus the scenario's `proclaimed_fraction` override.
    pub proclaimed_count: usize,
    /// How many proclaimed moves announce a *wrong* destination (the
    /// scenario's `misproclaim_fraction` prediction error).
    pub misproclaimed_count: usize,
}

impl Workload {
    /// Generate the workload for a scenario. Mobility timelines come from
    /// the scenario's pluggable [`MobilityModel`](mhh_mobility::MobilityModel).
    /// Builds the scenario's network itself; the runner uses
    /// [`generate_on`](Self::generate_on) to share the one built per run.
    pub fn generate(config: &ScenarioConfig) -> Workload {
        Self::generate_on(config, &config.build_network())
    }

    /// [`generate`](Self::generate) over an already-built network (must be
    /// the scenario's own — same topology, same seed).
    pub fn generate_on(config: &ScenarioConfig, network: &Arc<Network>) -> Workload {
        let mut rng = DetRng::new(config.seed);
        if config.is_storm() {
            return generate_storm(config, network, &mut rng);
        }
        let clients = make_clients(config, &mut rng);
        let model = config.mobility.build();
        let world = MobilityWorld {
            topology: network.clone(),
            conn_mean_s: config.conn_mean_s,
            disc_mean_s: config.disc_mean_s,
            horizon_s: config.duration_s,
            scenario_seed: config.seed,
        };
        let broker_count = network.broker_count();
        let mut timeline = Vec::new();
        let mut publish_count = 0usize;
        let mut move_count = 0usize;
        let mut proclaimed_count = 0usize;
        let mut misproclaimed_count = 0usize;
        let horizon = config.duration_s;
        let proclaimed_fraction = config.proclaimed_fraction.clamp(0.0, 1.0);
        let misproclaim_fraction = config.misproclaim_fraction.clamp(0.0, 1.0);

        let mut event_id = 1u64;
        for (i, spec) in clients.iter().enumerate() {
            let client = ClientId(i as u32);
            let mut crng = rng.fork(i as u64 + 1);

            // Payload sizes draw from their own stream, forked only when
            // modeling is on: zero-payload runs never touch it, keeping
            // their rng stream — and therefore every golden — unchanged.
            let mut payload_rng = (config.payload_bytes_mean > 0).then(|| crng.fork(0x5041_594c));

            // Publication schedule: one event every `publish_interval_s`,
            // with a per-client phase so publications spread uniformly.
            let phase = crng.range_f64(0.0, config.publish_interval_s);
            let mut t = phase;
            let mut seq = 0u64;
            while t < horizon {
                let value = crng.next_f64();
                let mut event = make_event(event_id, client, seq, value);
                if let Some(prng) = payload_rng.as_mut() {
                    event = event.with_payload(sample_payload(prng, config.payload_bytes_mean));
                }
                event_id += 1;
                seq += 1;
                timeline.push(TimelineEntry {
                    at: SimTime::ZERO + SimDuration::from_secs_f64(t),
                    client,
                    action: ClientAction::Publish(event),
                });
                publish_count += 1;
                t += config.publish_interval_s;
            }

            // Mobility schedule: the model turns (world, client, home, seed)
            // into a deterministic move trace; each step becomes a
            // disconnect/reconnect pair on the timeline. Synthetic models
            // move the sampled mobile fraction; trace playback drives
            // exactly the clients its records mention; a mixture answers
            // per client via its assigned component.
            if model.drives_client(&world, client.0, spec.mobile) {
                let trace = model.trace(&world, client.0, spec.home.0, crng.next_u64());
                // The proclamation override draws from a stream forked *after*
                // the trace seed, so enabling it never perturbs the move
                // schedule itself — proclaimed and reactive runs of the same
                // scenario seed are paired move for move.
                let mut prng = crng.fork(0x5052_4f43);
                // Mis-proclamations draw from their own stream, forked after
                // the proclamation stream, so turning the knob perturbs
                // neither the move schedule nor the proclamation decisions.
                let mut mrng = crng.fork(0x4d49_5350);
                for MoveStep {
                    depart_s,
                    arrive_s,
                    from,
                    to,
                    proclaimed,
                } in trace.steps
                {
                    let proclaimed = proclaimed
                        || (proclaimed_fraction > 0.0 && prng.chance(proclaimed_fraction));
                    // The announced destination: normally the true one; a
                    // mis-proclaimed move announces a wrong broker (≠ the
                    // real destination, ≠ the departure broker) while the
                    // client still reconnects at the true destination.
                    let mut announced = to;
                    if proclaimed {
                        proclaimed_count += 1;
                        if misproclaim_fraction > 0.0
                            && broker_count >= 3
                            && mrng.chance(misproclaim_fraction)
                        {
                            announced = wrong_destination(&mut mrng, from, to, broker_count);
                            misproclaimed_count += 1;
                        }
                    }
                    timeline.push(TimelineEntry {
                        at: SimTime::ZERO + SimDuration::from_secs_f64(depart_s),
                        client,
                        action: ClientAction::Disconnect {
                            proclaimed_dest: proclaimed.then_some(BrokerId(announced)),
                        },
                    });
                    timeline.push(TimelineEntry {
                        at: SimTime::ZERO + SimDuration::from_secs_f64(arrive_s),
                        client,
                        action: ClientAction::Reconnect {
                            broker: BrokerId(to),
                        },
                    });
                    move_count += 1;
                }
                // A trailing departure with no in-horizon return: the client
                // ends the run disconnected (paper steady state), leaving
                // its stored events pending. A parked departure has no
                // destination, so it is always silent.
                if let Some(depart_s) = trace.park_depart_s {
                    timeline.push(TimelineEntry {
                        at: SimTime::ZERO + SimDuration::from_secs_f64(depart_s),
                        client,
                        action: ClientAction::Disconnect {
                            proclaimed_dest: None,
                        },
                    });
                }
            }
        }

        Workload {
            clients,
            timeline,
            publish_count,
            move_count,
            proclaimed_count,
            misproclaimed_count,
        }
    }
}

/// Generate an MQTT-shaped storm workload: a static population of
/// `storm_publishers` pure publishers and `storm_subscribers` pure
/// subscribers, no mobility. Publishers carry a never-matching filter (they
/// subscribe to nothing); every subscriber's filter matches every published
/// event, so full fan-out reconciles exactly: each event is delivered once
/// per attached subscriber. Subscribers are placed in contiguous id blocks
/// per broker so shared-subscription groups (consecutive ids) land on the
/// same home broker. A `late_subscriber_fraction` tail of the subscribers
/// starts detached and joins midway through the run — the late-joiner shape
/// retained-replay exercises.
fn generate_storm(config: &ScenarioConfig, network: &Arc<Network>, rng: &mut DetRng) -> Workload {
    let brokers = network.broker_count();
    let pubs = config.storm_publishers as usize;
    let subs = config.storm_subscribers as usize;
    let late = (subs as f64 * config.late_subscriber_fraction.clamp(0.0, 1.0)).round() as usize;
    let horizon = config.duration_s;

    let mut clients = Vec::with_capacity(pubs + subs);
    for i in 0..pubs {
        clients.push(ClientSpec {
            // `v` is drawn from [0, 1), so this never matches: publishers
            // receive nothing and the audit expects nothing for them.
            filter: Filter::single("v", Op::Lt, -1.0),
            home: BrokerId((i % brokers) as u32),
            mobile: false,
            initially_attached: true,
        });
    }
    for j in 0..subs {
        clients.push(ClientSpec {
            filter: Filter::single("v", Op::Ge, 0.0),
            home: BrokerId((j * brokers / subs) as u32),
            mobile: false,
            initially_attached: j < subs - late,
        });
    }

    let mut timeline = Vec::new();
    let mut publish_count = 0usize;
    let mut event_id = 1u64;
    for i in 0..pubs {
        let client = ClientId(i as u32);
        let mut crng = rng.fork(i as u64 + 1);
        let mut payload_rng = (config.payload_bytes_mean > 0).then(|| crng.fork(0x5041_594c));
        let phase = crng.range_f64(0.0, config.publish_interval_s);
        let mut t = phase;
        let mut seq = 0u64;
        while t < horizon {
            let value = crng.next_f64();
            let mut event = make_event(event_id, client, seq, value);
            if let Some(prng) = payload_rng.as_mut() {
                event = event.with_payload(sample_payload(prng, config.payload_bytes_mean));
            }
            event_id += 1;
            seq += 1;
            timeline.push(TimelineEntry {
                at: SimTime::ZERO + SimDuration::from_secs_f64(t),
                client,
                action: ClientAction::Publish(event),
            });
            publish_count += 1;
            t += config.publish_interval_s;
        }
    }

    // Late joiners connect (for the first time) at a seeded instant in the
    // middle half of the run; the broker replays retained matches to them.
    let mut jrng = rng.fork(0x4c41_5445);
    for j in (subs - late)..subs {
        let client = ClientId((pubs + j) as u32);
        let at = jrng.range_f64(0.25 * horizon, 0.75 * horizon);
        timeline.push(TimelineEntry {
            at: SimTime::ZERO + SimDuration::from_secs_f64(at),
            client,
            action: ClientAction::Reconnect {
                broker: clients[pubs + j].home,
            },
        });
    }

    Workload {
        clients,
        timeline,
        publish_count,
        move_count: 0,
        proclaimed_count: 0,
        misproclaimed_count: 0,
    }
}

/// Seeded payload size: uniform over `[mean/2, 3·mean/2]`.
fn sample_payload(rng: &mut DetRng, mean: u32) -> u32 {
    let half = mean / 2;
    half + rng.range_u64(0, mean as u64) as u32
}

/// Pick a uniformly random broker that is neither the departure broker nor
/// the true destination (requires `count >= 3`).
fn wrong_destination(rng: &mut DetRng, from: u32, to: u32, count: usize) -> u32 {
    debug_assert!(count >= 3 && from != to);
    let (lo, hi) = (from.min(to), from.max(to));
    let mut pick = rng.index(count - 2) as u32;
    if pick >= lo {
        pick += 1;
    }
    if pick >= hi {
        pick += 1;
    }
    pick
}

/// Build the client population: `clients_per_broker` clients at every broker,
/// a random 20 % of them mobile, each with a distinct range subscription of
/// width `selectivity` over the uniform `v` attribute (so each event matches
/// the required fraction of clients in expectation, while filters stay
/// distinct enough that covering rarely collapses them).
fn make_clients(config: &ScenarioConfig, rng: &mut DetRng) -> Vec<ClientSpec> {
    let brokers = config.broker_count();
    let total = config.client_count();
    let mobile_set: std::collections::BTreeSet<usize> = rng
        .choose_indices(total, config.mobile_count())
        .into_iter()
        .collect();
    (0..total)
        .map(|i| {
            let home = BrokerId((i % brokers) as u32);
            let lo = rng.range_f64(0.0, 1.0 - config.selectivity);
            let filter =
                Filter::new(vec![])
                    .and("v", Op::Ge, lo)
                    .and("v", Op::Lt, lo + config.selectivity);
            ClientSpec {
                filter,
                home,
                mobile: mobile_set.contains(&i),
                initially_attached: true,
            }
        })
        .collect()
}

/// Build one workload event.
fn make_event(id: u64, publisher: ClientId, seq: u64, value: f64) -> Event {
    EventBuilder::new()
        .attr("v", value)
        .attr("source", publisher.0 as i64)
        .build(id, publisher, seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScenarioConfig {
        ScenarioConfig {
            grid_side: 4,
            clients_per_broker: 3,
            duration_s: 900.0,
            conn_mean_s: 120.0,
            disc_mean_s: 120.0,
            publish_interval_s: 60.0,
            ..ScenarioConfig::paper_defaults()
        }
    }

    #[test]
    fn population_matches_config() {
        let w = Workload::generate(&small());
        let cfg = small();
        assert_eq!(w.clients.len(), cfg.client_count());
        let mobile = w.clients.iter().filter(|c| c.mobile).count();
        assert_eq!(mobile, cfg.mobile_count());
        // Every broker hosts the configured number of clients.
        for b in 0..cfg.broker_count() {
            let at_b = w
                .clients
                .iter()
                .filter(|c| c.home == BrokerId(b as u32))
                .count();
            assert_eq!(at_b, cfg.clients_per_broker);
        }
    }

    #[test]
    fn selectivity_is_close_to_target() {
        let cfg = ScenarioConfig {
            grid_side: 5,
            clients_per_broker: 8,
            ..small()
        };
        let w = Workload::generate(&cfg);
        // Sample events from the timeline and count how many client filters
        // each matches.
        let events: Vec<&Event> = w
            .timeline
            .iter()
            .filter_map(|e| match &e.action {
                ClientAction::Publish(ev) => Some(ev),
                _ => None,
            })
            .take(400)
            .collect();
        assert!(!events.is_empty());
        let mut total_matches = 0usize;
        for ev in &events {
            total_matches += w.clients.iter().filter(|c| c.filter.matches(ev)).count();
        }
        let observed = total_matches as f64 / (events.len() * w.clients.len()) as f64;
        assert!(
            (observed - cfg.selectivity).abs() < 0.02,
            "observed selectivity {observed} too far from {}",
            cfg.selectivity
        );
    }

    #[test]
    fn timeline_is_deterministic_and_within_horizon() {
        let a = Workload::generate(&small());
        let b = Workload::generate(&small());
        assert_eq!(a.timeline.len(), b.timeline.len());
        assert_eq!(a.publish_count, b.publish_count);
        assert_eq!(a.move_count, b.move_count);
        let horizon = SimTime::ZERO + SimDuration::from_secs_f64(small().duration_s);
        assert!(a.timeline.iter().all(|e| e.at <= horizon));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Workload::generate(&small());
        let b = Workload::generate(&ScenarioConfig {
            seed: 999,
            ..small()
        });
        assert_ne!(a.move_count, 0);
        // Move times differ between seeds (the filters almost surely too).
        let a_moves: Vec<_> = a
            .timeline
            .iter()
            .filter(|e| matches!(e.action, ClientAction::Reconnect { .. }))
            .map(|e| e.at)
            .collect();
        let b_moves: Vec<_> = b
            .timeline
            .iter()
            .filter(|e| matches!(e.action, ClientAction::Reconnect { .. }))
            .map(|e| e.at)
            .collect();
        assert_ne!(a_moves, b_moves);
    }

    #[test]
    fn proclaimed_fraction_flags_moves_without_perturbing_the_schedule() {
        let reactive = Workload::generate(&small());
        let proclaimed = Workload::generate(&ScenarioConfig {
            proclaimed_fraction: 1.0,
            ..small()
        });
        // Identical move schedule (paired comparison), different flags.
        assert_eq!(reactive.move_count, proclaimed.move_count);
        assert_eq!(reactive.timeline.len(), proclaimed.timeline.len());
        assert_eq!(reactive.proclaimed_count, 0, "uniform-random stays silent");
        assert_eq!(proclaimed.proclaimed_count, proclaimed.move_count);
        for (r, p) in reactive.timeline.iter().zip(&proclaimed.timeline) {
            assert_eq!(r.at, p.at);
            assert_eq!(r.client, p.client);
        }
        // Every proclaimed destination matches the broker actually
        // reconnected to next.
        let mut dests: std::collections::BTreeMap<ClientId, Vec<BrokerId>> = Default::default();
        let mut reconnects: std::collections::BTreeMap<ClientId, Vec<BrokerId>> =
            Default::default();
        let mut sorted = proclaimed.timeline.clone();
        sorted.sort_by_key(|e| e.at);
        for e in &sorted {
            match e.action {
                ClientAction::Disconnect {
                    proclaimed_dest: Some(d),
                } => dests.entry(e.client).or_default().push(d),
                ClientAction::Reconnect { broker } => {
                    reconnects.entry(e.client).or_default().push(broker)
                }
                _ => {}
            }
        }
        for (client, ds) in &dests {
            assert_eq!(
                ds, &reconnects[client],
                "client {client} proclaims truthfully"
            );
        }
    }

    #[test]
    fn misproclaim_lies_about_destinations_without_perturbing_the_schedule() {
        let truthful = Workload::generate(&ScenarioConfig {
            proclaimed_fraction: 1.0,
            ..small()
        });
        let lying = Workload::generate(&ScenarioConfig {
            proclaimed_fraction: 1.0,
            misproclaim_fraction: 1.0,
            ..small()
        });
        // Identical schedule and proclamation decisions; only announcements
        // change.
        assert_eq!(truthful.move_count, lying.move_count);
        assert_eq!(truthful.proclaimed_count, lying.proclaimed_count);
        assert_eq!(truthful.misproclaimed_count, 0);
        assert_eq!(lying.misproclaimed_count, lying.proclaimed_count);
        for (t, l) in truthful.timeline.iter().zip(&lying.timeline) {
            assert_eq!(t.at, l.at);
            assert_eq!(t.client, l.client);
            match (&t.action, &l.action) {
                (
                    ClientAction::Disconnect {
                        proclaimed_dest: Some(truth),
                    },
                    ClientAction::Disconnect {
                        proclaimed_dest: Some(lie),
                    },
                ) => assert_ne!(truth, lie, "every announcement must be wrong"),
                (ClientAction::Reconnect { broker: a }, ClientAction::Reconnect { broker: b }) => {
                    assert_eq!(a, b, "the physical move is unchanged")
                }
                (a, b) => assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "action kinds must line up"
                ),
            }
        }
        // A wrong announcement is still a valid broker and never the broker
        // being departed (sorted per client, positions chain).
        let cfg = small();
        for e in &lying.timeline {
            if let ClientAction::Disconnect {
                proclaimed_dest: Some(d),
            } = e.action
            {
                assert!((d.0 as usize) < cfg.broker_count());
            }
        }
    }

    #[test]
    fn predictable_models_proclaim_on_their_own() {
        let cfg = ScenarioConfig {
            mobility: mhh_mobility::ModelKind::ManhattanGrid,
            ..small()
        };
        let w = Workload::generate(&cfg);
        assert!(w.move_count > 0);
        assert_eq!(
            w.proclaimed_count, w.move_count,
            "street-grid moves are predictable and proclaim without any override"
        );
    }

    #[test]
    fn mobile_clients_alternate_disconnect_reconnect() {
        let w = Workload::generate(&small());
        for (i, spec) in w.clients.iter().enumerate() {
            let client = ClientId(i as u32);
            let mut actions: Vec<(&TimelineEntry, u8)> = w
                .timeline
                .iter()
                .filter(|e| e.client == client)
                .filter_map(|e| match e.action {
                    ClientAction::Disconnect { .. } => Some((e, 0u8)),
                    ClientAction::Reconnect { .. } => Some((e, 1u8)),
                    _ => None,
                })
                .collect();
            actions.sort_by_key(|(e, _)| e.at);
            if !spec.mobile {
                assert!(actions.is_empty());
                continue;
            }
            // Strict alternation starting with a disconnect.
            for (idx, (_, kind)) in actions.iter().enumerate() {
                assert_eq!(*kind as usize, idx % 2, "client {i} action order broken");
            }
        }
    }
}
