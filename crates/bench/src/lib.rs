//! # mhh-bench — shared configuration for the benchmark harness
//!
//! One Criterion bench target exists per panel of the paper's evaluation
//! figures (5a, 5b, 6a, 6b) plus micro-benchmarks of the substrates. The
//! figure benches run *scaled-down* scenarios (smaller grid, fewer clients,
//! shorter simulated time) so a Criterion run finishes in minutes; the
//! full-size sweeps are produced by `cargo run --release --example
//! reproduce_figures`, which uses `ScenarioConfig::paper_defaults()`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mhh_mobsim::ScenarioConfig;

pub mod engine_micro;

/// The scaled-down base scenario used by the figure benches.
pub fn bench_base() -> ScenarioConfig {
    ScenarioConfig {
        grid_side: 5,
        clients_per_broker: 4,
        mobile_fraction: 0.25,
        conn_mean_s: 30.0,
        disc_mean_s: 60.0,
        publish_interval_s: 10.0,
        duration_s: 300.0,
        seed: 2007,
        ..ScenarioConfig::paper_defaults()
    }
}

/// Connection-period values swept by the Figure 5 benches (seconds).
pub const BENCH_FIG5_CONN_S: [f64; 3] = [1.0, 30.0, 300.0];

/// Grid side lengths swept by the Figure 6 benches.
pub const BENCH_FIG6_SIDES: [usize; 3] = [4, 6, 8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_base_is_small_enough_to_iterate() {
        let b = bench_base();
        assert!(b.broker_count() <= 36);
        assert!(b.client_count() <= 200);
    }
}
