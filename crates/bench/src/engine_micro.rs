//! Shared micro-workloads for measuring raw engine throughput — the same
//! scenarios runnable on both the overhauled [`Engine`] and the
//! pre-overhaul [`ReferenceEngine`] baseline, so `micro_engine` and the
//! `BENCH_engine.json` trajectory always report a *measured* old-vs-new
//! speedup on the current machine instead of a stale number.
//!
//! Two workloads:
//!
//! * **ring** — a token circling `n` nodes: minimal queue depth, one
//!   in-flight message, isolates the per-delivery fixed cost (outbox
//!   allocation, stats record, clock lookup, heap push/pop).
//! * **burst** — a dispatcher fans `fanout` work items out to every worker
//!   each round and collects acks: queue depth in the hundreds, many
//!   distinct links, several message kinds — the regime where heap sift
//!   cost and clock-table layout dominate.
//!
//! Every function returns the engine's delivery count so callers can turn a
//! wall-clock measurement into deliveries/sec.

use std::sync::Arc;

use mhh_simnet::{
    Context, Engine, Envelope, Message, Node, NodeId, ReferenceEngine, SimDuration, SimTime,
    TrafficClass, UniformFabric,
};

/// Micro-workload message. The payload pads the envelope to a realistic
/// protocol-message size so heap moves on the old path are honestly priced.
#[derive(Debug, Clone)]
pub enum MicroMsg {
    /// Ring token (hop counter plus padding).
    Token(u64, [u64; 4]),
    /// Dispatcher round-start timer.
    Tick(u32),
    /// One fanned-out work item.
    Work(u32, [u64; 4]),
    /// Worker acknowledgement.
    Ack(u32),
}

impl Message for MicroMsg {
    fn traffic_class(&self) -> TrafficClass {
        match self {
            MicroMsg::Token(..) => TrafficClass::EventRouting,
            MicroMsg::Tick(_) => TrafficClass::Timer,
            MicroMsg::Work(..) => TrafficClass::EventRouting,
            MicroMsg::Ack(_) => TrafficClass::ClientControl,
        }
    }
    fn kind(&self) -> &'static str {
        match self {
            MicroMsg::Token(..) => "token",
            MicroMsg::Tick(_) => "tick",
            MicroMsg::Work(..) => "work",
            MicroMsg::Ack(_) => "ack",
        }
    }
}

/// Ring node: forward the token to the next node until it has travelled
/// `remaining` hops.
pub struct Ring {
    next: NodeId,
    remaining: u64,
}

impl Node<MicroMsg> for Ring {
    fn on_message(&mut self, env: Envelope<MicroMsg>, ctx: &mut Context<MicroMsg>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            if let MicroMsg::Token(c, pad) = env.msg {
                ctx.send(self.next, MicroMsg::Token(c + 1, pad));
            }
        }
    }
}

fn ring_nodes(n: u32, messages: u64) -> Vec<Ring> {
    (0..n)
        .map(|i| Ring {
            next: NodeId((i + 1) % n),
            remaining: messages / n as u64,
        })
        .collect()
}

/// Dispatcher/worker nodes for the burst workload.
pub enum BurstNode {
    /// Node 0: starts `rounds` rounds, fanning `fanout` work items per round.
    Dispatcher {
        /// Worker count (nodes 1..=workers).
        workers: u32,
        /// Rounds left to dispatch.
        rounds: u32,
        /// Work items per round.
        fanout: u32,
        /// Rotating offset so links vary across rounds.
        cursor: u32,
    },
    /// Nodes 1..: acknowledge every work item.
    Worker,
}

impl Node<MicroMsg> for BurstNode {
    fn on_message(&mut self, env: Envelope<MicroMsg>, ctx: &mut Context<MicroMsg>) {
        match self {
            BurstNode::Dispatcher {
                workers,
                rounds,
                fanout,
                cursor,
            } => {
                if let MicroMsg::Tick(round) = env.msg {
                    for k in 0..*fanout {
                        let to = 1 + (*cursor + k) % *workers;
                        ctx.send(NodeId(to), MicroMsg::Work(round, [k as u64; 4]));
                    }
                    *cursor = (*cursor + 7) % *workers;
                    if round + 1 < *rounds {
                        ctx.schedule(SimDuration::from_millis(2), MicroMsg::Tick(round + 1));
                    }
                }
            }
            BurstNode::Worker => {
                if let MicroMsg::Work(round, _) = env.msg {
                    ctx.send(NodeId(0), MicroMsg::Ack(round));
                }
            }
        }
    }
}

fn burst_nodes(workers: u32, rounds: u32, fanout: u32) -> Vec<BurstNode> {
    let mut nodes = vec![BurstNode::Dispatcher {
        workers,
        rounds,
        fanout,
        cursor: 0,
    }];
    nodes.extend((0..workers).map(|_| BurstNode::Worker));
    nodes
}

fn fabric() -> Arc<UniformFabric> {
    Arc::new(UniformFabric::new(SimDuration::from_millis(1)))
}

/// Run the ring workload on the overhauled engine; returns deliveries.
pub fn ring_new(n: u32, messages: u64) -> u64 {
    let mut eng = Engine::new(ring_nodes(n, messages), fabric());
    eng.schedule_external(SimTime::ZERO, NodeId(0), MicroMsg::Token(0, [0; 4]));
    eng.run_to_completion();
    eng.deliveries()
}

/// Run the ring workload on the pre-overhaul reference engine.
pub fn ring_reference(n: u32, messages: u64) -> u64 {
    let mut eng = ReferenceEngine::new(ring_nodes(n, messages), fabric());
    eng.schedule_external(SimTime::ZERO, NodeId(0), MicroMsg::Token(0, [0; 4]));
    eng.run_to_completion();
    eng.deliveries()
}

/// Run the burst workload on the overhauled engine; returns deliveries.
pub fn burst_new(workers: u32, rounds: u32, fanout: u32) -> u64 {
    let mut eng = Engine::new(burst_nodes(workers, rounds, fanout), fabric());
    eng.schedule_external(SimTime::ZERO, NodeId(0), MicroMsg::Tick(0));
    eng.run_to_completion();
    eng.deliveries()
}

/// Run the burst workload on the pre-overhaul reference engine.
pub fn burst_reference(workers: u32, rounds: u32, fanout: u32) -> u64 {
    let mut eng = ReferenceEngine::new(burst_nodes(workers, rounds, fanout), fabric());
    eng.schedule_external(SimTime::ZERO, NodeId(0), MicroMsg::Tick(0));
    eng.run_to_completion();
    eng.deliveries()
}

/// Time `f` (which returns a delivery count): best of `tries` after one
/// warm-up, as `(deliveries, best_wall_seconds)`.
pub fn measure(tries: u32, mut f: impl FnMut() -> u64) -> (u64, f64) {
    let deliveries = f(); // warm-up, also pins the expected count
    let mut best = f64::INFINITY;
    for _ in 0..tries.max(1) {
        let t = std::time::Instant::now();
        let d = f();
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(d, deliveries, "micro workloads are deterministic");
        best = best.min(dt);
    }
    (deliveries, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_engines_deliver_the_same_counts() {
        assert_eq!(ring_new(16, 10_000), ring_reference(16, 10_000));
        assert_eq!(burst_new(32, 20, 64), burst_reference(32, 20, 64));
        // Sanity on magnitudes: the burst run is rounds × fanout × 2 (work +
        // ack) + the dispatcher's tick deliveries.
        let d = burst_new(32, 20, 64);
        assert_eq!(d, 20 * 64 * 2 + 20);
    }

    #[test]
    fn measure_reports_consistent_deliveries() {
        let (d, secs) = measure(2, || ring_new(8, 2_000));
        assert!(d >= 2_000);
        assert!(secs > 0.0);
    }
}
