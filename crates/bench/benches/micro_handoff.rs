//! Micro-benchmark of a single handoff on an otherwise idle network, for all
//! three protocols (the ablation referenced in DESIGN.md).

use criterion::{criterion_group, criterion_main, Criterion};
use mhh_bench::bench_base;
use mhh_mobsim::{run_scenario, Protocol, ScenarioConfig};

fn micro_handoff(c: &mut Criterion) {
    // One mobile client, very low event rate: the run cost is dominated by
    // the handoff machinery itself.
    let base = ScenarioConfig {
        grid_side: 6,
        clients_per_broker: 1,
        mobile_fraction: 0.1,
        conn_mean_s: 20.0,
        disc_mean_s: 20.0,
        publish_interval_s: 30.0,
        duration_s: 200.0,
        ..bench_base()
    };
    let mut group = c.benchmark_group("single_handoff");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for proto in Protocol::ALL {
        group.bench_function(proto.label(), |b| {
            b.iter(|| std::hint::black_box(run_scenario(&base, proto).mobility_hops))
        });
    }
    group.finish();
}

criterion_group!(benches, micro_handoff);
criterion_main!(benches);
