//! Figure 5(a): message overhead per handoff vs. average connection-period
//! length, for MHH, sub-unsub and home-broker (scaled-down scenario).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mhh_bench::{bench_base, BENCH_FIG5_CONN_S};
use mhh_mobsim::{ProtocolRegistry, ScenarioConfig, Sim};

fn fig5_overhead(c: &mut Criterion) {
    let registry = ProtocolRegistry::global();
    let mut group = c.benchmark_group("fig5a_overhead_per_handoff");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &conn in &BENCH_FIG5_CONN_S {
        for spec in registry.specs() {
            let config = ScenarioConfig {
                conn_mean_s: conn,
                ..bench_base()
            };
            group.bench_with_input(BenchmarkId::new(spec.label(), conn), &config, |b, cfg| {
                b.iter(|| {
                    let r = Sim::config(cfg.clone())
                        .protocol(spec.name())
                        .run()
                        .expect("registry protocol resolves");
                    std::hint::black_box(r.overhead_per_handoff)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig5_overhead);
criterion_main!(benches);
