//! Figure 6(a): message overhead per handoff vs. network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mhh_bench::{bench_base, BENCH_FIG6_SIDES};
use mhh_mobsim::{ProtocolRegistry, ScenarioConfig, Sim};

fn fig6_overhead(c: &mut Criterion) {
    let registry = ProtocolRegistry::global();
    let mut group = c.benchmark_group("fig6a_overhead_vs_network_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &side in &BENCH_FIG6_SIDES {
        for spec in registry.specs() {
            let config = ScenarioConfig {
                grid_side: side,
                ..bench_base()
            };
            group.bench_with_input(
                BenchmarkId::new(spec.label(), side * side),
                &config,
                |b, cfg| {
                    b.iter(|| {
                        let r = Sim::config(cfg.clone())
                            .protocol(spec.name())
                            .run()
                            .expect("registry protocol resolves");
                        std::hint::black_box(r.overhead_per_handoff)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig6_overhead);
criterion_main!(benches);
