//! Figure 6(b): average handoff delay vs. network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mhh_bench::{bench_base, BENCH_FIG6_SIDES};
use mhh_mobsim::{run_scenario, Protocol, ScenarioConfig};

fn fig6_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6b_delay_vs_network_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &side in &BENCH_FIG6_SIDES {
        for proto in Protocol::ALL {
            let config = ScenarioConfig {
                grid_side: side,
                ..bench_base()
            };
            group.bench_with_input(
                BenchmarkId::new(proto.label(), side * side),
                &config,
                |b, cfg| {
                    b.iter(|| {
                        let r = run_scenario(cfg, proto);
                        std::hint::black_box(r.avg_handoff_delay_ms)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig6_delay);
criterion_main!(benches);
