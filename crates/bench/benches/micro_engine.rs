//! Micro-benchmarks of the raw discrete-event engine throughput and of the
//! fabric dispatch cost: the old two-virtual-call `latency()` + `hops()`
//! pair against the unified single-call `link()` fast path the engine now
//! uses.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use mhh_simnet::{
    Context, Engine, Envelope, Fabric, GridFabric, Message, Network, Node, NodeId, SimDuration,
    SimTime, TrafficClass, UniformFabric,
};

#[derive(Debug, Clone)]
struct Token(u64);

impl Message for Token {
    fn traffic_class(&self) -> TrafficClass {
        TrafficClass::EventRouting
    }
    fn kind(&self) -> &'static str {
        "token"
    }
}

struct Ring {
    next: NodeId,
    remaining: u64,
}

impl Node<Token> for Ring {
    fn on_message(&mut self, env: Envelope<Token>, ctx: &mut Context<Token>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(self.next, Token(env.msg.0 + 1));
        }
    }
}

fn micro_engine(c: &mut Criterion) {
    c.bench_function("engine_ring_100k_messages", |b| {
        b.iter(|| {
            let n = 16u32;
            let nodes: Vec<Ring> = (0..n)
                .map(|i| Ring {
                    next: NodeId((i + 1) % n),
                    remaining: 100_000 / n as u64,
                })
                .collect();
            let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(1)));
            let mut eng = Engine::new(nodes, fabric);
            eng.schedule_external(SimTime::ZERO, NodeId(0), Token(0));
            eng.run_to_completion();
            std::hint::black_box(eng.deliveries())
        })
    });
}

/// Old vs new fabric dispatch on the engine's hot path, both through
/// `Arc<dyn Fabric>` as the engine holds it: `latency()` + `hops()` was two
/// virtual calls per message; `link()` answers both in one.
fn micro_fabric_dispatch(c: &mut Criterion) {
    let fabric: Arc<dyn Fabric> =
        Arc::new(GridFabric::paper_defaults(Arc::new(Network::grid(10, 7))));
    let pairs: Vec<(NodeId, NodeId)> = (0..100u32)
        .map(|i| (NodeId(i), NodeId((i * 37 + 11) % 100)))
        .collect();

    let mut group = c.benchmark_group("fabric_dispatch");
    group.bench_function("two_call_latency_plus_hops", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(from, to) in &pairs {
                acc += fabric.latency(from, to).as_micros() + fabric.hops(from, to) as u64;
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("single_call_link", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(from, to) in &pairs {
                let cost = fabric.link(from, to, SimTime::ZERO, 0);
                acc += cost.latency.as_micros() + cost.hops as u64;
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, micro_engine, micro_fabric_dispatch);
criterion_main!(benches);
