//! Micro-benchmark of the raw discrete-event engine throughput.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use mhh_simnet::{
    Context, Engine, Envelope, Message, Node, NodeId, SimDuration, SimTime, TrafficClass,
    UniformFabric,
};

#[derive(Debug, Clone)]
struct Token(u64);

impl Message for Token {
    fn traffic_class(&self) -> TrafficClass {
        TrafficClass::EventRouting
    }
    fn kind(&self) -> &'static str {
        "token"
    }
}

struct Ring {
    next: NodeId,
    remaining: u64,
}

impl Node<Token> for Ring {
    fn on_message(&mut self, env: Envelope<Token>, ctx: &mut Context<Token>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(self.next, Token(env.msg.0 + 1));
        }
    }
}

fn micro_engine(c: &mut Criterion) {
    c.bench_function("engine_ring_100k_messages", |b| {
        b.iter(|| {
            let n = 16u32;
            let nodes: Vec<Ring> = (0..n)
                .map(|i| Ring {
                    next: NodeId((i + 1) % n),
                    remaining: 100_000 / n as u64,
                })
                .collect();
            let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(1)));
            let mut eng = Engine::new(nodes, fabric);
            eng.schedule_external(SimTime::ZERO, NodeId(0), Token(0));
            eng.run_to_completion();
            std::hint::black_box(eng.deliveries())
        })
    });
}

criterion_group!(benches, micro_engine);
criterion_main!(benches);
