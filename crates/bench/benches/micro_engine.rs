//! Micro-benchmarks of raw discrete-event engine throughput — the
//! overhauled hot path (pooled 4-ary event list, dense/sharded link clocks,
//! scratch outbox, interned stats) against the pre-overhaul
//! `ReferenceEngine` baseline (`BinaryHeap` + `HashMap` + per-delivery
//! allocation + `String`-keyed stats) on identical workloads — plus the
//! fabric dispatch comparison: the old two-virtual-call `latency()` +
//! `hops()` pair against the unified single-call `link()` fast path.
//!
//! The same ring/burst workloads also anchor the `engine_micro` section of
//! `BENCH_engine.json` (emitted by the `sweep_runner` bench), where the
//! ≥20 % deliveries/sec acceptance bar is recorded. CI runs this bench in
//! fast test mode via `MHH_BENCH_FAST=1`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use mhh_bench::engine_micro::{burst_new, burst_reference, ring_new, ring_reference};
use mhh_simnet::{Fabric, GridFabric, Network, NodeId, SimTime};

fn micro_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_ring_100k_messages");
    group.bench_function("overhauled", |b| {
        b.iter(|| std::hint::black_box(ring_new(16, 100_000)))
    });
    group.bench_function("reference_binaryheap", |b| {
        b.iter(|| std::hint::black_box(ring_reference(16, 100_000)))
    });
    group.finish();

    let mut group = c.benchmark_group("engine_burst_dispatch");
    group.bench_function("overhauled", |b| {
        b.iter(|| std::hint::black_box(burst_new(64, 400, 128)))
    });
    group.bench_function("reference_binaryheap", |b| {
        b.iter(|| std::hint::black_box(burst_reference(64, 400, 128)))
    });
    group.finish();
}

/// Old vs new fabric dispatch on the engine's hot path, both through
/// `Arc<dyn Fabric>` as the engine holds it: `latency()` + `hops()` was two
/// virtual calls per message; `link()` answers both in one.
fn micro_fabric_dispatch(c: &mut Criterion) {
    let fabric: Arc<dyn Fabric> =
        Arc::new(GridFabric::paper_defaults(Arc::new(Network::grid(10, 7))));
    let pairs: Vec<(NodeId, NodeId)> = (0..100u32)
        .map(|i| (NodeId(i), NodeId((i * 37 + 11) % 100)))
        .collect();

    let mut group = c.benchmark_group("fabric_dispatch");
    group.bench_function("two_call_latency_plus_hops", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(from, to) in &pairs {
                acc += fabric.latency(from, to).as_micros() + fabric.hops(from, to) as u64;
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("single_call_link", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(from, to) in &pairs {
                let cost = fabric.link(from, to, SimTime::ZERO, 0);
                acc += cost.latency.as_micros() + cost.hops as u64;
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, micro_engine, micro_fabric_dispatch);
criterion_main!(benches);
