//! Micro-benchmarks of topology construction and routing-table building.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mhh_simnet::Network;

fn micro_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_build");
    for &side in &[5usize, 10, 14] {
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &side, |b, &s| {
            b.iter(|| std::hint::black_box(Network::grid(s, 42)))
        });
    }
    group.finish();

    let net = Network::grid(14, 42);
    c.bench_function("tree_path_queries_196", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for a in 0..net.broker_count() {
                total += net.tree_path(a, (a * 37) % net.broker_count()).len();
            }
            std::hint::black_box(total)
        })
    });
}

criterion_group!(benches, micro_routing);
criterion_main!(benches);
