//! Benchmark of the parallel sweep runner: wall-clock per scenario point and
//! serial vs. parallel speedup for a Figure-5-style sweep.
//!
//! Besides the usual printed timings, this bench emits a machine-readable
//! `BENCH_mobility.json` (path overridable via `BENCH_MOBILITY_OUT`) so the
//! performance trajectory can be tracked across PRs.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mhh_bench::{bench_base, BENCH_FIG5_CONN_S};
use mhh_mobility::sweep::available_workers;
use mhh_mobsim::experiments::figure5_with_workers;
use mhh_mobsim::json::Json;
use mhh_mobsim::{run_scenario, Protocol, ScenarioConfig};

fn sweep_runner(c: &mut Criterion) {
    let base = bench_base();
    let workers = available_workers();

    let mut group = c.benchmark_group("sweep_runner");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &(label, w) in &[("serial", 1usize), ("parallel", workers)] {
        group.bench_with_input(BenchmarkId::new("figure5", label), &w, |b, &w| {
            b.iter(|| {
                let fig = figure5_with_workers(&base, &BENCH_FIG5_CONN_S, w);
                std::hint::black_box(fig.points.len())
            })
        });
    }
    group.finish();

    // One precise, single-shot measurement pair for the JSON trajectory file
    // (the shim's group timings above are for humans). The serial baseline
    // is run point by point so the same pass yields both the serial wall
    // clock and the per-point timings; the job list and per-point config
    // mirror `figure5_with_workers` exactly, which the byte-identity
    // assertion below depends on.
    let jobs: Vec<(f64, Protocol)> = BENCH_FIG5_CONN_S
        .iter()
        .flat_map(|&conn| Protocol::ALL.into_iter().map(move |proto| (conn, proto)))
        .collect();
    let t0 = Instant::now();
    let mut per_point = Vec::with_capacity(jobs.len());
    let mut serial_results = Vec::with_capacity(jobs.len());
    for &(conn, protocol) in &jobs {
        let config = ScenarioConfig {
            conn_mean_s: conn,
            ..base.clone()
        }
        .with_adaptive_duration(1.5);
        let t = Instant::now();
        let result = run_scenario(&config, protocol);
        let wall_s = t.elapsed().as_secs_f64();
        per_point.push(Json::obj(vec![
            ("x", Json::Num(conn)),
            ("protocol", Json::str(protocol.label())),
            ("mobility", Json::str(config.mobility.label())),
            ("wall_s", Json::Num(wall_s)),
        ]));
        serial_results.push(result);
    }
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = figure5_with_workers(&base, &BENCH_FIG5_CONN_S, workers);
    let parallel_s = t1.elapsed().as_secs_f64();
    let parallel_results: Vec<_> = parallel.points.iter().map(|p| &p.result).collect();
    assert_eq!(
        format!("{serial_results:?}"),
        format!("{parallel_results:?}"),
        "parallel sweep must be byte-identical to a serial run of the same seeds"
    );

    let points = jobs.len();
    let doc = Json::obj(vec![
        ("bench", Json::str("sweep_runner/figure5")),
        ("scenario_points", Json::UInt(points as u64)),
        ("workers", Json::UInt(workers as u64)),
        ("serial_wall_s", Json::Num(serial_s)),
        ("parallel_wall_s", Json::Num(parallel_s)),
        ("serial_s_per_point", Json::Num(serial_s / points as f64)),
        (
            "parallel_s_per_point",
            Json::Num(parallel_s / points as f64),
        ),
        ("speedup", Json::Num(serial_s / parallel_s)),
        ("per_point_wall_s", Json::Arr(per_point)),
    ]);
    // Benches run with CWD = the package dir; anchor the default at the
    // workspace root so the trajectory file lands in one stable place.
    let out = std::env::var("BENCH_MOBILITY_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mobility.json").into()
    });
    std::fs::write(&out, doc.pretty() + "\n").expect("write BENCH_mobility.json");
    println!(
        "sweep_runner: {points} points, serial {serial_s:.2}s, parallel {parallel_s:.2}s \
         ({workers} workers, speedup {:.2}x) -> {out}",
        serial_s / parallel_s
    );
}

criterion_group!(benches, sweep_runner);
criterion_main!(benches);
