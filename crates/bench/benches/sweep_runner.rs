//! Benchmark of the parallel sweep runner: wall-clock per scenario point and
//! serial vs. parallel speedup for a Figure-5-style sweep.
//!
//! Besides the usual printed timings, this bench emits a machine-readable
//! `BENCH_mobility.json` (path overridable via `BENCH_MOBILITY_OUT`) with
//! the total *and per-point* serial/parallel wall-clock, so the performance
//! trajectory can be tracked across PRs.
//!
//! Serial and parallel passes both run the registry's dyn-dispatched path
//! (`run_spec`) exactly as `figure5` does, so the `speedup` field isolates
//! the executor. A third, generic-fast-path pass (`run_scenario`) anchors
//! the `dyn_overhead` field and the byte-identity assertion (dyn ==
//! generic == parallel).
//!
//! A second trajectory file, `BENCH_engine.json` (path overridable via
//! `BENCH_ENGINE_OUT`), tracks the raw engine hot path: deliveries/sec of
//! the overhauled engine vs the pre-overhaul `ReferenceEngine` on the
//! shared ring/burst micro-workloads, plus scenario-level events/sec, peak
//! queue depth and the allocations-per-delivery sanity counter from
//! [`run_scenario_perf`] (including a `city-scale` point that exercises the
//! sharded clock table).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mhh_bench::engine_micro::{burst_new, burst_reference, measure, ring_new, ring_reference};
use mhh_bench::{bench_base, BENCH_FIG5_CONN_S};
use mhh_mobility::sweep::{available_workers, map_parallel};
use mhh_mobsim::experiments::figure5_with_workers;
use mhh_mobsim::json::Json;
use mhh_mobsim::{
    run_scenario, run_scenario_perf, run_scenario_phases, run_spec, scenarios, FanoutMode,
    Protocol, ProtocolRegistry, ProtocolSpec, RunResult, ScenarioConfig,
};

fn sweep_runner(c: &mut Criterion) {
    let base = bench_base();
    let workers = available_workers();

    let mut group = c.benchmark_group("sweep_runner");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &(label, w) in &[("serial", 1usize), ("parallel", workers)] {
        group.bench_with_input(BenchmarkId::new("figure5", label), &w, |b, &w| {
            b.iter(|| {
                let fig = figure5_with_workers(&base, &BENCH_FIG5_CONN_S, w);
                std::hint::black_box(fig.points.len())
            })
        });
    }
    group.finish();

    // One precise, single-shot measurement pair for the JSON trajectory
    // file (the shim's group timings above are for humans). Both passes
    // time every point individually; the job list and per-point config
    // mirror `figure5` exactly, which the byte-identity assertion depends
    // on.
    let registry = ProtocolRegistry::builtin();
    let jobs: Vec<(f64, &ProtocolSpec)> = BENCH_FIG5_CONN_S
        .iter()
        .flat_map(|&conn| registry.specs().iter().map(move |spec| (conn, spec)))
        .collect();
    let point_config = |conn: f64| {
        ScenarioConfig {
            conn_mean_s: conn,
            ..base.clone()
        }
        .with_adaptive_duration(1.5)
    };

    // Generic reference pass: the monomorphized fast path, serial. Its
    // total wall-clock quantifies the cost of dyn dispatch (the
    // `dyn_overhead` field); its results anchor the byte-identity check.
    let tg = Instant::now();
    let mut generic_results: Vec<RunResult> = Vec::with_capacity(jobs.len());
    for &(conn, spec) in &jobs {
        let protocol = Protocol::ALL
            .into_iter()
            .find(|p| p.name() == spec.name())
            .expect("builtin specs map to Protocol variants");
        generic_results.push(run_scenario(&point_config(conn), protocol));
    }
    let generic_serial_s = tg.elapsed().as_secs_f64();

    // Serial and parallel passes, both on the dyn path `figure5` uses, so
    // the speedup isolates the executor (same dispatch on both sides).
    let t0 = Instant::now();
    let mut serial_wall_s = Vec::with_capacity(jobs.len());
    let mut serial_results: Vec<RunResult> = Vec::with_capacity(jobs.len());
    for &(conn, spec) in &jobs {
        let config = point_config(conn);
        let t = Instant::now();
        let result = run_spec(&config, spec);
        serial_wall_s.push(t.elapsed().as_secs_f64());
        serial_results.push(result);
    }
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel: Vec<(RunResult, f64)> = map_parallel(&jobs, workers, |&(conn, spec)| {
        let config = point_config(conn);
        let t = Instant::now();
        let result = run_spec(&config, spec);
        (result, t.elapsed().as_secs_f64())
    });
    let parallel_s = t1.elapsed().as_secs_f64();

    let parallel_results: Vec<&RunResult> = parallel.iter().map(|(r, _)| r).collect();
    assert_eq!(
        format!("{serial_results:?}"),
        format!("{parallel_results:?}"),
        "parallel sweep must be byte-identical to a serial run of the same seeds"
    );
    assert_eq!(
        format!("{generic_results:?}"),
        format!("{serial_results:?}"),
        "dyn-dispatched runs must be byte-identical to the generic fast path"
    );

    let per_point: Vec<Json> = jobs
        .iter()
        .enumerate()
        .map(|(i, &(conn, spec))| {
            Json::obj(vec![
                ("x", Json::Num(conn)),
                ("protocol", Json::str(spec.label())),
                ("mobility", Json::str(base.mobility.to_string())),
                ("topology", Json::str(base.topology.to_string())),
                ("serial_wall_s", Json::Num(serial_wall_s[i])),
                ("parallel_wall_s", Json::Num(parallel[i].1)),
            ])
        })
        .collect();

    let points = jobs.len();
    let doc = Json::obj(vec![
        ("bench", Json::str("sweep_runner/figure5")),
        ("scenario_points", Json::UInt(points as u64)),
        ("topology", Json::str(base.topology.to_string())),
        ("workers", Json::UInt(workers as u64)),
        ("serial_wall_s", Json::Num(serial_s)),
        ("parallel_wall_s", Json::Num(parallel_s)),
        ("generic_serial_wall_s", Json::Num(generic_serial_s)),
        ("serial_s_per_point", Json::Num(serial_s / points as f64)),
        (
            "parallel_s_per_point",
            Json::Num(parallel_s / points as f64),
        ),
        // Executor speedup: serial vs parallel on the *same* (dyn) path.
        ("speedup", Json::Num(serial_s / parallel_s)),
        // Cost of dyn dispatch: dyn serial vs generic serial.
        ("dyn_overhead", Json::Num(serial_s / generic_serial_s)),
        ("per_point_wall_s", Json::Arr(per_point)),
        // The bench always runs unbudgeted; the field keeps the trajectory
        // schema aligned with the budgeted figure/matrix JSONs, where
        // `skipped` lists the points a --budget-ms deadline dropped.
        ("skipped", Json::Arr(Vec::new())),
    ]);
    // Benches run with CWD = the package dir; anchor the default at the
    // workspace root so the trajectory file lands in one stable place.
    let out = std::env::var("BENCH_MOBILITY_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mobility.json").into()
    });
    std::fs::write(&out, doc.pretty() + "\n").expect("write BENCH_mobility.json");
    println!(
        "sweep_runner: {points} points, serial {serial_s:.2}s, parallel {parallel_s:.2}s \
         ({workers} workers, speedup {:.2}x, dyn overhead {:.2}x vs generic \
         {generic_serial_s:.2}s) -> {out}",
        serial_s / parallel_s,
        serial_s / generic_serial_s
    );

    engine_trajectory();
}

/// One micro comparison row: `(workload, deliveries, new, reference)`.
fn micro_row(workload: &str, deliveries: u64, new_s: f64, reference_s: f64) -> Json {
    let new_eps = deliveries as f64 / new_s;
    let ref_eps = deliveries as f64 / reference_s;
    println!(
        "engine_micro/{workload:<16} new {new_eps:>12.0} ev/s, reference {ref_eps:>12.0} ev/s \
         (speedup {:.2}x)",
        new_eps / ref_eps
    );
    Json::obj(vec![
        ("workload", Json::str(workload)),
        ("deliveries", Json::UInt(deliveries)),
        ("new_wall_s", Json::Num(new_s)),
        ("reference_wall_s", Json::Num(reference_s)),
        ("new_events_per_sec", Json::Num(new_eps)),
        ("reference_events_per_sec", Json::Num(ref_eps)),
        ("speedup", Json::Num(new_eps / ref_eps)),
    ])
}

/// Emit `BENCH_engine.json`: the raw-engine half of the perf trajectory.
fn engine_trajectory() {
    let tries = if criterion::fast_mode() { 1 } else { 5 };

    // Micro: overhauled vs reference engine on identical workloads. The
    // ring isolates per-delivery fixed cost; the burst stresses queue depth
    // and the clock table. These are the acceptance benchmarks — the
    // recorded speedup is the hot-path overhaul's ≥20 % deliveries/sec bar.
    let (ring_d, ring_new_s) = measure(tries, || ring_new(16, 100_000));
    let (ring_rd, ring_ref_s) = measure(tries, || ring_reference(16, 100_000));
    assert_eq!(ring_d, ring_rd);
    let (burst_d, burst_new_s) = measure(tries, || burst_new(64, 400, 128));
    let (burst_rd, burst_ref_s) = measure(tries, || burst_reference(64, 400, 128));
    assert_eq!(burst_d, burst_rd);
    let micro = vec![
        micro_row("ring_100k", ring_d, ring_new_s, ring_ref_s),
        micro_row("burst_dispatch", burst_d, burst_new_s, burst_ref_s),
    ];

    // Scenario-level: full pub/sub runs through `run_scenario_perf`. The
    // figure-bench base runs on the dense clock table; the reduced
    // `city-scale` point (full 2k-client population, shortened horizon)
    // runs on the sharded one. Each point also gets a *separate* profiled
    // pass (`run_scenario_phases`) — profiling adds per-delivery timer
    // reads, so the timing pass above it stays clean.
    let city = scenarios::find("city-scale").expect("registered").config;
    let city_short = ScenarioConfig {
        duration_s: 300.0,
        ..city
    };
    let scenario_points = [
        ("bench-fig5-base", bench_base()),
        ("city-scale-short", city_short.clone()),
    ];
    let mut scenario_rows = Vec::new();
    let mut city_baseline: Option<(String, f64)> = None;
    for (name, config) in scenario_points {
        let t = Instant::now();
        let (result, perf) = run_scenario_perf(&config, Protocol::Mhh);
        let wall = t.elapsed().as_secs_f64();
        let eps = perf.deliveries as f64 / wall;
        let apd = perf.alloc_events as f64 / perf.deliveries.max(1) as f64;
        let (_, _, phases) = run_scenario_phases(&config, Protocol::Mhh);
        let total_ns = phases.total_ns().max(1) as f64;
        println!(
            "engine_scenario/{name:<16} {eps:>12.0} ev/s, peak queue {:>8}, \
             allocs/delivery {apd:.6}, phases q/c/p/s {:.0}/{:.0}/{:.0}/{:.0}%",
            perf.peak_queue_depth,
            100.0 * phases.queue_ns as f64 / total_ns,
            100.0 * phases.clocks_ns as f64 / total_ns,
            100.0 * phases.protocol_ns as f64 / total_ns,
            100.0 * phases.stats_ns as f64 / total_ns,
        );
        assert!(result.reliable(), "{name}: MHH must stay reliable");
        if name == "city-scale-short" {
            city_baseline = Some((format!("{result:?}"), wall));
        }
        scenario_rows.push(Json::obj(vec![
            ("scenario", Json::str(name)),
            ("protocol", Json::str("MHH")),
            ("deliveries", Json::UInt(perf.deliveries)),
            ("wall_s", Json::Num(wall)),
            ("events_per_sec", Json::Num(eps)),
            ("peak_queue_depth", Json::UInt(perf.peak_queue_depth as u64)),
            ("alloc_events", Json::UInt(perf.alloc_events)),
            ("allocs_per_delivery", Json::Num(apd)),
            ("phase_queue_ns", Json::UInt(phases.queue_ns)),
            ("phase_clocks_ns", Json::UInt(phases.clocks_ns)),
            ("phase_protocol_ns", Json::UInt(phases.protocol_ns)),
            ("phase_stats_ns", Json::UInt(phases.stats_ns)),
            (
                "phase_queue_frac",
                Json::Num(phases.queue_ns as f64 / total_ns),
            ),
            (
                "phase_clocks_frac",
                Json::Num(phases.clocks_ns as f64 / total_ns),
            ),
            (
                "phase_protocol_frac",
                Json::Num(phases.protocol_ns as f64 / total_ns),
            ),
            (
                "phase_stats_frac",
                Json::Num(phases.stats_ns as f64 / total_ns),
            ),
        ]));
    }

    // Parallel-backend trajectory: the windowed engine on the city-scale
    // point, serial baseline vs 1/2/4/8 shards. Every worker count must
    // reproduce the serial metrics byte for byte; `speedup` is wall-clock
    // against the serial timing pass above, so on a single-core host it
    // honestly records the windowing overhead instead of a thread win.
    let (city_metrics, city_serial_wall) =
        city_baseline.expect("the city-scale point is in the scenario table");
    let worker_points: &[usize] = if criterion::fast_mode() {
        &[4]
    } else {
        &[1, 2, 4, 8]
    };
    let mut worker_rows = Vec::new();
    for &shards in worker_points {
        let config = ScenarioConfig {
            engine_workers: shards,
            ..city_short.clone()
        };
        let t = Instant::now();
        let result = run_scenario(&config, Protocol::Mhh);
        let wall = t.elapsed().as_secs_f64();
        assert_eq!(
            format!("{result:?}"),
            city_metrics,
            "engine_workers={shards} must not change any metric"
        );
        let speedup = city_serial_wall / wall;
        println!(
            "engine_parallel/city-scale-short workers={shards} wall {wall:.2}s \
             (speedup {speedup:.2}x vs serial {city_serial_wall:.2}s)"
        );
        worker_rows.push(Json::obj(vec![
            ("workers", Json::UInt(shards as u64)),
            ("wall_s", Json::Num(wall)),
            ("speedup", Json::Num(speedup)),
        ]));
    }

    // Fan-out trajectory: the serialize-once cached path vs the
    // clone-per-destination baseline on the `fan-out-storm` preset (100
    // publishers broadcasting to 2 000 subscribers with modeled payloads).
    // Delivery results are byte-identical between modes — asserted here, so
    // the recorded savings are measured on provably equivalent runs. The
    // cached path must hold a ≥10× margin on both fan-out allocations and
    // bytes serialized; fast mode trims the subscriber population, which
    // only *shrinks* the fan-out degree and thus tightens that bar.
    let storm = scenarios::find("fan-out-storm").expect("registered").config;
    let storm = if criterion::fast_mode() {
        ScenarioConfig {
            storm_subscribers: 400,
            ..storm
        }
    } else {
        storm
    };
    let mut fanout_rows = Vec::new();
    let mut fanout_results = Vec::new();
    for mode in [FanoutMode::Cached, FanoutMode::CloneBaseline] {
        let config = storm.clone().with_fanout_mode(mode);
        let t = Instant::now();
        let result = run_scenario(&config, Protocol::Mhh);
        let wall = t.elapsed().as_secs_f64();
        let eps = result.delivered_messages as f64 / wall;
        let traffic = result.traffic;
        println!(
            "engine_fanout/fan-out-storm {:<6} {eps:>12.0} ev/s, allocs {:>8}, \
             bytes serialized {:>12}",
            mode.label(),
            traffic.fanout_allocs,
            traffic.bytes_serialized,
        );
        fanout_rows.push(Json::obj(vec![
            ("mode", Json::str(mode.label())),
            ("delivered", Json::UInt(result.delivered_messages)),
            ("wall_s", Json::Num(wall)),
            ("events_per_sec", Json::Num(eps)),
            ("fanouts", Json::UInt(traffic.fanouts)),
            ("serializations", Json::UInt(traffic.serializations)),
            ("bytes_serialized", Json::UInt(traffic.bytes_serialized)),
            ("fanout_allocs", Json::UInt(traffic.fanout_allocs)),
            ("cache_hits", Json::UInt(traffic.cache_hits)),
            ("delivery_bytes", Json::UInt(traffic.delivery_bytes)),
        ]));
        fanout_results.push(result);
    }
    let (cached, clone) = (&fanout_results[0], &fanout_results[1]);
    assert_eq!(
        (cached.delivered_messages, cached.traffic.delivery_bytes),
        (clone.delivered_messages, clone.traffic.delivery_bytes),
        "cached and clone fan-out must deliver identically"
    );
    assert!(
        cached.traffic.fanout_allocs * 10 <= clone.traffic.fanout_allocs,
        "cached fan-out must allocate >=10x less (cached {} vs clone {})",
        cached.traffic.fanout_allocs,
        clone.traffic.fanout_allocs
    );
    assert!(
        cached.traffic.bytes_serialized * 10 <= clone.traffic.bytes_serialized,
        "cached fan-out must serialize >=10x fewer bytes (cached {} vs clone {})",
        cached.traffic.bytes_serialized,
        clone.traffic.bytes_serialized
    );
    println!(
        "engine_fanout/fan-out-storm cached saves {:.1}x allocations, {:.1}x bytes serialized",
        clone.traffic.fanout_allocs as f64 / cached.traffic.fanout_allocs.max(1) as f64,
        clone.traffic.bytes_serialized as f64 / cached.traffic.bytes_serialized.max(1) as f64,
    );

    let doc = Json::obj(vec![
        ("bench", Json::str("engine_hot_path")),
        ("micro", Json::Arr(micro)),
        ("scenarios", Json::Arr(scenario_rows)),
        (
            "fanout",
            Json::obj(vec![
                ("scenario", Json::str("fan-out-storm")),
                ("publishers", Json::UInt(storm.storm_publishers as u64)),
                ("subscribers", Json::UInt(storm.storm_subscribers as u64)),
                (
                    "payload_bytes_mean",
                    Json::UInt(storm.payload_bytes_mean as u64),
                ),
                ("host_workers", Json::UInt(available_workers() as u64)),
                (
                    "alloc_savings",
                    Json::Num(
                        clone.traffic.fanout_allocs as f64
                            / cached.traffic.fanout_allocs.max(1) as f64,
                    ),
                ),
                (
                    "bytes_savings",
                    Json::Num(
                        clone.traffic.bytes_serialized as f64
                            / cached.traffic.bytes_serialized.max(1) as f64,
                    ),
                ),
                ("modes", Json::Arr(fanout_rows)),
            ]),
        ),
        (
            "parallel",
            Json::obj(vec![
                ("scenario", Json::str("city-scale-short")),
                ("serial_wall_s", Json::Num(city_serial_wall)),
                ("host_workers", Json::UInt(available_workers() as u64)),
                ("workers", Json::Arr(worker_rows)),
            ]),
        ),
    ]);
    let out = std::env::var("BENCH_ENGINE_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json").into());
    std::fs::write(&out, doc.pretty() + "\n").expect("write BENCH_engine.json");
    println!("engine_trajectory -> {out}");
}

criterion_group!(benches, sweep_runner);
criterion_main!(benches);
