//! Micro-benchmarks of the content-filter substrate: matching and covering.

use criterion::{criterion_group, criterion_main, Criterion};
use mhh_pubsub::event::EventBuilder;
use mhh_pubsub::{ClientId, Filter, Op};

fn micro_filter(c: &mut Criterion) {
    let filters: Vec<Filter> = (0..1000)
        .map(|i| {
            let lo = (i as f64) / 1000.0 * 0.9375;
            Filter::new(vec![])
                .and("v", Op::Ge, lo)
                .and("v", Op::Lt, lo + 0.0625)
        })
        .collect();
    let events: Vec<_> = (0..256)
        .map(|i| {
            EventBuilder::new()
                .attr("v", (i as f64) / 256.0)
                .attr("source", i as i64)
                .build(i as u64, ClientId(0), i as u64)
        })
        .collect();

    c.bench_function("filter_match_1000x256", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for e in &events {
                for f in &filters {
                    if f.matches(e) {
                        hits += 1;
                    }
                }
            }
            std::hint::black_box(hits)
        })
    });

    c.bench_function("filter_covering_1000x1000", |b| {
        b.iter(|| {
            let mut covered = 0usize;
            for f in filters.iter().step_by(10) {
                for g in filters.iter().step_by(10) {
                    if f.covers(g) {
                        covered += 1;
                    }
                }
            }
            std::hint::black_box(covered)
        })
    });
}

criterion_group!(benches, micro_filter);
criterion_main!(benches);
