//! Figure 5(b): average handoff delay vs. average connection-period length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mhh_bench::{bench_base, BENCH_FIG5_CONN_S};
use mhh_mobsim::{ProtocolRegistry, ScenarioConfig, Sim};

fn fig5_delay(c: &mut Criterion) {
    let registry = ProtocolRegistry::global();
    let mut group = c.benchmark_group("fig5b_handoff_delay");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &conn in &BENCH_FIG5_CONN_S {
        for spec in registry.specs() {
            let config = ScenarioConfig {
                conn_mean_s: conn,
                ..bench_base()
            };
            group.bench_with_input(BenchmarkId::new(spec.label(), conn), &config, |b, cfg| {
                b.iter(|| {
                    let r = Sim::config(cfg.clone())
                        .protocol(spec.name())
                        .run()
                        .expect("registry protocol resolves");
                    std::hint::black_box(r.avg_handoff_delay_ms)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig5_delay);
criterion_main!(benches);
