//! # mhh-mobility — pluggable, deterministic mobility models
//!
//! The MHH paper evaluates its handoff protocol under a single synthetic
//! mobility pattern: uniform random broker-to-broker moves with
//! exponentially distributed connection and disconnection periods
//! (Section 5.1). Handover cost, however, is highly sensitive to *where* and
//! *how often* clients move — road-network mobility produces mostly
//! short-distance handoffs, commuting produces filter-table contention at a
//! few hotspot brokers. This crate makes the mobility pattern a first-class,
//! pluggable subsystem so the evaluation harness (`mhh-mobsim`) can sweep
//! protocol × mobility matrices.
//!
//! ## The contract
//!
//! A [`MobilityModel`] turns `(world, client, home, seed)` into a *move
//! trace*: a sorted list of [`MoveStep`]s, each one a disconnect at
//! `depart_s` followed by a reconnect at `arrive_s` at broker `to`. Models
//! are **deterministic** (same seed ⇒ same trace), never emit self-moves
//! (`from != to`), keep every step inside the simulation horizon and chain
//! positions correctly (`from` equals the previous step's `to`). The
//! [`trace::TraceBuilder`] helper enforces all of this, so models only
//! express *where to go next and how long to linger*.
//!
//! ## Choosing a model
//!
//! | Model | Pattern | Proclaims? | Use it to stress |
//! |-------|---------|------------|------------------|
//! | [`models::UniformRandom`] | jump to any other broker (the paper's model) | no | long-distance subscription migration |
//! | [`models::RandomWaypoint`] | walk to a target broker via grid-adjacent hops, pause, repeat | yes | sustained short-hop handoff chains |
//! | [`models::ManhattanGrid`] | street-grid movement with straight-line persistence, only adjacent hops | yes | frequent cheap handoffs / locality |
//! | [`models::HotspotCommuter`] | oscillate between a home broker and a few shared hotspots | no | filter-table contention at hot brokers |
//! | [`models::GroupPlatoon`] | platoons sharing one trajectory with jittered departures | yes | bulk migration to one destination broker |
//! | [`models::TracePlayback`] | replay an explicit `(time, client, from, to)` move list | no | reproducible regression scenarios |
//!
//! Each [`MoveStep`] carries the model's *proclamation decision*: predictable
//! moves (street grids, platoon convoys, waypoint walks) are flagged
//! `proclaimed`, meaning the client can announce its destination broker to
//! the departure broker before leaving (the paper's §4.1 proclaimed handoff);
//! unpredictable moves stay silent (§4.2). The evaluation harness turns the
//! flag into `ClientAction::Disconnect { proclaimed_dest }` and can override
//! it with a scenario-level `proclaimed_fraction` knob.
//!
//! [`ModelKind`] is the cheap, cloneable description of a model that
//! configurations carry; `ModelKind::build()` instantiates the model.
//!
//! ## Parallel sweeps
//!
//! [`sweep::map_parallel`] is an order-preserving, scoped-thread work-stealing
//! executor for scenario sweeps: results are byte-identical to a serial run
//! of the same inputs (each point is a pure function of its input) while the
//! wall-clock scales with the available cores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod kind;
pub mod models;
pub mod parse;
pub mod sweep;
pub mod trace;

pub use kind::ModelKind;
pub use mhh_simnet::TopologyKind;
pub use models::{
    GroupPlatoon, HotspotCommuter, ManhattanGrid, Mix, RandomWaypoint, TracePlayback, TraceRecord,
    UniformRandom,
};
pub use parse::{parse_trace, TraceParseError};
pub use trace::{MobilityModel, MobilityWorld, MoveStep};
