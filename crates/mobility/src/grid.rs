//! Geometry of the k×k base-station grid.
//!
//! Brokers are numbered row-major: broker `b` sits at row `b / k`, column
//! `b % k`. Mobility models use the *physical* 4-neighbourhood of this grid
//! (a client walking down a street passes through adjacent cells); the
//! broker *overlay* tree built by `mhh-simnet` is a separate concern.

/// Row/column of a broker on a `side × side` grid.
pub fn cell(broker: u32, side: usize) -> (usize, usize) {
    let b = broker as usize;
    (b / side, b % side)
}

/// Broker index of a row/column pair.
pub fn broker(row: usize, col: usize, side: usize) -> u32 {
    (row * side + col) as u32
}

/// Manhattan (taxicab) distance between two brokers on the grid.
pub fn manhattan(a: u32, b: u32, side: usize) -> usize {
    let (ar, ac) = cell(a, side);
    let (br, bc) = cell(b, side);
    ar.abs_diff(br) + ac.abs_diff(bc)
}

/// The 2–4 physically adjacent brokers of `b` (street neighbours).
pub fn neighbours(b: u32, side: usize) -> Vec<u32> {
    let (r, c) = cell(b, side);
    let mut out = Vec::with_capacity(4);
    if r > 0 {
        out.push(broker(r - 1, c, side));
    }
    if r + 1 < side {
        out.push(broker(r + 1, c, side));
    }
    if c > 0 {
        out.push(broker(r, c - 1, side));
    }
    if c + 1 < side {
        out.push(broker(r, c + 1, side));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_and_broker_are_inverse() {
        for side in 1..6 {
            for b in 0..(side * side) as u32 {
                let (r, c) = cell(b, side);
                assert_eq!(broker(r, c, side), b);
            }
        }
    }

    #[test]
    fn corner_and_centre_neighbour_counts() {
        // 3×3 grid: corners have 2 neighbours, edges 3, centre 4.
        assert_eq!(neighbours(0, 3).len(), 2);
        assert_eq!(neighbours(1, 3).len(), 3);
        assert_eq!(neighbours(4, 3).len(), 4);
        // All neighbours are at Manhattan distance 1.
        for b in 0..9 {
            for n in neighbours(b, 3) {
                assert_eq!(manhattan(b, n, 3), 1);
            }
        }
    }

    #[test]
    fn manhattan_distance_is_symmetric() {
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(manhattan(a, b, 4), manhattan(b, a, 4));
            }
        }
    }
}
