//! Order-preserving parallel executor for scenario sweeps.
//!
//! Each sweep point (one `(scenario, protocol)` pair) is an independent,
//! single-threaded, deterministic simulation — embarrassingly parallel work.
//! [`map_parallel`] fans the points out over scoped `std::thread` workers
//! pulling indices from a shared atomic counter (work stealing without
//! queues), writing each result into its input's slot. Because every point
//! is a pure function of its input, the output vector is **byte-identical**
//! to [`map_serial`] on the same inputs, whatever the thread interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers the machine supports (≥ 1).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Serial reference implementation: `items.iter().map(f)`.
pub fn map_serial<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    F: Fn(&I) -> O,
{
    items.iter().map(f).collect()
}

/// Apply `f` to every item on `workers` scoped threads, returning results in
/// input order. Equivalent to [`map_serial`] output-wise; panics in `f`
/// propagate. `workers <= 1` (or a single item) degrades to the serial path.
pub fn map_parallel<I, O, F>(items: &[I], workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return map_serial(items, f);
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<O>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                slots.lock().expect("sweep worker poisoned the slots")[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("sweep workers poisoned the slots")
        .into_iter()
        .map(|slot| slot.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let f = |x: &u64| x * x + 1;
        let serial = map_serial(&items, f);
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(
                map_parallel(&items, workers, f),
                serial,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        assert!(map_parallel(&none, 4, |x| *x).is_empty());
        assert_eq!(map_parallel(&[7u32], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(map_parallel(&items, 100, |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn available_workers_is_positive() {
        assert!(available_workers() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        let _ = map_parallel(&items, 4, |x| {
            assert!(*x < 4, "boom");
            *x
        });
    }
}
