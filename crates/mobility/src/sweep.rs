//! Order-preserving parallel executor for scenario sweeps.
//!
//! Each sweep point (one `(scenario, protocol)` pair) is an independent,
//! single-threaded, deterministic simulation — embarrassingly parallel work.
//! [`map_parallel`] fans the points out over scoped `std::thread` workers
//! pulling indices from a shared atomic counter (work stealing without
//! queues), writing each result into its input's slot. Because every point
//! is a pure function of its input, the output vector is **byte-identical**
//! to [`map_serial`] on the same inputs, whatever the thread interleaving.
//!
//! Sweep points may themselves be parallel (a point running the windowed
//! parallel engine). The executor budgets the two levels against each other:
//! each of its `W` workers runs the closure under a
//! [`with_thread_allowance`] of `workers / W`, so a sweep asked for
//! `workers` threads never uses more than `workers` threads in total no
//! matter how many shards the nested engines were configured with.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mhh_simnet::with_thread_allowance;

/// Number of workers the machine supports (≥ 1).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Serial reference implementation: `items.iter().map(f)`.
pub fn map_serial<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    F: Fn(&I) -> O,
{
    items.iter().map(f).collect()
}

/// Apply `f` to every item on `workers` scoped threads, returning results in
/// input order. Equivalent to [`map_serial`] output-wise; panics in `f`
/// propagate. `workers <= 1` (or a single item) degrades to the serial path.
pub fn map_parallel<I, O, F>(items: &[I], workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    map_parallel_budgeted(items, workers, None, f)
        .results
        .into_iter()
        .map(|slot| slot.expect("an unbudgeted map completes every item"))
        .collect()
}

/// Outcome of a budgeted sweep: one slot per input, `None` where the
/// wall-clock budget ran out before the point could *start* (points already
/// running when the budget expires are finished, never killed — a partial
/// simulation result would be meaningless). `skipped` lists the `None`
/// indices, so callers can report what was dropped instead of silently
/// truncating.
#[derive(Debug)]
pub struct BudgetedMap<O> {
    /// Per-input result slots, in input order.
    pub results: Vec<Option<O>>,
    /// Indices of inputs that were never started.
    pub skipped: Vec<usize>,
}

impl<O> BudgetedMap<O> {
    /// True when every input completed.
    pub fn is_complete(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// [`map_parallel`] under a wall-clock budget: once `budget` has elapsed
/// (measured from the call), workers stop claiming new items; items not yet
/// started are reported as skipped. `budget: None` disables the deadline and
/// behaves exactly like [`map_parallel`]. Which points complete under a
/// tight budget depends on real time and is therefore *not* deterministic —
/// but every completed point's value is byte-identical to what an unbudgeted
/// run would produce, because each point is a pure function of its input.
pub fn map_parallel_budgeted<I, O, F>(
    items: &[I],
    workers: usize,
    budget: Option<Duration>,
    f: F,
) -> BudgetedMap<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let deadline = budget.map(|b| Instant::now() + b);
    let expired = || deadline.is_some_and(|d| Instant::now() >= d);
    if workers <= 1 || items.len() <= 1 {
        // Single-file execution keeps the whole budget for the point itself
        // (a lone point may still run a many-shard parallel engine).
        let allowance = workers.max(1);
        let mut results = Vec::with_capacity(items.len());
        for item in items {
            results.push(if expired() {
                None
            } else {
                Some(with_thread_allowance(allowance, || f(item)))
            });
        }
        return collect_budgeted(results);
    }
    let spawned = workers.min(items.len());
    // Split the thread budget between the two parallelism levels: `spawned`
    // sweep workers × an allowance of `workers / spawned` engine threads
    // each never exceeds `workers` threads in total.
    let allowance = (workers / spawned).max(1);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<O>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..spawned {
            scope.spawn(|| loop {
                if expired() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = with_thread_allowance(allowance, || f(&items[i]));
                slots.lock().expect("sweep worker poisoned the slots")[i] = Some(out);
            });
        }
    });
    collect_budgeted(
        slots
            .into_inner()
            .expect("sweep workers poisoned the slots"),
    )
}

fn collect_budgeted<O>(results: Vec<Option<O>>) -> BudgetedMap<O> {
    let skipped = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_none())
        .map(|(i, _)| i)
        .collect();
    BudgetedMap { results, skipped }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let f = |x: &u64| x * x + 1;
        let serial = map_serial(&items, f);
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(
                map_parallel(&items, workers, f),
                serial,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        assert!(map_parallel(&none, 4, |x| *x).is_empty());
        assert_eq!(map_parallel(&[7u32], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(map_parallel(&items, 100, |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn available_workers_is_positive() {
        assert!(available_workers() >= 1);
    }

    #[test]
    fn no_budget_completes_everything_identically() {
        let items: Vec<u64> = (0..57).collect();
        let f = |x: &u64| x * 3 + 1;
        for workers in [1, 4] {
            let budgeted = map_parallel_budgeted(&items, workers, None, f);
            assert!(budgeted.is_complete());
            assert!(budgeted.skipped.is_empty());
            let unwrapped: Vec<u64> = budgeted.results.into_iter().map(Option::unwrap).collect();
            assert_eq!(unwrapped, map_serial(&items, f));
        }
    }

    #[test]
    fn exhausted_budget_skips_and_reports_all_points() {
        let items: Vec<u64> = (0..20).collect();
        for workers in [1, 4] {
            let budgeted = map_parallel_budgeted(&items, workers, Some(Duration::ZERO), |x| x + 1);
            assert!(!budgeted.is_complete());
            assert_eq!(budgeted.skipped.len(), 20, "workers={workers}");
            assert!(budgeted.results.iter().all(Option::is_none));
        }
    }

    #[test]
    fn generous_budget_behaves_like_unbudgeted() {
        let items: Vec<u64> = (0..31).collect();
        let budgeted = map_parallel_budgeted(&items, 4, Some(Duration::from_secs(3600)), |x| x * x);
        assert!(budgeted.is_complete());
        let unwrapped: Vec<u64> = budgeted.results.into_iter().map(Option::unwrap).collect();
        assert_eq!(unwrapped, map_serial(&items, |x| x * x));
    }

    #[test]
    fn nested_thread_budget_reaches_every_point() {
        use mhh_simnet::thread_allowance;
        // 8-thread budget over 4 points on 4 workers → each point may use 2.
        let items: Vec<u32> = (0..4).collect();
        let seen = map_parallel(&items, 8, |x| (*x, thread_allowance()));
        assert!(seen.iter().all(|&(_, a)| a == 2), "{seen:?}");
        // More points than workers → nested engines must run inline.
        let items: Vec<u32> = (0..16).collect();
        let seen = map_parallel(&items, 4, |x| (*x, thread_allowance()));
        assert!(seen.iter().all(|&(_, a)| a == 1), "{seen:?}");
        // A lone point keeps the whole budget.
        let seen = map_parallel(&[9u32], 8, |x| (*x, thread_allowance()));
        assert_eq!(seen, vec![(9, 8)]);
        // The guard restores the caller's (unlimited) allowance.
        assert_eq!(thread_allowance(), 0);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        let _ = map_parallel(&items, 4, |x| {
            assert!(*x < 4, "boom");
            *x
        });
    }
}
