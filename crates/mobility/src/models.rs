//! The built-in mobility models.
//!
//! All models sample dwell (connected) and gap (disconnected) lengths from
//! exponential distributions with the world's means, matching the paper's
//! Section 5.1 statistics; they differ in *where* the client goes next. See
//! the crate-level docs for a model-choice guide.

use std::sync::Arc;

use mhh_simnet::random::DetRng;

use crate::grid;
use crate::trace::{MobilityModel, MobilityWorld, MoveTrace, TraceBuilder, MIN_PERIOD_S};

/// Pick a uniformly random broker different from `cur`.
fn random_other(rng: &mut DetRng, cur: u32, broker_count: usize) -> u32 {
    debug_assert!(broker_count >= 2);
    let pick = rng.index(broker_count - 1) as u32;
    if pick >= cur {
        pick + 1
    } else {
        pick
    }
}

// ---------------------------------------------------------------------------
// UniformRandom
// ---------------------------------------------------------------------------

/// The paper's mobility pattern (Section 5.1): after an exponential
/// connection period the client disconnects, stays away for an exponential
/// disconnection period and reappears at a uniformly random *other* broker.
/// Stresses long-distance subscription migration, since the expected overlay
/// distance of a move is large.
///
/// Deliberate deviation from the v0 workload generator it replaces: v0
/// sampled the reconnect target over *all* brokers, so ~1/k² of "moves"
/// reconnected at the same broker. The mobility-subsystem contract forbids
/// self-moves (every trace step is a real handoff), so this model excludes
/// the current broker; the protocol's reconnect-at-same-broker path stays
/// covered by `mhh-core`'s unit tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformRandom;

impl MobilityModel for UniformRandom {
    fn name(&self) -> &'static str {
        "uniform-random"
    }

    fn trace(&self, world: &MobilityWorld, _client: u32, home: u32, seed: u64) -> MoveTrace {
        let mut tb = TraceBuilder::new(world, home);
        let count = world.broker_count();
        if count >= 2 {
            let mut rng = DetRng::new(seed);
            loop {
                let dwell = rng.exponential(world.conn_mean_s);
                let gap = rng.exponential(world.disc_mean_s);
                let to = random_other(&mut rng, tb.position(), count);
                if !tb.move_after(dwell, gap, to) {
                    break;
                }
            }
        }
        tb.finish()
    }
}

// ---------------------------------------------------------------------------
// RandomWaypoint
// ---------------------------------------------------------------------------

/// The classic random-waypoint pattern mapped onto the broker grid: the
/// client picks a random target broker and *walks* there through grid-adjacent
/// cells (one handoff per street block), pauses at the waypoint, then picks
/// the next target. Produces sustained chains of short-distance handoffs —
/// the regime where MHH's hop-by-hop migration should shine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWaypoint {
    /// Mean pause length at a reached waypoint, in seconds (exponentially
    /// distributed, added to the regular dwell).
    pub pause_mean_s: f64,
}

impl Default for RandomWaypoint {
    fn default() -> Self {
        RandomWaypoint { pause_mean_s: 60.0 }
    }
}

/// One step from `cur` toward `target` on an arbitrary topology: choose
/// uniformly among the physical neighbors that strictly reduce the
/// shortest-path distance (there is always at least one on a connected
/// graph when `cur != target`).
fn step_toward_graph(rng: &mut DetRng, world: &MobilityWorld, cur: u32, target: u32) -> u32 {
    let here = world.distance(cur, target);
    let options: Vec<u32> = world
        .neighbors(cur)
        .into_iter()
        .filter(|&n| world.distance(n, target) < here)
        .collect();
    debug_assert!(
        !options.is_empty(),
        "step_toward_graph called at the target"
    );
    options[rng.index(options.len())]
}

/// One grid step from `cur` toward `target`, choosing uniformly between the
/// row-wise and column-wise moves when both reduce the distance. Kept as the
/// plain-grid path (cell math, pre-refactor RNG stream); non-grid worlds go
/// through [`step_toward_graph`].
fn step_toward(rng: &mut DetRng, cur: u32, target: u32, side: usize) -> u32 {
    let (r, c) = grid::cell(cur, side);
    let (tr, tc) = grid::cell(target, side);
    let mut options = Vec::with_capacity(2);
    if r < tr {
        options.push(grid::broker(r + 1, c, side));
    } else if r > tr {
        options.push(grid::broker(r - 1, c, side));
    }
    if c < tc {
        options.push(grid::broker(r, c + 1, side));
    } else if c > tc {
        options.push(grid::broker(r, c - 1, side));
    }
    debug_assert!(!options.is_empty(), "step_toward called at the target");
    options[rng.index(options.len())]
}

impl MobilityModel for RandomWaypoint {
    fn name(&self) -> &'static str {
        "random-waypoint"
    }

    fn trace(&self, world: &MobilityWorld, _client: u32, home: u32, seed: u64) -> MoveTrace {
        let mut tb = TraceBuilder::new(world, home);
        // The walker picks the next street block before leaving the current
        // one, so every hop is predictable and proclaimed (§4.1).
        tb.proclaiming(true);
        let count = world.broker_count();
        if count >= 2 {
            let on_grid = world.is_grid();
            let mut rng = DetRng::new(seed);
            let mut waypoint = random_other(&mut rng, home, count);
            let mut pause = 0.0f64;
            loop {
                if tb.position() == waypoint {
                    pause = rng.exponential(self.pause_mean_s);
                    waypoint = random_other(&mut rng, tb.position(), count);
                }
                let to = if on_grid {
                    step_toward(&mut rng, tb.position(), waypoint, world.grid_side())
                } else {
                    step_toward_graph(&mut rng, world, tb.position(), waypoint)
                };
                let dwell = rng.exponential(world.conn_mean_s) + pause;
                pause = 0.0;
                let gap = rng.exponential(world.disc_mean_s);
                if !tb.move_after(dwell, gap, to) {
                    break;
                }
            }
        }
        tb.finish()
    }
}

// ---------------------------------------------------------------------------
// ManhattanGrid
// ---------------------------------------------------------------------------

/// Street-grid movement: the client only ever hops to a physically adjacent
/// broker, keeps its heading with probability 1/2 and turns left/right with
/// probability 1/4 each (the classic Manhattan mobility model), bouncing off
/// the grid edge. Every handoff is between topologically close brokers,
/// stressing the short-distance handoff path and broker-local state churn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManhattanGrid;

const DIRS: [(i32, i32); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];

fn apply_dir(cur: u32, dir: (i32, i32), side: usize) -> Option<u32> {
    let (r, c) = grid::cell(cur, side);
    let nr = r as i32 + dir.0;
    let nc = c as i32 + dir.1;
    if nr < 0 || nc < 0 || nr >= side as i32 || nc >= side as i32 {
        None
    } else {
        Some(grid::broker(nr as usize, nc as usize, side))
    }
}

/// Left and right turns of a heading.
fn turns(dir: (i32, i32)) -> [(i32, i32); 2] {
    [(-dir.1, dir.0), (dir.1, -dir.0)]
}

impl MobilityModel for ManhattanGrid {
    fn name(&self) -> &'static str {
        "manhattan-grid"
    }

    fn trace(&self, world: &MobilityWorld, _client: u32, home: u32, seed: u64) -> MoveTrace {
        let mut tb = TraceBuilder::new(world, home);
        // Street-grid movement keeps its heading: the next cell is known
        // before departure, so every move is proclaimed (§4.1) — this is the
        // road-network predictability argument of the mix-zones literature.
        tb.proclaiming(true);
        if world.broker_count() < 2 {
            return tb.finish();
        }
        let mut rng = DetRng::new(seed);
        if world.is_grid() {
            let side = world.grid_side();
            let mut heading = DIRS[rng.index(4)];
            loop {
                // Keep going straight with p=1/2, turn with p=1/4 each; fall
                // back to any open street at a wall.
                let u = rng.next_f64();
                let [left, right] = turns(heading);
                let preference = if u < 0.5 {
                    [heading, left, right]
                } else if u < 0.75 {
                    [left, heading, right]
                } else {
                    [right, heading, left]
                };
                // On a square grid with side >= 2 the two perpendicular
                // turns cover both directions of the other axis, so at
                // least one of the three candidates is always in-grid.
                let (dir, to) = preference
                    .iter()
                    .find_map(|&d| apply_dir(tb.position(), d, side).map(|b| (d, b)))
                    .expect("a >=2x2 square grid always has an open street");
                heading = dir;
                let dwell = rng.exponential(world.conn_mean_s);
                let gap = rng.exponential(world.disc_mean_s);
                if !tb.move_after(dwell, gap, to) {
                    break;
                }
            }
        } else {
            // Any other topology: the "street" is the physical adjacency.
            // Momentum is "don't turn back": hop to a uniformly chosen
            // neighbor other than the cell just left, falling back to a
            // U-turn only in a dead end. Every hop is still adjacent and
            // announced before departure.
            let mut prev: Option<u32> = None;
            loop {
                let here = tb.position();
                let neighbors = world.neighbors(here);
                let forward: Vec<u32> = neighbors
                    .iter()
                    .copied()
                    .filter(|&n| Some(n) != prev)
                    .collect();
                let choices = if forward.is_empty() {
                    &neighbors
                } else {
                    &forward
                };
                if choices.is_empty() {
                    break; // isolated station: nowhere to walk
                }
                let to = choices[rng.index(choices.len())];
                let dwell = rng.exponential(world.conn_mean_s);
                let gap = rng.exponential(world.disc_mean_s);
                if !tb.move_after(dwell, gap, to) {
                    break;
                }
                prev = Some(here);
            }
        }
        tb.finish()
    }
}

// ---------------------------------------------------------------------------
// HotspotCommuter
// ---------------------------------------------------------------------------

/// Commuter traffic: every client oscillates between its home broker and a
/// small, *shared* set of hotspot brokers (offices, stadiums). All clients
/// agree on the hotspot set — it derives from the world's scenario seed —
/// so the hotspot brokers' filter tables absorb a large share of the
/// migrations, creating the contention this model exists to expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotspotCommuter {
    /// Number of hotspot brokers shared by all commuters.
    pub hotspots: usize,
}

impl Default for HotspotCommuter {
    fn default() -> Self {
        HotspotCommuter { hotspots: 3 }
    }
}

impl HotspotCommuter {
    /// The hotspot brokers of a world (shared by every client).
    pub fn hotspot_set(&self, world: &MobilityWorld) -> Vec<u32> {
        let count = world.broker_count();
        let k = self.hotspots.clamp(1, count);
        let mut rng = DetRng::new(world.scenario_seed ^ 0x486f_7453_706f_7421);
        let mut set = rng.choose_indices(count, k);
        set.sort_unstable();
        set.into_iter().map(|b| b as u32).collect()
    }
}

impl MobilityModel for HotspotCommuter {
    fn name(&self) -> &'static str {
        "hotspot-commuter"
    }

    fn trace(&self, world: &MobilityWorld, _client: u32, home: u32, seed: u64) -> MoveTrace {
        let mut tb = TraceBuilder::new(world, home);
        let count = world.broker_count();
        if count >= 2 {
            let hotspots = self.hotspot_set(world);
            let mut rng = DetRng::new(seed);
            loop {
                let at_home = tb.position() == home;
                let to = if at_home {
                    // Commute to a random hotspot (skipping home itself; if
                    // home is the only hotspot, visit a random other broker).
                    let choices: Vec<u32> =
                        hotspots.iter().copied().filter(|&h| h != home).collect();
                    if choices.is_empty() {
                        random_other(&mut rng, home, count)
                    } else {
                        choices[rng.index(choices.len())]
                    }
                } else {
                    home
                };
                let dwell = rng.exponential(world.conn_mean_s);
                let gap = rng.exponential(world.disc_mean_s);
                if !tb.move_after(dwell, gap, to) {
                    break;
                }
            }
        }
        tb.finish()
    }
}

// ---------------------------------------------------------------------------
// TracePlayback
// ---------------------------------------------------------------------------

/// One externally supplied move: at `at_s` seconds `client` leaves `from`
/// and, one mean disconnection period later, reattaches at `to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Departure time in seconds.
    pub at_s: f64,
    /// The moving client's index.
    pub client: u32,
    /// Broker the client leaves (must match its current position; mismatched
    /// records are skipped).
    pub from: u32,
    /// Broker the client reattaches to.
    pub to: u32,
}

/// Replays an explicit `(time, client, from, to)` move list — the
/// reproducible-regression model. Records are applied in time order; records
/// that do not chain (wrong `from`, out-of-range broker, past the horizon)
/// are skipped rather than trusted, as are same-broker records (`from ==
/// to`): the subsystem contract is that models never emit self-moves, so a
/// disconnect-and-return-to-the-same-broker in external data is dropped.
/// The reconnect happens `world.disc_mean_s` seconds after the departure,
/// making the gap explicit in the scenario configuration.
///
/// Records are grouped per client at construction, so a workload generation
/// pass over C clients costs O(records) total, not O(C × records).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TracePlayback {
    by_client: Arc<std::collections::BTreeMap<u32, Vec<TraceRecord>>>,
}

impl TracePlayback {
    /// Build a playback model from `(time, client, from, to)` tuples; the
    /// records are time-sorted and grouped per client once, here.
    pub fn new(mut records: Vec<TraceRecord>) -> Self {
        records.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        let mut by_client: std::collections::BTreeMap<u32, Vec<TraceRecord>> =
            std::collections::BTreeMap::new();
        for rec in records {
            by_client.entry(rec.client).or_default().push(rec);
        }
        TracePlayback {
            by_client: Arc::new(by_client),
        }
    }
}

impl MobilityModel for TracePlayback {
    fn name(&self) -> &'static str {
        "trace-playback"
    }

    fn trace(&self, world: &MobilityWorld, client: u32, home: u32, _seed: u64) -> MoveTrace {
        let mut tb = TraceBuilder::new(world, home);
        if let Some(records) = self.by_client.get(&client) {
            // Clamp like move_after does its sampled gap, so a zero
            // disc_mean_s config replays instant handoffs instead of
            // silently dropping every record.
            let gap = world.disc_mean_s.max(MIN_PERIOD_S);
            for rec in records {
                tb.move_at(rec.at_s, rec.at_s + gap, rec.from, rec.to);
            }
        }
        tb.finish()
    }

    fn drives_all_clients(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// GroupPlatoon
// ---------------------------------------------------------------------------

/// Group mobility: clients travel in *platoons* (vehicle convoys, guided
/// tours) that share one trajectory. All members of a platoon visit the same
/// broker sequence at the same nominal times, offset by a small per-client
/// departure jitter, so a whole platoon migrates to the *same destination
/// broker* within a short window — the bulk-migration stress case for
/// mobility protocols (many simultaneous handoffs into one filter table).
///
/// Platoon membership is by client index (`client / platoon_size`); the
/// shared trajectory derives from the world's scenario seed and the platoon
/// id, never from the per-client seed, so members agree on it exactly. The
/// per-client seed only contributes the departure jitter. Platoon moves are
/// predictable (the convoy's route is known), so every step is proclaimed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupPlatoon {
    /// Number of clients per platoon (by contiguous client index).
    pub platoon_size: usize,
    /// Maximum departure jitter in seconds (uniform per client, applied to
    /// every step of the shared trajectory).
    pub jitter_s: f64,
}

impl Default for GroupPlatoon {
    fn default() -> Self {
        GroupPlatoon {
            platoon_size: 4,
            jitter_s: 5.0,
        }
    }
}

impl GroupPlatoon {
    /// The platoon a client belongs to.
    pub fn platoon_of(&self, client: u32) -> u32 {
        client / self.platoon_size.max(1) as u32
    }

    /// The platoon's shared schedule: `(depart_s, gap_s, to)` legs, derived
    /// only from world-level state and the platoon id — identical for every
    /// member regardless of its home broker. The nominal route start is also
    /// platoon-derived; members not at a leg's implicit origin simply join
    /// the convoy at that leg's destination.
    pub fn shared_legs(&self, world: &MobilityWorld, platoon: u32) -> Vec<(f64, f64, u32)> {
        let count = world.broker_count();
        let mut rng = DetRng::new(
            world
                .scenario_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17)
                ^ (platoon as u64).wrapping_mul(0x50_6c61_746f_6f6e),
        );
        let mut legs = Vec::new();
        let mut clock = 0.0f64;
        let mut position = rng.index(count) as u32;
        // Leave room for the jitter so the last jittered arrival stays
        // in-horizon for every member.
        let horizon = world.horizon_s - self.jitter_s.max(0.0);
        loop {
            let dwell = rng.exponential(world.conn_mean_s).max(MIN_PERIOD_S);
            let gap = rng.exponential(world.disc_mean_s).max(MIN_PERIOD_S);
            let depart = clock + dwell;
            let arrive = depart + gap;
            if arrive >= horizon {
                break;
            }
            let to = random_other(&mut rng, position, count);
            legs.push((depart, gap, to));
            position = to;
            clock = arrive;
        }
        legs
    }
}

impl MobilityModel for GroupPlatoon {
    fn name(&self) -> &'static str {
        "group-platoon"
    }

    fn trace(&self, world: &MobilityWorld, client: u32, home: u32, seed: u64) -> MoveTrace {
        let mut tb = TraceBuilder::new(world, home);
        tb.proclaiming(true);
        if world.broker_count() >= 2 {
            // Every member replays the platoon's shared legs; the per-client
            // seed contributes only the departure jitter. The first leg
            // pulls each member from wherever it actually lives toward the
            // shared destination, after which the whole platoon is
            // co-located and moves in lockstep.
            let platoon = self.platoon_of(client);
            let jitter = DetRng::new(seed).range_f64(0.0, self.jitter_s.max(MIN_PERIOD_S));
            for (depart, gap, to) in self.shared_legs(world, platoon) {
                // `move_at` skips records that do not chain (e.g. a member
                // whose position already is the leg's destination skips that
                // self-move and picks the route up at the next leg).
                tb.move_at(depart + jitter, depart + jitter + gap, tb.position(), to);
            }
        }
        tb.finish()
    }
}

// ---------------------------------------------------------------------------
// Mix
// ---------------------------------------------------------------------------

/// A weighted mixture of mobility models: each client is assigned **one**
/// component for the whole run by a deterministic weighted draw keyed on
/// `(scenario_seed, client)`, then behaves exactly like that component.
/// This is how heterogeneous city workloads are described — e.g. the
/// `city-scale` preset mixes vehicle platoons (bulk proclaimed migrations)
/// with hotspot commuters (flash-crowd contention) in one population.
///
/// The assignment draw is independent of the per-client trace seed, so a
/// component model sees exactly the seed it would have seen running alone.
pub struct Mix {
    /// `(weight, model)` components; weights are relative (normalized over
    /// their sum) and non-positive weights drop the component.
    pub parts: Vec<(f64, Box<dyn MobilityModel>)>,
    /// Decorrelation salt for the assignment draw. A *nested* mixture must
    /// not reuse its parent's `(scenario_seed, client)` stream — the inner
    /// draw would be perfectly correlated with the outer one and starve
    /// components — so [`ModelKind::build`](crate::ModelKind::build) salts
    /// each nesting level with its depth. `0` for a top-level mixture.
    pub salt: u64,
}

impl Mix {
    /// Build a top-level mixture from weighted components.
    pub fn new(parts: Vec<(f64, Box<dyn MobilityModel>)>) -> Self {
        Mix { parts, salt: 0 }
    }

    /// Build a mixture whose assignment draw is decorrelated by `salt`
    /// (nested mixtures: pass the nesting depth).
    pub fn with_salt(salt: u64, parts: Vec<(f64, Box<dyn MobilityModel>)>) -> Self {
        Mix { parts, salt }
    }

    /// Which component moves `client` (index into `parts`), or `None` when
    /// the mixture is empty or all weights are non-positive.
    pub fn component_of(&self, world: &MobilityWorld, client: u32) -> Option<usize> {
        let total: f64 = self.parts.iter().map(|(w, _)| w.max(0.0)).sum();
        if total <= 0.0 {
            return None;
        }
        // One draw per client from a stream independent of the trace seeds
        // (and, via the salt, of any enclosing mixture's draw).
        let mut rng = DetRng::new(
            world.scenario_seed
                ^ (client as u64).wrapping_mul(0xA076_1D64_78BD_642F)
                ^ self.salt.wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        let mut x = rng.next_f64() * total;
        for (i, (w, _)) in self.parts.iter().enumerate() {
            let w = w.max(0.0);
            if x < w {
                return Some(i);
            }
            x -= w;
        }
        // Float rounding landed past the last positive weight.
        self.parts.iter().rposition(|(w, _)| *w > 0.0)
    }
}

impl MobilityModel for Mix {
    fn name(&self) -> &'static str {
        "mix"
    }

    fn trace(&self, world: &MobilityWorld, client: u32, home: u32, seed: u64) -> MoveTrace {
        match self.component_of(world, client) {
            Some(i) => self.parts[i].1.trace(world, client, home, seed),
            None => MoveTrace::default(),
        }
    }

    fn drives_all_clients(&self) -> bool {
        // Conservative answer for callers that only have the coarse flag; the
        // workload generator asks the precise per-client question below.
        self.parts.iter().any(|(_, m)| m.drives_all_clients())
    }

    fn drives_client(&self, world: &MobilityWorld, client: u32, mobile: bool) -> bool {
        // Ask the client's assigned component: a playback component drives
        // its recorded clients regardless of the mobile flag, while clients
        // assigned to a synthetic component stay bound by the sampled
        // mobile fraction (a mixture must not move more of the population
        // than its components would alone).
        match self.component_of(world, client) {
            Some(i) => self.parts[i].1.drives_client(world, client, mobile),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::validate_trace;

    fn world() -> MobilityWorld {
        MobilityWorld::grid(5, 30.0, 20.0, 2_000.0, 99)
    }

    /// A non-grid world of the same scale (scale-free, 25 brokers).
    fn scale_free_world() -> MobilityWorld {
        MobilityWorld {
            topology: std::sync::Arc::new(
                mhh_simnet::TopologyKind::ScaleFree { edges_per_node: 2 }.build(5, 99),
            ),
            ..world()
        }
    }

    fn all_models() -> Vec<Box<dyn MobilityModel>> {
        vec![
            Box::new(UniformRandom),
            Box::new(RandomWaypoint::default()),
            Box::new(ManhattanGrid),
            Box::new(HotspotCommuter::default()),
            Box::new(GroupPlatoon::default()),
            Box::new(TracePlayback::new(vec![
                TraceRecord {
                    at_s: 10.0,
                    client: 0,
                    from: 3,
                    to: 4,
                },
                TraceRecord {
                    at_s: 90.0,
                    client: 0,
                    from: 4,
                    to: 9,
                },
                TraceRecord {
                    at_s: 50.0,
                    client: 1,
                    from: 7,
                    to: 2,
                },
            ])),
        ]
    }

    #[test]
    fn every_model_produces_valid_nonempty_traces() {
        let w = world();
        for model in all_models() {
            let home = if model.name() == "trace-playback" {
                3
            } else {
                6
            };
            let t = model.trace(&w, 0, home, 42);
            assert!(!t.steps.is_empty(), "{} produced no moves", model.name());
            validate_trace(&w, home, &t)
                .unwrap_or_else(|e| panic!("{}: invalid trace: {e}", model.name()));
        }
    }

    #[test]
    fn waypoint_and_manhattan_only_hop_to_adjacent_brokers() {
        let w = world();
        for model in [
            Box::new(RandomWaypoint::default()) as Box<dyn MobilityModel>,
            Box::new(ManhattanGrid),
        ] {
            for seed in 0..5u64 {
                for s in model.trace(&w, 0, 12, seed).steps {
                    assert_eq!(
                        grid::manhattan(s.from, s.to, w.grid_side()),
                        1,
                        "{} hopped {} -> {}",
                        model.name(),
                        s.from,
                        s.to
                    );
                }
            }
        }
    }

    #[test]
    fn every_model_walks_non_grid_topologies() {
        let w = scale_free_world();
        for model in all_models() {
            let home = if model.name() == "trace-playback" {
                3
            } else {
                6
            };
            for seed in [7u64, 8, 9] {
                let t = model.trace(&w, 0, home, seed);
                assert!(!t.steps.is_empty(), "{}: no moves off-grid", model.name());
                validate_trace(&w, home, &t)
                    .unwrap_or_else(|e| panic!("{}: invalid off-grid trace: {e}", model.name()));
            }
        }
    }

    #[test]
    fn street_models_hop_along_topology_edges_off_grid() {
        // On a non-grid topology the waypoint walker and the street walker
        // must move through *physical adjacency*, one edge per handoff.
        let w = scale_free_world();
        for model in [
            Box::new(RandomWaypoint::default()) as Box<dyn MobilityModel>,
            Box::new(ManhattanGrid),
        ] {
            for seed in 0..5u64 {
                for s in model.trace(&w, 0, 12, seed).steps {
                    assert!(
                        w.neighbors(s.from).contains(&s.to),
                        "{} hopped {} -> {} across a non-edge",
                        model.name(),
                        s.from,
                        s.to
                    );
                }
            }
        }
    }

    #[test]
    fn hotspot_set_is_shared_and_deterministic() {
        let w = world();
        let m = HotspotCommuter { hotspots: 3 };
        assert_eq!(m.hotspot_set(&w), m.hotspot_set(&w));
        assert_eq!(m.hotspot_set(&w).len(), 3);
        // Commuters spend their away time at hotspots (or home).
        let spots = m.hotspot_set(&w);
        for seed in 0..4u64 {
            for s in m.trace(&w, 0, 6, seed).steps {
                assert!(
                    s.to == 6 || spots.contains(&s.to),
                    "commuter visited non-hotspot {}",
                    s.to
                );
            }
        }
    }

    #[test]
    fn hotspot_degenerate_single_broker_world_is_empty() {
        let w = MobilityWorld::grid(1, 30.0, 20.0, 2_000.0, 99);
        for model in all_models() {
            assert!(model.trace(&w, 0, 0, 7).is_empty(), "{}", model.name());
        }
    }

    #[test]
    fn proclamation_follows_the_model() {
        let w = world();
        // Predictable movement proclaims every step; unpredictable movement
        // and external playback never do.
        for (model, expect) in [
            (Box::new(ManhattanGrid) as Box<dyn MobilityModel>, true),
            (Box::new(RandomWaypoint::default()), true),
            (Box::new(GroupPlatoon::default()), true),
            (Box::new(UniformRandom), false),
            (Box::new(HotspotCommuter::default()), false),
        ] {
            let t = model.trace(&w, 0, 6, 9);
            assert!(!t.steps.is_empty(), "{}", model.name());
            assert!(
                t.steps.iter().all(|s| s.proclaimed == expect),
                "{}: expected proclaimed={expect}",
                model.name()
            );
        }
    }

    #[test]
    fn platoon_members_share_destinations_with_jittered_departures() {
        let w = world();
        let m = GroupPlatoon {
            platoon_size: 3,
            jitter_s: 4.0,
        };
        // Clients 0..3 form platoon 0; same homes or not, after the first
        // leg they visit the same broker sequence.
        let a = m.trace(&w, 0, 6, 1);
        let b = m.trace(&w, 1, 6, 2);
        let dests_a: Vec<u32> = a.steps.iter().map(|s| s.to).collect();
        let dests_b: Vec<u32> = b.steps.iter().map(|s| s.to).collect();
        assert_eq!(dests_a, dests_b, "same platoon, same route");
        assert!(!dests_a.is_empty());
        // Departures differ only by the members' jitter (bounded by jitter_s).
        for (sa, sb) in a.steps.iter().zip(&b.steps) {
            assert!((sa.depart_s - sb.depart_s).abs() <= m.jitter_s);
            assert_ne!(sa.depart_s, sb.depart_s, "distinct jitter per member");
        }
        // A member of another platoon travels a different route.
        let other = m.trace(&w, 7, 6, 3);
        let dests_other: Vec<u32> = other.steps.iter().map(|s| s.to).collect();
        assert_ne!(dests_a, dests_other, "platoon 2 has its own trajectory");
        // A member whose home differs joins the convoy at the first leg and
        // is co-located from then on.
        let far = m.trace(&w, 2, 13, 4);
        let dests_far: Vec<u32> = far.steps.iter().map(|s| s.to).collect();
        assert_eq!(dests_a, dests_far);
        validate_trace(&w, 13, &far).expect("platoon trace valid");
    }

    #[test]
    fn playback_replays_under_zero_disconnection_gap() {
        let w = MobilityWorld {
            disc_mean_s: 0.0,
            ..world()
        };
        let m = TracePlayback::new(vec![TraceRecord {
            at_s: 10.0,
            client: 0,
            from: 3,
            to: 4,
        }]);
        let t = m.trace(&w, 0, 3, 0);
        assert_eq!(t.steps.len(), 1, "zero gap must clamp, not drop");
        assert!(t.steps[0].arrive_s > t.steps[0].depart_s);
    }

    #[test]
    fn playback_skips_nonchaining_records_and_drives_all_clients() {
        let w = world();
        let m = TracePlayback::new(vec![
            TraceRecord {
                at_s: 10.0,
                client: 0,
                from: 3,
                to: 4,
            },
            TraceRecord {
                at_s: 20.0,
                client: 0,
                from: 9,
                to: 5,
            }, // wrong from
            TraceRecord {
                at_s: 60.0,
                client: 0,
                from: 4,
                to: 4,
            }, // self-move
            TraceRecord {
                at_s: 80.0,
                client: 0,
                from: 4,
                to: 8,
            },
        ]);
        let t = m.trace(&w, 0, 3, 0);
        assert_eq!(t.steps.len(), 2);
        assert_eq!(t.steps[1].to, 8);
        assert!(m.drives_all_clients());
        assert!(!UniformRandom.drives_all_clients());
        // Clients with no records do not move.
        assert!(m.trace(&w, 5, 0, 0).is_empty());
    }

    #[test]
    fn mix_assigns_each_client_one_component_deterministically() {
        let w = world();
        let mix = Mix::new(vec![
            (
                0.5,
                Box::new(GroupPlatoon::default()) as Box<dyn MobilityModel>,
            ),
            (0.5, Box::new(HotspotCommuter::default())),
        ]);
        let mut counts = [0usize; 2];
        for client in 0..200u32 {
            let c = mix.component_of(&w, client).expect("positive weights");
            counts[c] += 1;
            assert_eq!(
                mix.component_of(&w, client),
                Some(c),
                "assignment must be deterministic"
            );
            // The trace is exactly the assigned component's trace.
            let got = mix.trace(&w, client, client % 25, 7 + client as u64);
            let want = if c == 0 {
                GroupPlatoon::default().trace(&w, client, client % 25, 7 + client as u64)
            } else {
                HotspotCommuter::default().trace(&w, client, client % 25, 7 + client as u64)
            };
            assert_eq!(got, want);
            assert!(validate_trace(&w, client % 25, &got).is_ok());
        }
        // Both components actually occur at ~even weights.
        assert!(counts[0] > 50 && counts[1] > 50, "skewed split: {counts:?}");
        assert!(!mix.drives_all_clients());
    }

    #[test]
    fn mix_weights_shift_the_split_and_degenerate_cases_are_safe() {
        let w = world();
        let lopsided = Mix::new(vec![
            (9.0, Box::new(UniformRandom) as Box<dyn MobilityModel>),
            (1.0, Box::new(ManhattanGrid)),
        ]);
        let uniform_share = (0..300u32)
            .filter(|&c| lopsided.component_of(&w, c) == Some(0))
            .count();
        assert!(uniform_share > 230, "9:1 weights, got {uniform_share}/300");
        // Non-positive weights drop components; all-dropped moves nobody.
        let dead = Mix::new(vec![(
            0.0,
            Box::new(UniformRandom) as Box<dyn MobilityModel>,
        )]);
        assert_eq!(dead.component_of(&w, 3), None);
        assert!(dead.trace(&w, 3, 0, 1).is_empty());
        let skewed = Mix::new(vec![
            (-1.0, Box::new(UniformRandom) as Box<dyn MobilityModel>),
            (2.0, Box::new(ManhattanGrid)),
        ]);
        assert_eq!(skewed.component_of(&w, 11), Some(1));
    }

    #[test]
    fn mix_with_playback_component_drives_all_clients() {
        let mix = Mix::new(vec![
            (1.0, Box::new(UniformRandom) as Box<dyn MobilityModel>),
            (
                1.0,
                Box::new(TracePlayback::new(vec![TraceRecord {
                    at_s: 10.0,
                    client: 0,
                    from: 0,
                    to: 1,
                }])),
            ),
        ]);
        assert!(mix.drives_all_clients());
        assert_eq!(mix.name(), "mix");
    }

    /// A playback component must not smuggle the whole synthetic half of a
    /// mixture past the mobile fraction: per client, only the *assigned*
    /// component's answer counts.
    #[test]
    fn mix_with_playback_keeps_synthetic_clients_bound_by_the_mobile_flag() {
        let w = world();
        let mix = Mix::new(vec![
            (1.0, Box::new(UniformRandom) as Box<dyn MobilityModel>),
            (
                1.0,
                Box::new(TracePlayback::new(vec![TraceRecord {
                    at_s: 10.0,
                    client: 0,
                    from: 0,
                    to: 1,
                }])),
            ),
        ]);
        let mut playback_assigned = 0;
        for client in 0..100u32 {
            let assigned = mix.component_of(&w, client).unwrap();
            playback_assigned += usize::from(assigned == 1);
            // Non-mobile clients are consulted only when their assigned
            // component is the playback; mobile clients always are.
            assert_eq!(mix.drives_client(&w, client, false), assigned == 1);
            assert!(mix.drives_client(&w, client, true));
        }
        assert!(playback_assigned > 0, "split must hit both components");
        // A pure-synthetic mixture never overrides the mobile flag.
        let synthetic = Mix::new(vec![
            (1.0, Box::new(UniformRandom) as Box<dyn MobilityModel>),
            (1.0, Box::new(ManhattanGrid)),
        ]);
        assert!((0..100).all(|c| !synthetic.drives_client(&w, c, false)));
    }

    /// A nested mixture's assignment draw must be independent of the outer
    /// one: without the depth salt, every client routed into the inner mix
    /// carries a correlated draw and one inner component is starved.
    #[test]
    fn nested_mix_components_are_not_starved() {
        use crate::ModelKind;
        let w = world();
        let kind = ModelKind::mix(vec![
            (0.5, ModelKind::UniformRandom),
            (
                0.5,
                ModelKind::mix(vec![
                    (0.5, ModelKind::ManhattanGrid),
                    (0.5, ModelKind::HotspotCommuter { hotspots: 3 }),
                ]),
            ),
        ]);
        let model = kind.build();
        // Distinguish which leaf moved each client by the trace it produces.
        let outer_uniform = UniformRandom;
        let inner_manhattan = ManhattanGrid;
        let (mut uniform, mut manhattan, mut hotspot) = (0, 0, 0);
        for client in 0..400u32 {
            let seed = 1000 + client as u64;
            let got = model.trace(&w, client, client % 25, seed);
            if got == outer_uniform.trace(&w, client, client % 25, seed) {
                uniform += 1;
            } else if got == inner_manhattan.trace(&w, client, client % 25, seed) {
                manhattan += 1;
            } else {
                hotspot += 1;
            }
        }
        // Expected ~200/100/100; the starvation bug made one inner count 0.
        assert!(
            uniform > 120 && manhattan > 40 && hotspot > 40,
            "skewed nested split: uniform={uniform} manhattan={manhattan} hotspot={hotspot}"
        );
    }
}
