//! [`ModelKind`] — the cheap, cloneable *description* of a mobility model
//! that scenario configurations carry. `build()` turns the description into
//! a live [`MobilityModel`].

use std::sync::Arc;

use crate::models::{
    GroupPlatoon, HotspotCommuter, ManhattanGrid, Mix, RandomWaypoint, TracePlayback, TraceRecord,
    UniformRandom,
};
use crate::trace::MobilityModel;

/// Which mobility model a scenario runs, with its parameters.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum ModelKind {
    /// Uniform random broker-to-broker jumps (the paper's pattern).
    #[default]
    UniformRandom,
    /// Walk to random waypoints via grid-adjacent hops, pausing on arrival.
    RandomWaypoint {
        /// Mean pause length at a reached waypoint, in seconds.
        pause_mean_s: f64,
    },
    /// Street-grid movement between physically adjacent brokers.
    ManhattanGrid,
    /// Oscillation between the home broker and a shared hotspot set.
    HotspotCommuter {
        /// Number of hotspot brokers shared by all commuters.
        hotspots: usize,
    },
    /// Platoons sharing one trajectory with jittered departures (bulk
    /// migration to the same destination broker).
    GroupPlatoon {
        /// Clients per platoon (by contiguous client index).
        platoon_size: usize,
        /// Maximum per-client departure jitter in seconds.
        jitter_s: f64,
    },
    /// Replay of an explicit `(time, client, from, to)` move list.
    TracePlayback(Arc<Vec<TraceRecord>>),
    /// A weighted mixture: each client is deterministically assigned one
    /// component model for the whole run (heterogeneous populations, e.g.
    /// the `city-scale` preset's platoon + hotspot mix).
    Mix(Arc<Vec<(f64, ModelKind)>>),
}

impl ModelKind {
    /// Instantiate the described model.
    pub fn build(&self) -> Box<dyn MobilityModel> {
        self.build_at(0)
    }

    /// [`build`](Self::build) at a mixture nesting depth: each nested `Mix`
    /// salts its per-client assignment draw with its depth, so an inner
    /// mixture's draw is independent of the outer one (identical streams
    /// would starve inner components — every client reaching the inner mix
    /// would carry a correlated draw).
    fn build_at(&self, depth: u64) -> Box<dyn MobilityModel> {
        match self {
            ModelKind::UniformRandom => Box::new(UniformRandom),
            ModelKind::RandomWaypoint { pause_mean_s } => Box::new(RandomWaypoint {
                pause_mean_s: *pause_mean_s,
            }),
            ModelKind::ManhattanGrid => Box::new(ManhattanGrid),
            ModelKind::HotspotCommuter { hotspots } => Box::new(HotspotCommuter {
                hotspots: *hotspots,
            }),
            ModelKind::GroupPlatoon {
                platoon_size,
                jitter_s,
            } => Box::new(GroupPlatoon {
                platoon_size: *platoon_size,
                jitter_s: *jitter_s,
            }),
            // Through the constructor so the records are time-sorted even
            // when the config was built from an unsorted list.
            ModelKind::TracePlayback(records) => {
                Box::new(TracePlayback::new(records.as_ref().clone()))
            }
            ModelKind::Mix(parts) => Box::new(Mix::with_salt(
                depth,
                parts
                    .iter()
                    .map(|(w, k)| (*w, k.build_at(depth + 1)))
                    .collect(),
            )),
        }
    }

    /// The model's label (same as the built model's
    /// [`name`](MobilityModel::name)), used in reports and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::UniformRandom => "uniform-random",
            ModelKind::RandomWaypoint { .. } => "random-waypoint",
            ModelKind::ManhattanGrid => "manhattan-grid",
            ModelKind::HotspotCommuter { .. } => "hotspot-commuter",
            ModelKind::GroupPlatoon { .. } => "group-platoon",
            ModelKind::TracePlayback(_) => "trace-playback",
            ModelKind::Mix(_) => "mix",
        }
    }

    /// A weighted mixture of the given `(weight, kind)` components.
    pub fn mix(parts: Vec<(f64, ModelKind)>) -> ModelKind {
        ModelKind::Mix(Arc::new(parts))
    }

    /// The five synthetic models with default parameters (everything except
    /// trace playback, which needs explicit records). The matrix experiments
    /// iterate over these.
    pub fn synthetic() -> Vec<ModelKind> {
        vec![
            ModelKind::UniformRandom,
            ModelKind::RandomWaypoint { pause_mean_s: 60.0 },
            ModelKind::ManhattanGrid,
            ModelKind::HotspotCommuter { hotspots: 3 },
            ModelKind::GroupPlatoon {
                platoon_size: 4,
                jitter_s: 5.0,
            },
        ]
    }
}

/// Display renders the *parameter point*, not just the kind: two
/// `RandomWaypoint`s with different pause times format differently, which is
/// what lets experiment matrices key rows by `ModelKind` and still print
/// unambiguous tables. Parameter-free kinds format as their plain label.
impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelKind::UniformRandom | ModelKind::ManhattanGrid => f.write_str(self.label()),
            ModelKind::RandomWaypoint { pause_mean_s } => {
                write!(f, "{}(pause={pause_mean_s}s)", self.label())
            }
            ModelKind::HotspotCommuter { hotspots } => {
                write!(f, "{}(hotspots={hotspots})", self.label())
            }
            ModelKind::GroupPlatoon {
                platoon_size,
                jitter_s,
            } => {
                write!(
                    f,
                    "{}(size={platoon_size},jitter={jitter_s}s)",
                    self.label()
                )
            }
            ModelKind::TracePlayback(records) => {
                write!(f, "{}(n={})", self.label(), records.len())
            }
            ModelKind::Mix(parts) => {
                write!(f, "{}(", self.label())?;
                for (i, (w, kind)) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{kind}:{w}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_built_model_names() {
        let playback = ModelKind::TracePlayback(Arc::new(vec![]));
        let mut kinds = ModelKind::synthetic();
        kinds.push(playback);
        for kind in kinds {
            assert_eq!(kind.label(), kind.build().name());
        }
    }

    #[test]
    fn default_is_the_papers_model() {
        assert_eq!(ModelKind::default(), ModelKind::UniformRandom);
        assert_eq!(ModelKind::default().label(), "uniform-random");
    }

    #[test]
    fn display_distinguishes_parameter_points() {
        assert_eq!(ModelKind::UniformRandom.to_string(), "uniform-random");
        assert_eq!(
            ModelKind::RandomWaypoint { pause_mean_s: 60.0 }.to_string(),
            "random-waypoint(pause=60s)"
        );
        assert_ne!(
            ModelKind::RandomWaypoint { pause_mean_s: 60.0 }.to_string(),
            ModelKind::RandomWaypoint {
                pause_mean_s: 120.0
            }
            .to_string()
        );
        assert_eq!(
            ModelKind::HotspotCommuter { hotspots: 3 }.to_string(),
            "hotspot-commuter(hotspots=3)"
        );
        assert_eq!(
            ModelKind::GroupPlatoon {
                platoon_size: 4,
                jitter_s: 5.0
            }
            .to_string(),
            "group-platoon(size=4,jitter=5s)"
        );
        assert_eq!(
            ModelKind::TracePlayback(Arc::new(vec![])).to_string(),
            "trace-playback(n=0)"
        );
    }

    #[test]
    fn mix_kind_builds_and_displays_components() {
        let mix = ModelKind::mix(vec![
            (
                0.5,
                ModelKind::GroupPlatoon {
                    platoon_size: 8,
                    jitter_s: 10.0,
                },
            ),
            (0.5, ModelKind::HotspotCommuter { hotspots: 5 }),
        ]);
        assert_eq!(mix.label(), "mix");
        assert_eq!(mix.build().name(), "mix");
        assert_eq!(
            mix.to_string(),
            "mix(group-platoon(size=8,jitter=10s):0.5,hotspot-commuter(hotspots=5):0.5)"
        );
        // Parameter points stay distinguishable through the mixture.
        let other = ModelKind::mix(vec![(1.0, ModelKind::ManhattanGrid)]);
        assert_ne!(mix.to_string(), other.to_string());
        assert_eq!(other.to_string(), "mix(manhattan-grid:1)");
    }

    #[test]
    fn synthetic_covers_five_distinct_models() {
        let labels: Vec<_> = ModelKind::synthetic().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 5);
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(dedup, labels);
        assert!(labels.contains(&"group-platoon"));
    }
}
