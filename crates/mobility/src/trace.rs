//! The [`MobilityModel`] trait, the move-trace data model and the
//! invariant-enforcing [`TraceBuilder`].

use std::sync::Arc;

use mhh_simnet::{Network, TopologyKind};

/// Static description of the world a model moves clients through.
///
/// Everything a model may depend on is in here (plus the per-call seed), so
/// traces are pure functions of `(world, client, home, seed)`. The world
/// carries the broker [`Network`] itself — built once per run and shared
/// with the deployment — so models move via topology neighbor queries and
/// work on any graph, not just the paper's grid.
#[derive(Debug, Clone)]
pub struct MobilityWorld {
    /// The broker network clients move across (physical adjacency decides
    /// what "walking to the next cell" means for street-style models).
    pub topology: Arc<Network>,
    /// Mean connection-period length in seconds (how long a client lingers
    /// at a broker before moving; exponentially distributed where sampled).
    pub conn_mean_s: f64,
    /// Mean disconnection-period length in seconds (how long a move takes).
    pub disc_mean_s: f64,
    /// Simulation horizon in seconds; every emitted step finishes before it.
    pub horizon_s: f64,
    /// The scenario's master seed. Shared, world-level randomness (e.g. the
    /// hotspot set every commuter agrees on) derives from this, never from
    /// the per-client seed.
    pub scenario_seed: u64,
}

impl MobilityWorld {
    /// Convenience constructor for the paper's k×k grid world (the network
    /// is built from `scenario_seed`, matching what the harness deploys).
    pub fn grid(
        grid_side: usize,
        conn_mean_s: f64,
        disc_mean_s: f64,
        horizon_s: f64,
        scenario_seed: u64,
    ) -> Self {
        MobilityWorld {
            topology: Arc::new(Network::grid(grid_side, scenario_seed)),
            conn_mean_s,
            disc_mean_s,
            horizon_s,
            scenario_seed,
        }
    }

    /// Number of brokers.
    pub fn broker_count(&self) -> usize {
        self.topology.broker_count()
    }

    /// True when the world is the paper's plain k×k grid; grid-specific
    /// movement (heading math, Manhattan steps) applies only then and keeps
    /// its pre-refactor RNG streams byte for byte.
    pub fn is_grid(&self) -> bool {
        self.topology.is_grid()
    }

    /// Grid side length (meaningful for the grid family; the build hint
    /// otherwise).
    pub fn grid_side(&self) -> usize {
        self.topology.side
    }

    /// Physical neighbors of a broker on the topology, in deterministic
    /// adjacency order.
    pub fn neighbors(&self, b: u32) -> Vec<u32> {
        self.topology
            .neighbors(b as usize)
            .map(|n| n as u32)
            .collect()
    }

    /// Shortest-path hop distance between two brokers on the physical
    /// graph.
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        self.topology.grid_distance(a as usize, b as usize)
    }

    /// The label of the topology kind this world runs on.
    pub fn topology_kind(&self) -> &TopologyKind {
        &self.topology.kind
    }
}

/// One move of one client: disconnect from `from` at `depart_s`, reconnect
/// at broker `to` at `arrive_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveStep {
    /// Disconnection time (seconds since simulation start).
    pub depart_s: f64,
    /// Reconnection time; strictly greater than `depart_s`.
    pub arrive_s: f64,
    /// The broker the client leaves.
    pub from: u32,
    /// The broker the client reattaches to; never equal to `from`.
    pub to: u32,
    /// Whether the model considers this move *predictable*: the client knows
    /// `to` before departing and can proclaim it to the departure broker
    /// (the paper's §4.1 proclaimed handoff). Street-grid and platoon moves
    /// are predictable; flash-crowd and replayed moves are not.
    pub proclaimed: bool,
}

/// A client's complete mobility schedule: the completed moves plus,
/// possibly, a final departure whose return would have fallen past the
/// horizon — the client ends the run disconnected, matching the paper's
/// steady state where some clients are mid-disconnection when the
/// simulation stops.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MoveTrace {
    /// Completed disconnect/reconnect pairs, in time order.
    pub steps: Vec<MoveStep>,
    /// Time of a trailing disconnect with no in-horizon reconnect, if any.
    pub park_depart_s: Option<f64>,
}

impl MoveTrace {
    /// True when the client never moves (and never parks).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty() && self.park_depart_s.is_none()
    }
}

/// A pluggable mobility pattern.
///
/// Implementations must be deterministic: two calls to [`trace`] with equal
/// arguments return equal vectors. Building traces through [`TraceBuilder`]
/// guarantees the structural invariants (chained positions, no self-moves,
/// monotone times inside the horizon).
///
/// [`trace`]: MobilityModel::trace
pub trait MobilityModel: Send + Sync {
    /// Short machine-friendly name, used to label experiment results.
    fn name(&self) -> &'static str;

    /// Generate the full move trace of one client.
    ///
    /// * `client` — the client's index (stable across runs).
    /// * `home` — the broker the client starts at.
    /// * `seed` — per-client random seed; the only source of randomness
    ///   besides `world.scenario_seed`.
    fn trace(&self, world: &MobilityWorld, client: u32, home: u32, seed: u64) -> MoveTrace;

    /// Whether the workload generator should consult this model for *every*
    /// client rather than only the mobile fraction. Trace playback returns
    /// `true`: the replayed move list, not the sampled mobile flag, decides
    /// who moves.
    fn drives_all_clients(&self) -> bool {
        false
    }

    /// Whether the workload generator should consult this model for *this*
    /// client, given the client's sampled mobile flag. The default —
    /// `mobile || drives_all_clients()` — is what the generator historically
    /// inlined; [`Mix`](crate::models::Mix) overrides it to ask the client's
    /// *assigned component*, so a playback component drives exactly its
    /// recorded clients while synthetic components keep honouring the
    /// sampled mobile fraction.
    fn drives_client(&self, world: &MobilityWorld, client: u32, mobile: bool) -> bool {
        let _ = (world, client);
        mobile || self.drives_all_clients()
    }
}

/// Minimum dwell/gap length in seconds; keeps successive times strictly
/// increasing even when an exponential sample is ~0.
pub const MIN_PERIOD_S: f64 = 0.001;

/// Accumulates [`MoveStep`]s while enforcing every trace invariant.
#[derive(Debug)]
pub struct TraceBuilder<'w> {
    world: &'w MobilityWorld,
    position: u32,
    clock_s: f64,
    steps: Vec<MoveStep>,
    parked: Option<f64>,
    proclaiming: bool,
}

impl<'w> TraceBuilder<'w> {
    /// Start a trace for a client currently at `home` at time zero.
    pub fn new(world: &'w MobilityWorld, home: u32) -> Self {
        TraceBuilder {
            world,
            position: home,
            clock_s: 0.0,
            steps: Vec::new(),
            parked: None,
            proclaiming: false,
        }
    }

    /// Declare whether subsequently recorded steps are predictable
    /// (proclaimed) moves. Models whose next destination is known before
    /// departure (street grids, platoons, waypoint walks) set this once
    /// after construction; it defaults to `false` (silent moves, §4.2).
    pub fn proclaiming(&mut self, proclaiming: bool) -> &mut Self {
        self.proclaiming = proclaiming;
        self
    }

    /// The broker the client is currently at.
    pub fn position(&self) -> u32 {
        self.position
    }

    /// The current time (arrival time of the last step, or 0).
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Append a move: linger at the current broker for `dwell_s`, then spend
    /// `gap_s` disconnected, reappearing at `to`. Returns `false` — without
    /// recording the step — when the move would not finish before the
    /// horizon, which is the model's signal to stop; if the *departure*
    /// still fits, it is recorded as the trace's final park (the client
    /// leaves and never returns in-horizon).
    ///
    /// # Panics
    /// Panics when `to` is the current broker (self-move) or out of range;
    /// those are model bugs, not data conditions.
    pub fn move_after(&mut self, dwell_s: f64, gap_s: f64, to: u32) -> bool {
        if self.parked.is_some() {
            return false;
        }
        assert_ne!(to, self.position, "mobility model emitted a self-move");
        assert!(
            (to as usize) < self.world.broker_count(),
            "mobility model emitted an out-of-range broker {to}"
        );
        let depart = self.clock_s + dwell_s.max(MIN_PERIOD_S);
        let arrive = depart + gap_s.max(MIN_PERIOD_S);
        if arrive >= self.world.horizon_s {
            if depart < self.world.horizon_s {
                self.parked = Some(depart);
            }
            return false;
        }
        self.steps.push(MoveStep {
            depart_s: depart,
            arrive_s: arrive,
            from: self.position,
            to,
            proclaimed: self.proclaiming,
        });
        self.position = to;
        self.clock_s = arrive;
        true
    }

    /// Like [`move_after`](Self::move_after) but at absolute times, for
    /// playback-style models. Returns `false` and records nothing when the
    /// step is unusable: departs before the current clock or at/after the
    /// horizon, is a self-move, starts from a broker other than the current
    /// position, or targets an out-of-range broker. (Playback data is
    /// external input, so bad records are skipped, not panicked on.) A
    /// record that departs in-horizon but arrives past it parks the client,
    /// like [`move_after`](Self::move_after).
    pub fn move_at(&mut self, depart_s: f64, arrive_s: f64, from: u32, to: u32) -> bool {
        if self.parked.is_some()
            || from != self.position
            || to == from
            || (to as usize) >= self.world.broker_count()
            || depart_s <= self.clock_s
            || depart_s >= self.world.horizon_s
            || arrive_s <= depart_s
        {
            return false;
        }
        if arrive_s >= self.world.horizon_s {
            self.parked = Some(depart_s);
            return false;
        }
        self.steps.push(MoveStep {
            depart_s,
            arrive_s,
            from,
            to,
            proclaimed: self.proclaiming,
        });
        self.position = to;
        self.clock_s = arrive_s;
        true
    }

    /// Finish and return the trace.
    pub fn finish(self) -> MoveTrace {
        MoveTrace {
            steps: self.steps,
            park_depart_s: self.parked,
        }
    }
}

/// Check every structural invariant of a trace against a world; returns a
/// description of the first violation. Used by the property tests and
/// available to downstream consumers validating external traces.
pub fn validate_trace(world: &MobilityWorld, home: u32, trace: &MoveTrace) -> Result<(), String> {
    let mut position = home;
    let mut clock = 0.0f64;
    for (i, s) in trace.steps.iter().enumerate() {
        if s.from != position {
            return Err(format!(
                "step {i}: from {} but client is at {position}",
                s.from
            ));
        }
        if s.to == s.from {
            return Err(format!("step {i}: self-move at broker {}", s.from));
        }
        if s.to as usize >= world.broker_count() {
            return Err(format!("step {i}: broker {} out of range", s.to));
        }
        if s.depart_s <= clock {
            return Err(format!(
                "step {i}: departs at {} before clock {clock}",
                s.depart_s
            ));
        }
        if s.arrive_s <= s.depart_s {
            return Err(format!("step {i}: arrives before departing"));
        }
        if s.arrive_s >= world.horizon_s {
            return Err(format!("step {i}: arrives after the horizon"));
        }
        position = s.to;
        clock = s.arrive_s;
    }
    if let Some(park) = trace.park_depart_s {
        if park <= clock {
            return Err(format!("park departs at {park} before clock {clock}"));
        }
        if park >= world.horizon_s {
            return Err(format!("park departs at {park} after the horizon"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> MobilityWorld {
        MobilityWorld::grid(3, 10.0, 5.0, 100.0, 1)
    }

    #[test]
    fn builder_chains_positions_and_times() {
        let w = world();
        let mut tb = TraceBuilder::new(&w, 0);
        assert!(tb.move_after(10.0, 5.0, 1));
        assert!(tb.move_after(10.0, 5.0, 4));
        let trace = tb.finish();
        assert_eq!(trace.steps.len(), 2);
        assert_eq!(trace.steps[0].from, 0);
        assert_eq!(trace.steps[0].to, 1);
        assert_eq!(trace.steps[1].from, 1);
        assert_eq!(trace.steps[1].to, 4);
        assert!(trace.steps[0].arrive_s < trace.steps[1].depart_s);
        assert_eq!(trace.park_depart_s, None);
        assert!(validate_trace(&w, 0, &trace).is_ok());
    }

    #[test]
    fn refused_step_with_in_horizon_departure_parks_the_client() {
        let w = world();
        let mut tb = TraceBuilder::new(&w, 0);
        // Departs at 98 (< 100) but would return at 103: the client leaves
        // and never comes back — v0's trailing disconnect.
        assert!(!tb.move_after(98.0, 5.0, 1));
        // Once parked, nothing more is accepted.
        assert!(!tb.move_after(0.5, 0.5, 1));
        let trace = tb.finish();
        assert!(trace.steps.is_empty());
        assert_eq!(trace.park_depart_s, Some(98.0));
        assert!(validate_trace(&w, 0, &trace).is_ok());
    }

    #[test]
    fn builder_refuses_steps_entirely_past_the_horizon() {
        let w = world();
        let mut tb = TraceBuilder::new(&w, 0);
        assert!(!tb.move_after(150.0, 5.0, 1));
        assert!(tb.finish().is_empty());
    }

    #[test]
    fn proclaiming_stamps_subsequent_steps() {
        let w = world();
        let mut tb = TraceBuilder::new(&w, 0);
        assert!(tb.move_after(5.0, 2.0, 1), "silent by default");
        tb.proclaiming(true);
        assert!(tb.move_after(5.0, 2.0, 4));
        assert!(tb.move_at(30.0, 32.0, 4, 7));
        let trace = tb.finish();
        assert_eq!(
            trace.steps.iter().map(|s| s.proclaimed).collect::<Vec<_>>(),
            vec![false, true, true]
        );
        assert!(validate_trace(&w, 0, &trace).is_ok());
    }

    #[test]
    #[should_panic(expected = "self-move")]
    fn builder_panics_on_self_move() {
        let w = world();
        let mut tb = TraceBuilder::new(&w, 0);
        tb.move_after(1.0, 1.0, 0);
    }

    #[test]
    fn move_at_skips_bad_records() {
        let w = world();
        let mut tb = TraceBuilder::new(&w, 0);
        assert!(!tb.move_at(1.0, 2.0, 5, 1), "wrong from");
        assert!(!tb.move_at(1.0, 2.0, 0, 0), "self move");
        assert!(!tb.move_at(1.0, 2.0, 0, 99), "out of range");
        assert!(tb.move_at(1.0, 2.0, 0, 3));
        assert!(!tb.move_at(1.5, 2.5, 3, 4), "departs before clock");
        assert!(
            !tb.move_at(200.0, 201.0, 3, 4),
            "departure past horizon is skipped, not parked"
        );
        assert!(!tb.move_at(99.5, 100.5, 3, 4), "arrival past horizon parks");
        let trace = tb.finish();
        assert_eq!(trace.steps.len(), 1);
        assert_eq!(trace.park_depart_s, Some(99.5));
    }

    #[test]
    fn validate_trace_reports_violations() {
        let w = world();
        let bad = MoveTrace {
            steps: vec![MoveStep {
                depart_s: 1.0,
                arrive_s: 2.0,
                from: 3,
                to: 4,
                proclaimed: false,
            }],
            park_depart_s: None,
        };
        assert!(validate_trace(&w, 0, &bad).is_err());
        assert!(validate_trace(&w, 3, &bad).is_ok());
        let bad_park = MoveTrace {
            park_depart_s: Some(1.5),
            ..bad.clone()
        };
        assert!(
            validate_trace(&w, 3, &bad_park).is_err(),
            "park before last arrival"
        );
    }
}
