//! Parse `(time, client, from, to)` move lists from CSV / whitespace text
//! into [`TraceRecord`]s — the import path for real-world (CRAWDAD-style)
//! traces into [`TracePlayback`](crate::models::TracePlayback).
//!
//! ## Accepted format
//!
//! One record per line, four fields: departure time in seconds (float),
//! client index, origin broker, destination broker. Fields are separated by
//! commas and/or whitespace, so `12.5,3,0,4`, `12.5, 3, 0, 4` and
//! `12.5 3 0 4` all parse to the same record. Blank lines and lines starting
//! with `#` are skipped; a single leading header line of field names (e.g.
//! `time,client,from,to`) is skipped too.
//!
//! Errors carry the 1-based line number and the offending text, so a typo in
//! a 100k-line trace file points straight at the line.

use std::fmt;

use crate::models::TraceRecord;

/// A parse failure, pinned to its input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

fn fields(line: &str) -> Vec<&str> {
    line.split(|c: char| c == ',' || c.is_whitespace())
        .filter(|f| !f.is_empty())
        .collect()
}

fn looks_like_header(fields: &[&str]) -> bool {
    // A header names the columns; none of its fields parse as a number.
    fields.iter().all(|f| f.parse::<f64>().is_err())
}

/// Parse a whole trace document into records (in file order; the
/// [`TracePlayback`](crate::models::TracePlayback) constructor time-sorts).
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, TraceParseError> {
    let mut records = Vec::new();
    let mut first_content = true;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let parts = fields(trimmed);
        // Exactly one leading header line is tolerated; a second
        // non-numeric line is a format error, not more header.
        if std::mem::take(&mut first_content) && looks_like_header(&parts) {
            continue;
        }
        if parts.len() != 4 {
            return Err(TraceParseError {
                line,
                message: format!(
                    "expected 4 fields (time, client, from, to), found {}: {trimmed:?}",
                    parts.len()
                ),
            });
        }
        let err = |field: &str, value: &str| TraceParseError {
            line,
            message: format!("bad {field} value {value:?} in {trimmed:?}"),
        };
        let at_s: f64 = parts[0].parse().map_err(|_| err("time", parts[0]))?;
        if !at_s.is_finite() || at_s < 0.0 {
            return Err(err("time", parts[0]));
        }
        let client: u32 = parts[1].parse().map_err(|_| err("client", parts[1]))?;
        let from: u32 = parts[2].parse().map_err(|_| err("from", parts[2]))?;
        let to: u32 = parts[3].parse().map_err(|_| err("to", parts[3]))?;
        records.push(TraceRecord {
            at_s,
            client,
            from,
            to,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_csv_whitespace_comments_and_header() {
        let text = "\
# CRAWDAD-style export
time,client,from,to
40.0,0,0,3
110.5, 0, 3, 6

75 7 7 4
";
        let records = parse_trace(text).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[0],
            TraceRecord {
                at_s: 40.0,
                client: 0,
                from: 0,
                to: 3
            }
        );
        assert_eq!(records[1].at_s, 110.5);
        assert_eq!(records[2].client, 7);
    }

    #[test]
    fn empty_and_comment_only_inputs_parse_to_nothing() {
        assert!(parse_trace("").unwrap().is_empty());
        assert!(parse_trace("# only a comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn errors_carry_the_line_number() {
        let text = "time,client,from,to\n1.0,0,0,3\n2.0,0,3\n";
        let e = parse_trace(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("expected 4 fields"), "{e}");

        let e = parse_trace("1.0,zero,0,3").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("client"), "{e}");

        let e = parse_trace("-5,0,0,3").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("time"), "{e}");

        // A header is only tolerated before the first data line.
        let e = parse_trace("1.0,0,0,3\ntime,client,from,to").unwrap_err();
        assert_eq!(e.line, 2);

        // Only ONE header line: a prose preamble must error, not be
        // silently swallowed as more header.
        let e =
            parse_trace("some prose preamble here\nmore prose text lines\n1.0,0,0,3").unwrap_err();
        assert_eq!(e.line, 2, "second non-numeric line is a format error");
    }

    #[test]
    fn display_is_actionable() {
        let e = parse_trace("1.0 garbage 2 3").unwrap_err();
        let shown = e.to_string();
        assert!(shown.contains("line 1"), "{shown}");
        assert!(shown.contains("garbage"), "{shown}");
    }
}
