//! Offline drop-in shim for the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment of this repository has no network access, so the
//! real `criterion` crate cannot be fetched. This shim implements the API
//! subset the `mhh-bench` targets use — `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter` and
//! the `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistics engine.
//! Each benchmark prints `name ... mean <t> (min <t>, <n> samples)` so runs
//! remain grep-able, and [`Measurement`] values can be harvested
//! programmatically by custom benches (the sweep-runner bench uses this to
//! emit `BENCH_mobility.json`).
//!
//! Swapping the real criterion back in is a one-line `Cargo.toml` change;
//! no bench source needs to be touched.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// One benchmark's aggregated timing result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/function` or `group/label/param`).
    pub id: String,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Number of timed iterations.
    pub samples: usize,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// True when `MHH_BENCH_FAST` is set (to anything but `0`): every bench
/// runs one warm-up pass and one timed sample, regardless of configured
/// sampling. This is the shim's "test mode" — CI uses it to smoke-run the
/// bench binaries in seconds while keeping the printed output shape.
pub fn fast_mode() -> bool {
    std::env::var_os("MHH_BENCH_FAST").is_some_and(|v| v != "0")
}

/// Runs closures under timing; handed to the `bench_*` callbacks.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    /// Time the closure. The closure is run once per sample after a warm-up
    /// pass; the mean and minimum are recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if fast_mode() {
            self.sample_size = 1;
            self.warm_up_time = Duration::ZERO;
            self.measurement_time = Duration::ZERO;
        }
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut samples = 0usize;
        let measure_start = Instant::now();
        while samples < self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            samples += 1;
            // Stop early if the measurement budget is exhausted (but keep at
            // least three samples so mean/min stay meaningful).
            if samples >= 3 && measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.result = Some(Measurement {
            id: String::new(),
            mean: total / samples.max(1) as u32,
            min,
            samples,
        });
    }
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id, as in real criterion.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure against one input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut b, input);
        self.criterion.record(full, b.result);
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut b);
        self.criterion.record(full, b.result);
        self
    }

    /// Finish the group (printing happens per-benchmark; kept for API
    /// compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            result: None,
        };
        f(&mut b);
        self.record(name.to_string(), b.result);
        self
    }

    fn record(&mut self, id: String, result: Option<Measurement>) {
        if let Some(mut m) = result {
            m.id = id;
            println!(
                "{:<48} mean {:>12} (min {:>12}, {} samples)",
                m.id,
                fmt_duration(m.mean),
                fmt_duration(m.min),
                m.samples
            );
            self.measurements.push(m);
        }
    }

    /// All measurements recorded so far (used by benches that post-process
    /// their own timings).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

/// Re-export so `criterion::black_box` call sites work.
pub use std::hint::black_box;

/// Declare a group of benchmark functions, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_measurement() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].samples >= 1);
    }

    #[test]
    fn group_records_parameterised_ids() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5));
            g.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert_eq!(c.measurements()[0].id, "g/f/7");
    }
}
