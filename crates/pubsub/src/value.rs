//! Attribute values carried by events and constrained by filters.

use std::cmp::Ordering;
use std::fmt;

/// A typed attribute value.
///
/// Content-based pub/sub systems such as SIENA describe events as sets of
/// typed attribute/value pairs; we support the types the evaluation workload
/// and the examples need.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Short type name used in error/debug output.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Bool(_) => "bool",
        }
    }

    /// Numeric view of the value, when it has one. Integers widen to `f64`
    /// so that `Int` and `Float` attributes compare against each other the
    /// way a subscriber would expect.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view of the value, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Ordering between two values when they are comparable: numerics compare
    /// numerically (cross-type `Int`/`Float` allowed), strings
    /// lexicographically, booleans as `false < true`. Values of incomparable
    /// types return `None`, which makes every ordered constraint on them
    /// evaluate to false.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Equality that follows the same comparability rules as
    /// [`partial_cmp_value`](Self::partial_cmp_value).
    pub fn eq_value(&self, other: &Value) -> bool {
        matches!(self.partial_cmp_value(other), Some(Ordering::Equal))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            Value::Int(3).partial_cmp_value(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(2.5).partial_cmp_value(&Value::Int(3)),
            Some(Ordering::Less)
        );
        assert!(Value::Int(3).eq_value(&Value::Float(3.0)));
    }

    #[test]
    fn incomparable_types_return_none() {
        assert_eq!(
            Value::Int(1).partial_cmp_value(&Value::Str("1".into())),
            None
        );
        assert_eq!(Value::Bool(true).partial_cmp_value(&Value::Int(1)), None);
        assert!(!Value::Str("x".into()).eq_value(&Value::Int(0)));
    }

    #[test]
    fn string_and_bool_ordering() {
        assert_eq!(
            Value::Str("abc".into()).partial_cmp_value(&Value::Str("abd".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Bool(false).partial_cmp_value(&Value::Bool(true)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn conversions_and_views() {
        assert_eq!(Value::from(4i64).as_f64(), Some(4.0));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(true).type_name(), "bool");
        assert_eq!(Value::from(1.5f64).type_name(), "float");
    }

    #[test]
    fn display_is_reasonable() {
        assert_eq!(format!("{}", Value::Int(7)), "7");
        assert_eq!(format!("{}", Value::Str("a".into())), "\"a\"");
    }
}
