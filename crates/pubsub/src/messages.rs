//! The on-wire message set.
//!
//! A single enum, [`NetMsg`], covers client↔broker and broker↔broker
//! traffic. It is generic over the mobility protocol's own message type so
//! that MHH, sub-unsub and home-broker all reuse the same broker/client/engine
//! machinery while contributing their protocol-specific messages through the
//! [`ProtocolMessage`] trait.

use mhh_simnet::{Message, TrafficClass};

use crate::address::{BrokerId, ClientId};
use crate::event::{Event, EventId};
use crate::filter::Filter;
use crate::repair::BrokerCheckpoint;

/// Trait implemented by a mobility protocol's message enum.
///
/// The `'static` bound is what lets a message be type-erased into a
/// [`BoxedMsg`](crate::dynproto::BoxedMsg) for dyn-dispatched protocols; all
/// protocol message enums are owned data, so the bound costs nothing.
pub trait ProtocolMessage: Clone + std::fmt::Debug + Send + 'static {
    /// Short label for traffic breakdowns (e.g. `"sub_migration"`).
    fn kind(&self) -> &'static str;
    /// Traffic class for the overhead metric. Protocol control messages are
    /// [`TrafficClass::MobilityControl`]; moved events are
    /// [`TrafficClass::MobilityTransfer`].
    fn traffic_class(&self) -> TrafficClass;
    /// Modeled wire size in bytes (0 when payload modeling is off, which
    /// is also the default for control-only messages). Protocols that move
    /// events should report the sum of the moved events' wire sizes so
    /// handoff transfers show up in bytes-on-wire accounting.
    fn wire_bytes(&self) -> u32 {
        0
    }
}

/// Information a client presents when it (re)connects to a broker.
#[derive(Debug, Clone)]
pub struct ConnectInfo {
    /// The connecting client.
    pub client: ClientId,
    /// The client's subscription filter.
    pub filter: Filter,
    /// The client's home broker (used by the home-broker baseline).
    pub home_broker: BrokerId,
    /// The broker the client last visited, if any ("we require that each
    /// client maintains the identifier of its last-visited broker", §4.2).
    pub last_broker: Option<BrokerId>,
    /// True for the very first attachment (no handoff needed).
    pub initial: bool,
}

/// Pre-scheduled workload actions delivered to client nodes as timers.
#[derive(Debug, Clone)]
pub enum ClientAction {
    /// Publish the given event now (skipped when the client is disconnected).
    Publish(Event),
    /// Disconnect from the current broker. When `proclaimed_dest` is set the
    /// client announces its destination broker (proclaimed move, §4.1);
    /// otherwise it leaves silently (§4.2).
    Disconnect {
        /// The announced destination, for a proclaimed move.
        proclaimed_dest: Option<BrokerId>,
    },
    /// Reconnect at the given broker.
    Reconnect {
        /// The broker the client attaches to.
        broker: BrokerId,
    },
    /// Retry timer for an unacknowledged publish (publisher-side
    /// retransmission). Fires `attempt + 1`-th resend unless the broker's
    /// [`NetMsg::PublishAck`] arrived in the meantime.
    RetryPublish {
        /// The unacknowledged event.
        id: EventId,
        /// How many resends have already been attempted when this timer
        /// was armed.
        attempt: u32,
    },
}

/// Overlay-repair messages (failure detection, filter re-announcement and
/// partition tunneling).
///
/// The failure-driver variants (`PeerDown`, `PeerUp`, `LinkDown`, `LinkUp`,
/// `Restarted`) are injected by the deployment driver at deterministic
/// instants derived from the fault schedule — they stand in for the timeout
/// envelopes a real overlay's failure detector would produce. `Announce` and
/// `Tunnel` are genuine broker↔broker repair traffic.
#[derive(Debug, Clone)]
pub enum RepairMsg<P> {
    /// A tree-neighbor broker crashed: drop routes through it and re-route
    /// around it (sticky-path repair: routes are only rebuilt when the
    /// next hop actually died).
    PeerDown {
        /// The crashed broker.
        peer: BrokerId,
    },
    /// A previously crashed tree neighbor restarted: revert the detours.
    PeerUp {
        /// The restarted broker.
        peer: BrokerId,
    },
    /// The virtual channel to `peer` is partitioned: tunnel envelopes for it
    /// through `relay` until the partition heals.
    LinkDown {
        /// The unreachable broker.
        peer: BrokerId,
        /// The broker to tunnel through meanwhile.
        relay: BrokerId,
    },
    /// The partition toward `peer` healed: stop tunneling.
    LinkUp {
        /// The reachable-again broker.
        peer: BrokerId,
    },
    /// This broker just restarted from its checkpoint: reload durable state,
    /// let the mobility protocol recover, and resync with the neighbors.
    Restarted,
    /// Filter re-announcement. With `dead: Some(d)` this installs *detour*
    /// entries at the receiver (reverted when `d` restarts); with
    /// `dead: None` it is a post-restart resync and the filters are applied
    /// as ordinary subscriptions.
    Announce {
        /// The crashed broker being routed around, if any.
        dead: Option<BrokerId>,
        /// The filters the sender still needs events for.
        filters: Vec<Filter>,
    },
    /// An envelope for `dst` routed through a relay because the direct
    /// channel `src → dst` is partitioned. The relay forwards it; `dst`
    /// processes the inner message exactly as if it had arrived from `src`.
    Tunnel {
        /// The original sender.
        src: BrokerId,
        /// The final destination broker.
        dst: BrokerId,
        /// The wrapped message.
        inner: Box<NetMsg<P>>,
    },
    /// Self-scheduled timer driving periodic checkpoint replication: on
    /// each tick the broker pushes its current [`BrokerCheckpoint`] to its
    /// replica holder and re-arms the timer.
    ReplicateTick,
    /// Periodic checkpoint replication: `owner`'s durable state pushed to a
    /// neighbor for safekeeping. Real repair-class traffic — the wire size
    /// is the checkpoint's modeled size.
    Replicate {
        /// The broker whose state this is.
        owner: BrokerId,
        /// The replicated snapshot.
        checkpoint: Box<BrokerCheckpoint>,
    },
    /// A freshly restarted broker asking its replica holder for the last
    /// snapshot it pushed before the crash.
    ReplicaRequest {
        /// The restarted broker (also the reply address).
        owner: BrokerId,
    },
    /// The holder's reply to a [`RepairMsg::ReplicaRequest`]: the stale
    /// replica, or `None` when no snapshot survived (the holder itself
    /// restarted, or no replication tick ran before the crash).
    ReplicaResponse {
        /// The restarted broker this replica belongs to.
        owner: BrokerId,
        /// The last replicated snapshot, if any.
        replica: Option<Box<BrokerCheckpoint>>,
    },
}

/// The complete message set transported by the simulation engine.
#[derive(Debug, Clone)]
pub enum NetMsg<P> {
    // ------------------------------------------------------------------
    // client -> broker
    // ------------------------------------------------------------------
    /// A client attaches to this broker.
    Connect(ConnectInfo),
    /// A client detaches from this broker.
    Disconnect {
        /// The detaching client.
        client: ClientId,
        /// Destination broker for a proclaimed move.
        proclaimed_dest: Option<BrokerId>,
    },
    /// A client publishes an event through this broker.
    Publish(Event),

    // ------------------------------------------------------------------
    // broker -> client
    // ------------------------------------------------------------------
    /// Final delivery of an event to a connected subscriber.
    Deliver(Event),
    /// Broker acknowledgment of a client publish (sent only when publisher
    /// retransmission is enabled); the client stops its retry timer.
    PublishAck {
        /// The acknowledged event.
        id: EventId,
    },

    // ------------------------------------------------------------------
    // broker <-> broker
    // ------------------------------------------------------------------
    /// Subscription propagation along the overlay tree.
    SubPropagate {
        /// The propagated filter.
        filter: Filter,
        /// True when the propagation was triggered by a handoff (counts as
        /// mobility overhead).
        mobility: bool,
    },
    /// Unsubscription propagation along the overlay tree.
    UnsubPropagate {
        /// The withdrawn filter.
        filter: Filter,
        /// True when triggered by a handoff.
        mobility: bool,
    },
    /// Event forwarding along the overlay tree (reverse path forwarding).
    Forward(Event),
    /// A mobility-protocol-specific message.
    Protocol(P),
    /// An overlay-repair message (failure notifications, re-announcements,
    /// partition tunnels).
    Repair(RepairMsg<P>),

    // ------------------------------------------------------------------
    // self-scheduled (timers, workload injection) — never traverse links
    // ------------------------------------------------------------------
    /// A pre-scheduled client action (workload driver).
    Action(ClientAction),
}

impl<P> NetMsg<P> {
    /// Re-wrap the protocol payload (if any), keeping every other variant
    /// unchanged. This is the mechanical bridge between the generic message
    /// set and its type-erased form: `msg.map_protocol(BoxedMsg::new)` turns
    /// a `NetMsg<P>` into a `NetMsg<BoxedMsg>`.
    pub fn map_protocol<Q>(self, f: impl FnOnce(P) -> Q) -> NetMsg<Q> {
        match self {
            NetMsg::Connect(info) => NetMsg::Connect(info),
            NetMsg::Disconnect {
                client,
                proclaimed_dest,
            } => NetMsg::Disconnect {
                client,
                proclaimed_dest,
            },
            NetMsg::Publish(e) => NetMsg::Publish(e),
            NetMsg::Deliver(e) => NetMsg::Deliver(e),
            NetMsg::PublishAck { id } => NetMsg::PublishAck { id },
            NetMsg::SubPropagate { filter, mobility } => NetMsg::SubPropagate { filter, mobility },
            NetMsg::UnsubPropagate { filter, mobility } => {
                NetMsg::UnsubPropagate { filter, mobility }
            }
            NetMsg::Forward(e) => NetMsg::Forward(e),
            NetMsg::Protocol(p) => NetMsg::Protocol(f(p)),
            NetMsg::Repair(r) => NetMsg::Repair(match r {
                RepairMsg::PeerDown { peer } => RepairMsg::PeerDown { peer },
                RepairMsg::PeerUp { peer } => RepairMsg::PeerUp { peer },
                RepairMsg::LinkDown { peer, relay } => RepairMsg::LinkDown { peer, relay },
                RepairMsg::LinkUp { peer } => RepairMsg::LinkUp { peer },
                RepairMsg::Restarted => RepairMsg::Restarted,
                RepairMsg::Announce { dead, filters } => RepairMsg::Announce { dead, filters },
                RepairMsg::ReplicateTick => RepairMsg::ReplicateTick,
                RepairMsg::Replicate { owner, checkpoint } => {
                    RepairMsg::Replicate { owner, checkpoint }
                }
                RepairMsg::ReplicaRequest { owner } => RepairMsg::ReplicaRequest { owner },
                RepairMsg::ReplicaResponse { owner, replica } => {
                    RepairMsg::ReplicaResponse { owner, replica }
                }
                // A tunnel wraps at most one protocol payload, so the
                // `FnOnce` is used at most once down the recursion.
                RepairMsg::Tunnel { src, dst, inner } => RepairMsg::Tunnel {
                    src,
                    dst,
                    inner: Box::new(inner.map_protocol(f)),
                },
            }),
            NetMsg::Action(a) => NetMsg::Action(a),
        }
    }
}

impl<P: ProtocolMessage> Message for NetMsg<P> {
    fn traffic_class(&self) -> TrafficClass {
        match self {
            NetMsg::Connect(_) | NetMsg::Disconnect { .. } | NetMsg::Publish(_) => {
                TrafficClass::ClientControl
            }
            NetMsg::Deliver(_) => TrafficClass::EventDelivery,
            NetMsg::PublishAck { .. } => TrafficClass::ClientControl,
            NetMsg::SubPropagate { mobility, .. } | NetMsg::UnsubPropagate { mobility, .. } => {
                if *mobility {
                    TrafficClass::MobilityControl
                } else {
                    TrafficClass::Subscription
                }
            }
            NetMsg::Forward(_) => TrafficClass::EventRouting,
            NetMsg::Protocol(p) => p.traffic_class(),
            NetMsg::Repair(_) => TrafficClass::Repair,
            NetMsg::Action(_) => TrafficClass::Timer,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            NetMsg::Connect(_) => "connect",
            NetMsg::Disconnect { .. } => "disconnect",
            NetMsg::Publish(_) => "publish",
            NetMsg::Deliver(_) => "deliver",
            NetMsg::PublishAck { .. } => "publish_ack",
            NetMsg::SubPropagate { .. } => "sub_propagate",
            NetMsg::UnsubPropagate { .. } => "unsub_propagate",
            NetMsg::Forward(_) => "forward",
            NetMsg::Protocol(p) => p.kind(),
            NetMsg::Repair(r) => match r {
                RepairMsg::PeerDown { .. } => "repair_peer_down",
                RepairMsg::PeerUp { .. } => "repair_peer_up",
                RepairMsg::LinkDown { .. } => "repair_link_down",
                RepairMsg::LinkUp { .. } => "repair_link_up",
                RepairMsg::Restarted => "repair_restarted",
                RepairMsg::Announce { .. } => "repair_announce",
                RepairMsg::Tunnel { .. } => "repair_tunnel",
                RepairMsg::ReplicateTick => "repair_replicate_tick",
                RepairMsg::Replicate { .. } => "repair_replicate",
                RepairMsg::ReplicaRequest { .. } => "repair_replica_request",
                RepairMsg::ReplicaResponse { .. } => "repair_replica_response",
            },
            NetMsg::Action(_) => "action",
        }
    }

    fn wire_bytes(&self) -> u32 {
        match self {
            NetMsg::Publish(e) | NetMsg::Deliver(e) | NetMsg::Forward(e) => e.wire_size(),
            NetMsg::Protocol(p) => p.wire_bytes(),
            NetMsg::Repair(RepairMsg::Tunnel { inner, .. }) => inner.wire_bytes(),
            NetMsg::Repair(RepairMsg::Replicate { checkpoint, .. }) => {
                checkpoint.modeled_bytes().min(u32::MAX as u64) as u32
            }
            NetMsg::Repair(RepairMsg::ReplicaResponse {
                replica: Some(replica),
                ..
            }) => replica.modeled_bytes().min(u32::MAX as u64) as u32,
            _ => 0,
        }
    }
}

/// A trivial protocol message type for tests and for running the substrate
/// without any mobility support ("static" pub/sub).
#[derive(Debug, Clone, PartialEq)]
pub enum NoProtocolMsg {}

impl ProtocolMessage for NoProtocolMsg {
    fn kind(&self) -> &'static str {
        match *self {}
    }
    fn traffic_class(&self) -> TrafficClass {
        match *self {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventBuilder;
    use crate::filter::Op;

    fn ev() -> Event {
        EventBuilder::new()
            .attr("group", 1i64)
            .build(1, ClientId(0), 0)
    }

    #[test]
    fn traffic_classes_follow_message_role() {
        type M = NetMsg<NoProtocolMsg>;
        let publish: M = NetMsg::Publish(ev());
        assert_eq!(publish.traffic_class(), TrafficClass::ClientControl);
        let deliver: M = NetMsg::Deliver(ev());
        assert_eq!(deliver.traffic_class(), TrafficClass::EventDelivery);
        let fwd: M = NetMsg::Forward(ev());
        assert_eq!(fwd.traffic_class(), TrafficClass::EventRouting);
        let sub: M = NetMsg::SubPropagate {
            filter: Filter::single("group", Op::Eq, 1i64),
            mobility: false,
        };
        assert_eq!(sub.traffic_class(), TrafficClass::Subscription);
        let sub_mob: M = NetMsg::SubPropagate {
            filter: Filter::match_all(),
            mobility: true,
        };
        assert_eq!(sub_mob.traffic_class(), TrafficClass::MobilityControl);
        let action: M = NetMsg::Action(ClientAction::Reconnect {
            broker: BrokerId(0),
        });
        assert_eq!(action.traffic_class(), TrafficClass::Timer);
    }

    #[test]
    fn kinds_are_stable_labels() {
        type M = NetMsg<NoProtocolMsg>;
        let m: M = NetMsg::Publish(ev());
        assert_eq!(m.kind(), "publish");
        let m: M = NetMsg::UnsubPropagate {
            filter: Filter::match_all(),
            mobility: true,
        };
        assert_eq!(m.kind(), "unsub_propagate");
    }
}
