//! Content filters: conjunctions of attribute constraints, with matching and
//! the *covering* relation.
//!
//! Covering (a filter `F` covers `G` when every event matching `G` also
//! matches `F`) is the optimisation SIENA-style brokers use to suppress
//! redundant subscription propagation; the paper notes it is the reason the
//! sub-unsub protocol's overhead grows sub-linearly with the network size
//! (Section 5.2). Our covering check is *sound but conservative*: when it
//! returns `true` covering definitely holds; it may return `false` for some
//! semantically-covering pairs, which only costs extra propagation, never
//! correctness. A property test asserts the soundness direction.

use std::fmt;

use crate::event::Event;
use crate::value::Value;

/// Comparison operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Attribute equals the value.
    Eq,
    /// Attribute differs from the value.
    Ne,
    /// Attribute is strictly less than the value.
    Lt,
    /// Attribute is less than or equal to the value.
    Le,
    /// Attribute is strictly greater than the value.
    Gt,
    /// Attribute is greater than or equal to the value.
    Ge,
    /// Attribute exists (value ignored).
    Exists,
    /// Attribute is a string starting with the given prefix.
    Prefix,
}

/// A single attribute constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Attribute name.
    pub attr: String,
    /// Operator.
    pub op: Op,
    /// Comparison value.
    pub value: Value,
}

impl Constraint {
    /// Build a constraint.
    pub fn new(attr: &str, op: Op, value: impl Into<Value>) -> Self {
        Constraint {
            attr: attr.to_string(),
            op,
            value: value.into(),
        }
    }

    /// Does the event satisfy this constraint?
    pub fn matches(&self, event: &Event) -> bool {
        let Some(actual) = event.get(&self.attr) else {
            return false;
        };
        self.matches_value(actual)
    }

    /// Does a concrete attribute value satisfy this constraint?
    pub fn matches_value(&self, actual: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self.op {
            Op::Exists => true,
            Op::Eq => actual.eq_value(&self.value),
            Op::Ne => {
                // Ne is only meaningful between comparable values; an
                // incomparable pair is "different" for matching purposes.
                !actual.eq_value(&self.value)
            }
            Op::Lt => matches!(actual.partial_cmp_value(&self.value), Some(Less)),
            Op::Le => matches!(actual.partial_cmp_value(&self.value), Some(Less | Equal)),
            Op::Gt => matches!(actual.partial_cmp_value(&self.value), Some(Greater)),
            Op::Ge => matches!(actual.partial_cmp_value(&self.value), Some(Greater | Equal)),
            Op::Prefix => match (actual.as_str(), self.value.as_str()) {
                (Some(a), Some(p)) => a.starts_with(p),
                _ => false,
            },
        }
    }

    /// Conservative implication check: does satisfying `self` imply
    /// satisfying `other`? Used for covering. Only constraints on the same
    /// attribute can imply each other.
    pub fn implies(&self, other: &Constraint) -> bool {
        use std::cmp::Ordering::*;
        if self.attr != other.attr {
            return false;
        }
        // Anything on the attribute implies Exists.
        if other.op == Op::Exists {
            return true;
        }
        let cmp = self.value.partial_cmp_value(&other.value);
        match (self.op, other.op) {
            (Op::Eq, _) => {
                // x == v implies any predicate that v itself satisfies.
                other.matches_value(&self.value)
            }
            (Op::Ne, Op::Ne) => matches!(cmp, Some(Equal)),
            (Op::Gt, Op::Gt) => matches!(cmp, Some(Greater | Equal)),
            (Op::Gt, Op::Ge) => matches!(cmp, Some(Greater | Equal)),
            (Op::Ge, Op::Ge) => matches!(cmp, Some(Greater | Equal)),
            (Op::Ge, Op::Gt) => matches!(cmp, Some(Greater)),
            (Op::Lt, Op::Lt) => matches!(cmp, Some(Less | Equal)),
            (Op::Lt, Op::Le) => matches!(cmp, Some(Less | Equal)),
            (Op::Le, Op::Le) => matches!(cmp, Some(Less | Equal)),
            (Op::Le, Op::Lt) => matches!(cmp, Some(Less)),
            (Op::Gt, Op::Ne) | (Op::Lt, Op::Ne) => {
                // x > v implies x != w when w <= v; x < v implies x != w when w >= v.
                matches!(
                    (self.op, cmp),
                    (Op::Gt, Some(Greater | Equal)) | (Op::Lt, Some(Less | Equal))
                )
            }
            (Op::Prefix, Op::Prefix) => {
                // "abc*" implies "ab*"
                match (self.value.as_str(), other.value.as_str()) {
                    (Some(mine), Some(theirs)) => mine.starts_with(theirs),
                    _ => false,
                }
            }
            (Op::Prefix, Op::Ne) => match (self.value.as_str(), other.value.as_str()) {
                // "abc*" implies x != s whenever s does NOT start with "abc"
                (Some(prefix), Some(excluded)) => !excluded.starts_with(prefix),
                _ => false,
            },
            _ => false,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Exists => "exists",
            Op::Prefix => "starts-with",
        };
        if self.op == Op::Exists {
            write!(f, "{} exists", self.attr)
        } else {
            write!(f, "{} {} {}", self.attr, op, self.value)
        }
    }
}

/// A conjunctive content filter: an event matches when every constraint is
/// satisfied. The empty filter matches everything.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Filter {
    /// The conjunction of constraints.
    pub constraints: Vec<Constraint>,
}

impl Filter {
    /// The filter that matches every event.
    pub fn match_all() -> Self {
        Filter::default()
    }

    /// Build a filter from constraints.
    pub fn new(constraints: Vec<Constraint>) -> Self {
        Filter { constraints }
    }

    /// Single-constraint convenience constructor.
    pub fn single(attr: &str, op: Op, value: impl Into<Value>) -> Self {
        Filter::new(vec![Constraint::new(attr, op, value)])
    }

    /// Add another constraint (builder style).
    pub fn and(mut self, attr: &str, op: Op, value: impl Into<Value>) -> Self {
        self.constraints.push(Constraint::new(attr, op, value));
        self
    }

    /// Does the event satisfy the filter?
    pub fn matches(&self, event: &Event) -> bool {
        self.constraints.iter().all(|c| c.matches(event))
    }

    /// Conservative covering check: does `self` cover `other`, i.e. does
    /// every event matching `other` match `self`?
    ///
    /// Rule: for every constraint of `self` there must be a constraint of
    /// `other` that implies it. (Sound: if the check passes, any event
    /// matching all of `other`'s constraints satisfies each of `self`'s.)
    pub fn covers(&self, other: &Filter) -> bool {
        self.constraints
            .iter()
            .all(|mine| other.constraints.iter().any(|theirs| theirs.implies(mine)))
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True for the match-all filter.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Modeled serialized size of the filter, using the same per-value cost
    /// model as [`Event::wire_size`](crate::event::Event::wire_size):
    /// 2-byte constraint count, then per constraint a 2-byte name length,
    /// the name, a 1-byte operator, and the encoded value. Feeds the
    /// checkpoint-size accounting only — it never affects matching or
    /// simulated latency.
    pub fn modeled_bytes(&self) -> u64 {
        let mut total = 2u64;
        for c in &self.constraints {
            let value = match &c.value {
                Value::Int(_) | Value::Float(_) => 8,
                Value::Str(s) => 2 + s.len() as u64,
                Value::Bool(_) => 1,
            };
            total += 2 + c.attr.len() as u64 + 1 + value;
        }
        total
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.constraints.is_empty() {
            return write!(f, "(*)");
        }
        let parts: Vec<String> = self.constraints.iter().map(|c| c.to_string()).collect();
        write!(f, "({})", parts.join(" AND "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::ClientId;
    use crate::event::EventBuilder;

    fn quote(group: i64, price: f64, symbol: &str) -> Event {
        EventBuilder::new()
            .attr("group", group)
            .attr("price", price)
            .attr("symbol", symbol)
            .build(1, ClientId(0), 0)
    }

    #[test]
    fn matching_basic_operators() {
        let e = quote(3, 99.5, "ACME");
        assert!(Filter::single("group", Op::Eq, 3i64).matches(&e));
        assert!(!Filter::single("group", Op::Eq, 4i64).matches(&e));
        assert!(Filter::single("price", Op::Gt, 50.0).matches(&e));
        assert!(Filter::single("price", Op::Le, 99.5).matches(&e));
        assert!(!Filter::single("price", Op::Lt, 99.5).matches(&e));
        assert!(Filter::single("symbol", Op::Prefix, "AC").matches(&e));
        assert!(!Filter::single("symbol", Op::Prefix, "XY").matches(&e));
        assert!(Filter::single("symbol", Op::Exists, 0i64).matches(&e));
        assert!(Filter::single("symbol", Op::Ne, "OTHER").matches(&e));
        assert!(!Filter::single("missing", Op::Exists, 0i64).matches(&e));
    }

    #[test]
    fn conjunction_requires_all_constraints() {
        let e = quote(3, 99.5, "ACME");
        let f = Filter::single("group", Op::Eq, 3i64).and("price", Op::Ge, 100.0);
        assert!(!f.matches(&e));
        let g = Filter::single("group", Op::Eq, 3i64).and("price", Op::Ge, 99.0);
        assert!(g.matches(&e));
    }

    #[test]
    fn match_all_matches_everything() {
        let e = quote(1, 1.0, "X");
        assert!(Filter::match_all().matches(&e));
        assert!(Filter::match_all().is_empty());
    }

    #[test]
    fn covering_identical_filters() {
        let f = Filter::single("group", Op::Eq, 3i64);
        assert!(f.covers(&f.clone()));
    }

    #[test]
    fn covering_wider_range_covers_narrower() {
        let wide = Filter::single("price", Op::Ge, 10.0);
        let narrow = Filter::single("price", Op::Ge, 50.0);
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        let eq = Filter::single("price", Op::Eq, 60.0);
        assert!(wide.covers(&eq));
        assert!(!eq.covers(&wide));
    }

    #[test]
    fn covering_fewer_constraints_cover_more() {
        let wide = Filter::single("group", Op::Eq, 3i64);
        let narrow = Filter::single("group", Op::Eq, 3i64).and("price", Op::Gt, 10.0);
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(Filter::match_all().covers(&narrow));
    }

    #[test]
    fn covering_prefix_relation() {
        let wide = Filter::single("symbol", Op::Prefix, "AC");
        let narrow = Filter::single("symbol", Op::Prefix, "ACME");
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
    }

    #[test]
    fn covering_is_sound_on_examples() {
        // Whenever covers() says yes, matching must propagate.
        let pairs = vec![
            (
                Filter::single("price", Op::Ge, 10.0),
                Filter::single("price", Op::Gt, 10.0),
            ),
            (
                Filter::single("price", Op::Lt, 100.0),
                Filter::single("price", Op::Le, 50.0),
            ),
            (
                Filter::single("group", Op::Ne, 9i64),
                Filter::single("group", Op::Eq, 3i64),
            ),
        ];
        let events: Vec<Event> = (0..200)
            .map(|i| quote(i % 16, i as f64, if i % 2 == 0 { "ACME" } else { "ZETA" }))
            .collect();
        for (wide, narrow) in pairs {
            assert!(wide.covers(&narrow), "{wide} should cover {narrow}");
            for e in &events {
                if narrow.matches(e) {
                    assert!(
                        wide.matches(e),
                        "{wide} must match whatever {narrow} matches"
                    );
                }
            }
        }
    }

    #[test]
    fn display_is_readable() {
        let f = Filter::single("group", Op::Eq, 3i64).and("price", Op::Ge, 10.0);
        assert_eq!(format!("{f}"), "(group = 3 AND price >= 10)");
        assert_eq!(format!("{}", Filter::match_all()), "(*)");
    }
}

#[cfg(test)]
mod proptests {
    //! Deterministic property loops (the environment cannot fetch
    //! `proptest`; cases are sampled from a seeded [`DetRng`], which also
    //! makes failures exactly reproducible).

    use super::*;
    use crate::address::ClientId;
    use crate::event::EventBuilder;
    use mhh_simnet::random::DetRng;

    const OPS: [Op; 7] = [Op::Eq, Op::Ne, Op::Lt, Op::Le, Op::Gt, Op::Ge, Op::Exists];
    const ATTRS: [&str; 3] = ["a", "b", "c"];

    fn arb_constraint(rng: &mut DetRng) -> Constraint {
        let op = OPS[rng.index(OPS.len())];
        let v = rng.range_u64(0, 40) as i64 - 20;
        let attr = ATTRS[rng.index(ATTRS.len())];
        Constraint::new(attr, op, v)
    }

    fn arb_filter(rng: &mut DetRng) -> Filter {
        let n = rng.index(4);
        Filter::new((0..n).map(|_| arb_constraint(rng)).collect())
    }

    fn arb_event(rng: &mut DetRng) -> Event {
        EventBuilder::new()
            .attr("a", rng.range_u64(0, 40) as i64 - 20)
            .attr("b", rng.range_u64(0, 40) as i64 - 20)
            .attr("c", rng.range_u64(0, 40) as i64 - 20)
            .build(0, ClientId(0), 0)
    }

    /// Soundness of covering: if F covers G then every event matching G
    /// matches F.
    #[test]
    fn covering_soundness() {
        let mut rng = DetRng::new(0xc07e_1111);
        for _ in 0..512 {
            let f = arb_filter(&mut rng);
            let g = arb_filter(&mut rng);
            let e = arb_event(&mut rng);
            if f.covers(&g) && g.matches(&e) {
                assert!(
                    f.matches(&e),
                    "F={f} covers G={g} but misses event matching G"
                );
            }
        }
    }

    /// Soundness of constraint implication.
    #[test]
    fn implication_soundness() {
        let mut rng = DetRng::new(0xc07e_2222);
        for _ in 0..512 {
            let c1 = arb_constraint(&mut rng);
            let c2 = arb_constraint(&mut rng);
            let e = arb_event(&mut rng);
            if c1.implies(&c2) && c1.matches(&e) {
                assert!(c2.matches(&e), "{c1:?} implies {c2:?} but event breaks it");
            }
        }
    }

    /// Covering is reflexive.
    #[test]
    fn covering_reflexive() {
        let mut rng = DetRng::new(0xc07e_3333);
        for _ in 0..256 {
            let f = arb_filter(&mut rng);
            assert!(f.covers(&f), "{f} does not cover itself");
        }
    }

    /// The match-all filter covers everything.
    #[test]
    fn match_all_covers_all() {
        let mut rng = DetRng::new(0xc07e_4444);
        for _ in 0..256 {
            let f = arb_filter(&mut rng);
            assert!(Filter::match_all().covers(&f));
        }
    }
}
