//! Broker/client identifiers and the mapping onto simulator node ids.

use std::fmt;

use mhh_simnet::NodeId;

/// Identifier of an event broker (a base station of the k×k grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BrokerId(pub u32);

/// Identifier of a client (publisher and/or subscriber, possibly mobile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

impl BrokerId {
    /// Dense index of this broker.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl ClientId {
    /// Dense index of this client.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BrokerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A neighbor of a broker in the pub/sub sense: either a neighboring broker
/// of the overlay or a client directly connected to the broker (paper,
/// Section 3: "The neighbors of a broker include both the neighboring brokers
/// and the clients that directly connect to the broker").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Peer {
    /// A neighboring broker.
    Broker(BrokerId),
    /// A directly connected (or locally tracked offline) client.
    Client(ClientId),
}

impl fmt::Display for Peer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Peer::Broker(b) => write!(f, "{b}"),
            Peer::Client(c) => write!(f, "{c}"),
        }
    }
}

/// Mapping between pub/sub identifiers and simulator node ids.
///
/// Brokers occupy node ids `0..broker_count`, clients occupy
/// `broker_count..broker_count + client_count`. The struct is tiny and
/// `Copy`, so every broker and client embeds its own copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressBook {
    broker_count: u32,
    client_count: u32,
}

impl AddressBook {
    /// Create an address book for the given population.
    pub fn new(broker_count: usize, client_count: usize) -> Self {
        AddressBook {
            broker_count: broker_count as u32,
            client_count: client_count as u32,
        }
    }

    /// Number of brokers.
    pub fn broker_count(&self) -> usize {
        self.broker_count as usize
    }

    /// Number of clients.
    pub fn client_count(&self) -> usize {
        self.client_count as usize
    }

    /// Total number of simulator nodes.
    pub fn node_count(&self) -> usize {
        (self.broker_count + self.client_count) as usize
    }

    /// Simulator node id of a broker.
    pub fn broker_node(&self, b: BrokerId) -> NodeId {
        debug_assert!(b.0 < self.broker_count, "broker id out of range");
        NodeId(b.0)
    }

    /// Simulator node id of a client.
    pub fn client_node(&self, c: ClientId) -> NodeId {
        debug_assert!(c.0 < self.client_count, "client id out of range");
        NodeId(self.broker_count + c.0)
    }

    /// Whether a node id belongs to a broker.
    pub fn is_broker_node(&self, n: NodeId) -> bool {
        n.0 < self.broker_count
    }

    /// Map a node id back to a broker id. Panics if it is a client node.
    pub fn node_broker(&self, n: NodeId) -> BrokerId {
        assert!(self.is_broker_node(n), "node {n} is not a broker");
        BrokerId(n.0)
    }

    /// Map a node id back to a client id. Panics if it is a broker node.
    pub fn node_client(&self, n: NodeId) -> ClientId {
        assert!(!self.is_broker_node(n), "node {n} is not a client");
        ClientId(n.0 - self.broker_count)
    }

    /// Map a node id to the pub/sub peer it represents.
    pub fn node_peer(&self, n: NodeId) -> Peer {
        if self.is_broker_node(n) {
            Peer::Broker(self.node_broker(n))
        } else {
            Peer::Client(self.node_client(n))
        }
    }

    /// Iterate over all broker ids.
    pub fn brokers(&self) -> impl Iterator<Item = BrokerId> {
        (0..self.broker_count).map(BrokerId)
    }

    /// Iterate over all client ids.
    pub fn clients(&self) -> impl Iterator<Item = ClientId> {
        (0..self.client_count).map(ClientId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_layout_is_dense_and_disjoint() {
        let book = AddressBook::new(4, 3);
        assert_eq!(book.node_count(), 7);
        assert_eq!(book.broker_node(BrokerId(0)), NodeId(0));
        assert_eq!(book.broker_node(BrokerId(3)), NodeId(3));
        assert_eq!(book.client_node(ClientId(0)), NodeId(4));
        assert_eq!(book.client_node(ClientId(2)), NodeId(6));
    }

    #[test]
    fn round_trip_node_to_peer() {
        let book = AddressBook::new(4, 3);
        assert_eq!(book.node_peer(NodeId(2)), Peer::Broker(BrokerId(2)));
        assert_eq!(book.node_peer(NodeId(5)), Peer::Client(ClientId(1)));
        assert_eq!(book.node_broker(NodeId(1)), BrokerId(1));
        assert_eq!(book.node_client(NodeId(6)), ClientId(2));
    }

    #[test]
    #[should_panic(expected = "is not a broker")]
    fn client_node_is_not_a_broker() {
        let book = AddressBook::new(2, 2);
        book.node_broker(NodeId(3));
    }

    #[test]
    fn iterators_cover_population() {
        let book = AddressBook::new(3, 5);
        assert_eq!(book.brokers().count(), 3);
        assert_eq!(book.clients().count(), 5);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", BrokerId(4)), "B4");
        assert_eq!(format!("{}", ClientId(9)), "C9");
        assert_eq!(format!("{}", Peer::Broker(BrokerId(1))), "B1");
        assert_eq!(format!("{}", Peer::Client(ClientId(2))), "C2");
    }
}
