//! The (possibly mobile) client node.
//!
//! A client both publishes and subscribes (the paper's workload: "Each client
//! in the system has defined a subscription and each client publishes events
//! continuously"). Mobile clients additionally disconnect and reconnect at
//! other brokers following a pre-generated action timeline injected by the
//! evaluation harness.
//!
//! The client records everything the metrics need: the events it actually
//! published, every delivery (with time), and every reconnection together
//! with the time of the first event received afterwards — the paper's
//! *handoff delay* ("the period from a client's reconnection time to the
//! time it receives the first event").

use std::collections::BTreeMap;

use mhh_simnet::{Context, Envelope, Node, SimDuration, SimTime};

use crate::address::{AddressBook, BrokerId, ClientId};
use crate::event::{Event, EventId};
use crate::filter::Filter;
use crate::messages::{ClientAction, ConnectInfo, NetMsg, ProtocolMessage};

/// Base delay in milliseconds before the first publish retry; doubles per
/// attempt (exponential backoff).
pub const RETRY_BASE_MS: u64 = 250;

/// Base delay before the first publish retry.
pub const RETRY_BASE: SimDuration = SimDuration::from_millis(RETRY_BASE_MS);

/// Resend attempts per publish before the publisher gives up (the loss then
/// surfaces in the delivery audit instead of retrying forever).
pub const MAX_PUBLISH_RETRIES: u32 = 5;

/// One delivered event as seen by a client.
#[derive(Debug, Clone)]
pub struct DeliveryRecord {
    /// Delivery time at the client.
    pub at: SimTime,
    /// The delivered event id.
    pub event: EventId,
    /// Publisher of the event.
    pub publisher: ClientId,
    /// Per-publisher sequence number.
    pub seq: u64,
    /// Publication time (for latency analysis).
    pub published_at: SimTime,
}

/// One disconnection of a mobile client — the opening half of a handover.
#[derive(Debug, Clone)]
pub struct DisconnectRecord {
    /// When the client disconnected.
    pub at: SimTime,
    /// The broker it physically left.
    pub broker: BrokerId,
    /// The destination it announced (proclaimed move, §4.1), if any.
    pub proclaimed_dest: Option<BrokerId>,
}

/// One reconnection of a mobile client — the closing half of a handover.
#[derive(Debug, Clone)]
pub struct ReconnectRecord {
    /// When the client reconnected.
    pub at: SimTime,
    /// The broker it was *physically* attached to before this reconnection,
    /// if any (for a proclaimed move this is the broker it departed, not the
    /// announced destination).
    pub from: Option<BrokerId>,
    /// The broker it attached to.
    pub to: BrokerId,
    /// When the first event after this reconnection arrived (None if the
    /// client disconnected again, or the run ended, before any event).
    pub first_delivery: Option<SimTime>,
    /// Whether this reconnection counts as a handoff: it attached to a
    /// broker different from the one it physically departed. A proclaimed
    /// move to broker B followed by the reconnection at B *is* a handoff
    /// even though the subscription migrated ahead of the client.
    pub is_handoff: bool,
}

/// A client node.
#[derive(Debug, Clone)]
pub struct ClientNode {
    /// This client's id.
    pub id: ClientId,
    /// Address book of the deployment.
    pub book: AddressBook,
    /// The client's subscription.
    pub filter: Filter,
    /// The client's home broker (initial attachment broker).
    pub home_broker: BrokerId,
    /// Broker the client is currently attached to (None while disconnected).
    pub current_broker: Option<BrokerId>,
    /// Identifier of the last visited broker, maintained across
    /// disconnections as the silent-move handoff requires (Section 4.2).
    /// For a proclaimed move this is the *announced destination* — the
    /// broker the subscription migrated to, and therefore the broker a
    /// later handoff request would have to be sent to.
    pub last_broker: Option<BrokerId>,
    /// The broker this client physically left at its last disconnection
    /// (unlike [`last_broker`](Self::last_broker), never redirected by a
    /// proclamation); drives the handoff accounting.
    pub departed_broker: Option<BrokerId>,
    /// Whether this client moves (20 % of clients in the paper's workload).
    pub mobile: bool,
    /// Publisher-side retransmission: track every publish until the broker
    /// acks it, resending with exponential backoff up to
    /// [`MAX_PUBLISH_RETRIES`] attempts. Off by default (no acks, no
    /// timers — the pre-reliability fast path).
    pub retransmit: bool,
    /// Publishes awaiting a broker [`NetMsg::PublishAck`].
    pub pending_acks: BTreeMap<EventId, Event>,
    /// Resends actually performed.
    pub retransmissions: u64,
    /// Events this client actually published.
    pub published: Vec<Event>,
    /// Publish actions skipped because the client was disconnected.
    pub skipped_publishes: u64,
    /// Every delivery received.
    pub received: Vec<DeliveryRecord>,
    /// Every disconnection performed (pairs up with
    /// [`reconnects`](Self::reconnects) to form the handover timeline; a
    /// trailing unpaired entry is a client that ended the run disconnected).
    pub disconnects: Vec<DisconnectRecord>,
    /// Every reconnection performed.
    pub reconnects: Vec<ReconnectRecord>,
}

impl ClientNode {
    /// Create a client that considers `home` its home broker. The caller
    /// decides whether to mark it as initially attached by setting
    /// [`current_broker`](Self::current_broker).
    pub fn new(id: ClientId, book: AddressBook, filter: Filter, home: BrokerId) -> Self {
        ClientNode {
            id,
            book,
            filter,
            home_broker: home,
            current_broker: None,
            last_broker: None,
            departed_broker: None,
            mobile: false,
            retransmit: false,
            pending_acks: BTreeMap::new(),
            retransmissions: 0,
            published: Vec::new(),
            skipped_publishes: 0,
            received: Vec::new(),
            disconnects: Vec::new(),
            reconnects: Vec::new(),
        }
    }

    /// Mark the client as initially attached to its home broker (used with
    /// [`install_subscription`](crate::broker::install_subscription)).
    pub fn attach_initially(&mut self) {
        self.current_broker = Some(self.home_broker);
        self.last_broker = Some(self.home_broker);
    }

    /// Number of reconnections that were real handoffs.
    pub fn handoff_count(&self) -> usize {
        self.reconnects.iter().filter(|r| r.is_handoff).count()
    }

    /// Handoff delays (reconnect → first delivery) for completed handoffs.
    pub fn handoff_delays(&self) -> Vec<f64> {
        self.reconnects
            .iter()
            .filter(|r| r.is_handoff)
            .filter_map(|r| r.first_delivery.map(|d| d.since(r.at).as_millis_f64()))
            .collect()
    }

    /// Ids of all delivered events (with duplicates, if any).
    pub fn delivered_ids(&self) -> Vec<EventId> {
        self.received.iter().map(|r| r.event).collect()
    }

    fn handle_action<P: ProtocolMessage>(
        &mut self,
        action: ClientAction,
        ctx: &mut Context<NetMsg<P>>,
    ) {
        match action {
            ClientAction::Publish(event) => {
                if let Some(broker) = self.current_broker {
                    let stamped = event.stamped(ctx.now());
                    self.published.push(stamped.clone());
                    if self.retransmit {
                        self.pending_acks.insert(stamped.id, stamped.clone());
                        ctx.schedule(
                            RETRY_BASE,
                            NetMsg::Action(ClientAction::RetryPublish {
                                id: stamped.id,
                                attempt: 0,
                            }),
                        );
                    }
                    ctx.send(self.book.broker_node(broker), NetMsg::Publish(stamped));
                } else {
                    self.skipped_publishes += 1;
                }
            }
            ClientAction::RetryPublish { id, attempt } => {
                let Some(event) = self.pending_acks.get(&id).cloned() else {
                    return; // acked in the meantime
                };
                if attempt >= MAX_PUBLISH_RETRIES {
                    // Give up; the delivery audit records whatever was lost.
                    self.pending_acks.remove(&id);
                    return;
                }
                if let Some(broker) = self.current_broker {
                    // Resend the original stamped event unchanged (same id,
                    // seq and publication time) so broker-side dedup and the
                    // audit treat it as the same event; not re-counted in
                    // `published`.
                    self.retransmissions += 1;
                    ctx.send(self.book.broker_node(broker), NetMsg::Publish(event));
                }
                let backoff = SimDuration::from_millis(RETRY_BASE_MS << (attempt + 1));
                ctx.schedule(
                    backoff,
                    NetMsg::Action(ClientAction::RetryPublish {
                        id,
                        attempt: attempt + 1,
                    }),
                );
            }
            ClientAction::Disconnect { proclaimed_dest } => {
                if let Some(broker) = self.current_broker.take() {
                    // For a proclaimed move the subscription migrates to the
                    // announced destination immediately, so that is the broker
                    // a later handoff request must be sent to. The physically
                    // departed broker is tracked separately for the handover
                    // accounting.
                    self.last_broker = Some(proclaimed_dest.unwrap_or(broker));
                    self.departed_broker = Some(broker);
                    self.disconnects.push(DisconnectRecord {
                        at: ctx.now(),
                        broker,
                        proclaimed_dest,
                    });
                    ctx.send(
                        self.book.broker_node(broker),
                        NetMsg::Disconnect {
                            client: self.id,
                            proclaimed_dest,
                        },
                    );
                }
            }
            ClientAction::Reconnect { broker } => {
                if self.current_broker.is_some() {
                    // Workload timelines always disconnect before
                    // reconnecting; tolerate a duplicate reconnect by
                    // ignoring it.
                    return;
                }
                let initial = self.last_broker.is_none();
                // A handoff is a *physical* move: the client reattaches at a
                // broker other than the one it departed. (Judging by
                // `last_broker` would silently discount proclaimed moves,
                // whose pointer is redirected to the destination.)
                let is_handoff = match self.departed_broker {
                    Some(prev) => prev != broker,
                    None => false,
                };
                self.current_broker = Some(broker);
                self.reconnects.push(ReconnectRecord {
                    at: ctx.now(),
                    from: self.departed_broker,
                    to: broker,
                    first_delivery: None,
                    is_handoff,
                });
                ctx.send(
                    self.book.broker_node(broker),
                    NetMsg::Connect(ConnectInfo {
                        client: self.id,
                        filter: self.filter.clone(),
                        home_broker: self.home_broker,
                        last_broker: self.last_broker,
                        initial,
                    }),
                );
            }
        }
    }
}

impl<P: ProtocolMessage> Node<NetMsg<P>> for ClientNode {
    fn on_message(&mut self, env: Envelope<NetMsg<P>>, ctx: &mut Context<NetMsg<P>>) {
        match env.msg {
            NetMsg::Deliver(event) => {
                let record = DeliveryRecord {
                    at: ctx.now(),
                    event: event.id,
                    publisher: event.publisher,
                    seq: event.seq,
                    published_at: event.published_at,
                };
                if let Some(last) = self.reconnects.last_mut() {
                    if last.first_delivery.is_none() {
                        last.first_delivery = Some(ctx.now());
                    }
                }
                self.received.push(record);
            }
            NetMsg::PublishAck { id } => {
                self.pending_acks.remove(&id);
            }
            NetMsg::Action(action) => self.handle_action(action, ctx),
            // Clients ignore broker-to-broker traffic that could only reach
            // them through a bug; staying silent keeps tests focused on the
            // delivery audit.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventBuilder;
    use crate::filter::Op;
    use crate::messages::NoProtocolMsg;
    use mhh_simnet::{Engine, SimDuration, UniformFabric};
    use std::sync::Arc;

    type M = NetMsg<NoProtocolMsg>;

    /// A sink node standing in for a broker: it records what it received.
    #[derive(Default)]
    struct SinkBroker {
        connects: Vec<ConnectInfo>,
        disconnects: Vec<(ClientId, Option<BrokerId>)>,
        publishes: Vec<Event>,
    }

    impl Node<M> for SinkBroker {
        fn on_message(&mut self, env: Envelope<M>, _ctx: &mut Context<M>) {
            match env.msg {
                NetMsg::Connect(i) => self.connects.push(i),
                NetMsg::Disconnect {
                    client,
                    proclaimed_dest,
                } => self.disconnects.push((client, proclaimed_dest)),
                NetMsg::Publish(e) => self.publishes.push(e),
                _ => {}
            }
        }
    }

    enum N {
        Broker(SinkBroker),
        Client(ClientNode),
    }
    impl Node<M> for N {
        fn on_message(&mut self, env: Envelope<M>, ctx: &mut Context<M>) {
            match self {
                N::Broker(b) => b.on_message(env, ctx),
                N::Client(c) => c.on_message(env, ctx),
            }
        }
    }

    fn setup() -> (Engine<M, N>, AddressBook) {
        // 2 "brokers" (sinks) + 1 client
        let book = AddressBook::new(2, 1);
        let filter = Filter::single("group", Op::Eq, 1i64);
        let mut client = ClientNode::new(ClientId(0), book, filter, BrokerId(0));
        client.attach_initially();
        let nodes = vec![
            N::Broker(SinkBroker::default()),
            N::Broker(SinkBroker::default()),
            N::Client(client),
        ];
        let fabric = Arc::new(UniformFabric::new(SimDuration::from_millis(20)));
        (Engine::new(nodes, fabric), book)
    }

    fn ev(id: u64) -> Event {
        EventBuilder::new()
            .attr("group", 1i64)
            .build(id, ClientId(0), id)
    }

    #[test]
    fn publish_goes_to_current_broker_and_is_stamped() {
        let (mut eng, book) = setup();
        eng.schedule_external(
            SimTime::from_millis(5),
            book.client_node(ClientId(0)),
            NetMsg::Action(ClientAction::Publish(ev(1))),
        );
        eng.run_to_completion();
        match eng.node(book.broker_node(BrokerId(0))) {
            N::Broker(b) => {
                assert_eq!(b.publishes.len(), 1);
                assert_eq!(b.publishes[0].published_at, SimTime::from_millis(5));
            }
            _ => unreachable!(),
        }
        match eng.node(book.client_node(ClientId(0))) {
            N::Client(c) => assert_eq!(c.published.len(), 1),
            _ => unreachable!(),
        }
    }

    #[test]
    fn publish_while_disconnected_is_skipped() {
        let (mut eng, book) = setup();
        eng.schedule_external(
            SimTime::from_millis(1),
            book.client_node(ClientId(0)),
            NetMsg::Action(ClientAction::Disconnect {
                proclaimed_dest: None,
            }),
        );
        eng.schedule_external(
            SimTime::from_millis(2),
            book.client_node(ClientId(0)),
            NetMsg::Action(ClientAction::Publish(ev(1))),
        );
        eng.run_to_completion();
        match eng.node(book.client_node(ClientId(0))) {
            N::Client(c) => {
                assert_eq!(c.skipped_publishes, 1);
                assert!(c.published.is_empty());
                assert_eq!(c.current_broker, None);
                assert_eq!(c.last_broker, Some(BrokerId(0)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn reconnect_carries_last_broker_and_counts_handoffs() {
        let (mut eng, book) = setup();
        let c = book.client_node(ClientId(0));
        eng.schedule_external(
            SimTime::from_millis(1),
            c,
            NetMsg::Action(ClientAction::Disconnect {
                proclaimed_dest: None,
            }),
        );
        eng.schedule_external(
            SimTime::from_millis(100),
            c,
            NetMsg::Action(ClientAction::Reconnect {
                broker: BrokerId(1),
            }),
        );
        eng.run_to_completion();
        match eng.node(book.broker_node(BrokerId(1))) {
            N::Broker(b) => {
                assert_eq!(b.connects.len(), 1);
                let info = &b.connects[0];
                assert_eq!(info.last_broker, Some(BrokerId(0)));
                assert!(!info.initial);
            }
            _ => unreachable!(),
        }
        match eng.node(c) {
            N::Client(cl) => {
                assert_eq!(cl.handoff_count(), 1);
                assert_eq!(cl.reconnects.len(), 1);
                assert!(cl.reconnects[0].is_handoff);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn reconnect_to_same_broker_is_not_a_handoff() {
        let (mut eng, book) = setup();
        let c = book.client_node(ClientId(0));
        eng.schedule_external(
            SimTime::from_millis(1),
            c,
            NetMsg::Action(ClientAction::Disconnect {
                proclaimed_dest: None,
            }),
        );
        eng.schedule_external(
            SimTime::from_millis(50),
            c,
            NetMsg::Action(ClientAction::Reconnect {
                broker: BrokerId(0),
            }),
        );
        eng.run_to_completion();
        match eng.node(c) {
            N::Client(cl) => assert_eq!(cl.handoff_count(), 0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn first_delivery_after_reconnect_fills_handoff_delay() {
        let (mut eng, book) = setup();
        let c = book.client_node(ClientId(0));
        eng.schedule_external(
            SimTime::from_millis(1),
            c,
            NetMsg::Action(ClientAction::Disconnect {
                proclaimed_dest: None,
            }),
        );
        eng.schedule_external(
            SimTime::from_millis(100),
            c,
            NetMsg::Action(ClientAction::Reconnect {
                broker: BrokerId(1),
            }),
        );
        // A delivery arriving after the reconnect.
        eng.schedule_external(SimTime::from_millis(180), c, NetMsg::Deliver(ev(9)));
        eng.run_to_completion();
        match eng.node(c) {
            N::Client(cl) => {
                let delays = cl.handoff_delays();
                assert_eq!(delays.len(), 1);
                assert!((delays[0] - 80.0).abs() < 1e-9);
                assert_eq!(cl.received.len(), 1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn proclaimed_move_counts_as_a_handoff_and_is_recorded() {
        let (mut eng, book) = setup();
        let c = book.client_node(ClientId(0));
        eng.schedule_external(
            SimTime::from_millis(1),
            c,
            NetMsg::Action(ClientAction::Disconnect {
                proclaimed_dest: Some(BrokerId(1)),
            }),
        );
        eng.schedule_external(
            SimTime::from_millis(100),
            c,
            NetMsg::Action(ClientAction::Reconnect {
                broker: BrokerId(1),
            }),
        );
        eng.run_to_completion();
        match eng.node(c) {
            N::Client(cl) => {
                // The protocol pointer follows the proclamation...
                assert_eq!(cl.last_broker, Some(BrokerId(1)));
                // ...but the handover accounting tracks the physical move.
                assert_eq!(cl.handoff_count(), 1, "proclaimed move is a handoff");
                assert_eq!(cl.disconnects.len(), 1);
                assert_eq!(cl.disconnects[0].broker, BrokerId(0));
                assert_eq!(cl.disconnects[0].proclaimed_dest, Some(BrokerId(1)));
                assert_eq!(cl.reconnects[0].from, Some(BrokerId(0)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn proclaimed_disconnect_forwards_destination() {
        let (mut eng, book) = setup();
        let c = book.client_node(ClientId(0));
        eng.schedule_external(
            SimTime::from_millis(1),
            c,
            NetMsg::Action(ClientAction::Disconnect {
                proclaimed_dest: Some(BrokerId(1)),
            }),
        );
        eng.run_to_completion();
        match eng.node(book.broker_node(BrokerId(0))) {
            N::Broker(b) => assert_eq!(b.disconnects, vec![(ClientId(0), Some(BrokerId(1)))]),
            _ => unreachable!(),
        }
    }
}
