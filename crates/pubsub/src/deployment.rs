//! Deployment helpers: build a complete simulated pub/sub system (brokers +
//! clients + engine) for a given mobility protocol.
//!
//! The evaluation harness (`mhh-mobsim`), the protocol crates' own tests and
//! the examples all need the same boilerplate: a grid [`Network`], one
//! [`Broker`] per base station, a set of [`ClientNode`]s with their
//! subscriptions pre-installed, and an [`AnyEngine`] (serial or sharded
//! parallel) over the union of the two node populations. [`Deployment`]
//! packages that.

use std::sync::Arc;

use mhh_simnet::{
    AnyEngine, Context, EngineArena, Envelope, Fabric, GridFabric, JitteredFabric, LinkModel,
    Network, Node, Partition, SimDuration, SimTime, TopologyKind,
};

use crate::address::{AddressBook, BrokerId, ClientId};
use crate::broker::{install_subscription, Broker, BrokerCore, MobilityProtocol};
use crate::client::ClientNode;
use crate::event::Event;
use crate::filter::Filter;
use crate::messages::{ClientAction, NetMsg, RepairMsg};
use crate::wire::{FanoutMode, FanoutStats};

/// Either a broker or a client, so one engine can hold the whole system.
// The variants are deliberately unboxed: nodes live in one long-lived Vec,
// so the size gap costs a few hundred bytes per client slot once, while
// boxing the broker would put a pointer chase on every event dispatch.
#[allow(clippy::large_enum_variant)]
pub enum SimNode<P: MobilityProtocol> {
    /// An event broker.
    Broker(Broker<P>),
    /// A (possibly mobile) client.
    Client(ClientNode),
}

impl<P: MobilityProtocol> SimNode<P> {
    /// The broker inside, if this node is a broker.
    pub fn as_broker(&self) -> Option<&Broker<P>> {
        match self {
            SimNode::Broker(b) => Some(b),
            SimNode::Client(_) => None,
        }
    }

    /// The client inside, if this node is a client.
    pub fn as_client(&self) -> Option<&ClientNode> {
        match self {
            SimNode::Broker(_) => None,
            SimNode::Client(c) => Some(c),
        }
    }
}

impl<P: MobilityProtocol> Node<NetMsg<P::Msg>> for SimNode<P> {
    fn on_message(&mut self, env: Envelope<NetMsg<P::Msg>>, ctx: &mut Context<NetMsg<P::Msg>>) {
        match self {
            SimNode::Broker(b) => b.on_message(env, ctx),
            SimNode::Client(c) => c.on_message(env, ctx),
        }
    }
}

/// Configuration of a deployment.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Grid side length (k ⇒ k² brokers for the grid-family and random
    /// topologies; edge lists bring their own count).
    pub grid_side: usize,
    /// Which network shape to build (default: the paper's grid).
    pub topology: TopologyKind,
    /// Seed for the topology and overlay tree construction.
    pub seed: u64,
    /// Wired per-hop latency (paper: 10 ms).
    pub wired_latency: SimDuration,
    /// Wireless link latency (paper: 20 ms).
    pub wireless_latency: SimDuration,
    /// Variable-latency link model (`None` = the paper's constant links;
    /// a constant model is also treated as `None`, keeping zero-jitter runs
    /// on the unwrapped fast path).
    pub link_model: Option<LinkModel>,
    /// Whether brokers apply the covering optimisation.
    pub covering: bool,
    /// Worker shards for the conservative-parallel engine. `0` and `1` run
    /// the serial [`Engine`](mhh_simnet::Engine); `k > 1` partitions brokers
    /// into `k` contiguous blocks (clients follow their home broker) and runs
    /// the [`mhh_simnet::ParallelEngine`], which reconstructs the serial
    /// delivery sequence byte for byte — results are identical either way.
    pub engine_workers: usize,
    /// How brokers materialize event wire forms during fan-out: serialize
    /// once and share ([`FanoutMode::Cached`], the default) or render per
    /// destination ([`FanoutMode::CloneBaseline`]). Delivery behavior is
    /// byte-identical either way; only the accounting differs.
    pub fanout_mode: FanoutMode,
    /// Enable the retained-message store: brokers keep each publisher's last
    /// routed event and replay matches to newly attaching subscribers.
    pub retained: bool,
    /// Shared-subscription group size: clients on the same broker are
    /// bucketed into groups of this size and each event goes to exactly one
    /// member per group. `0` or `1` disables grouping.
    pub shared_group_size: u32,
    /// Track broker memory high-water marks (buffered protocol bytes and
    /// checkpoint sizes). Off by default — the sampling walk is per-message.
    pub track_mem: bool,
    /// Per-client duplicate-suppression window on brokers: remember this many
    /// recent event ids (plus per-publisher sequence watermarks) and drop
    /// re-deliveries. `0` disables dedup and keeps the untouched fast path.
    pub dedup_window: usize,
    /// End-to-end publish reliability: brokers ack accepted publishes and
    /// publishers retransmit unacked events with bounded exponential backoff.
    pub retransmit: bool,
    /// Neighbour-replicated checkpoint period in milliseconds. When non-zero
    /// every broker pushes a checkpoint of its durable state to its lowest-id
    /// overlay neighbour on this period, and a crashed broker restores from
    /// that (possibly stale) replica instead of its own last self-checkpoint.
    /// `0` keeps the legacy local self-checkpoint restore.
    pub checkpoint_replication_ms: u64,
    /// The instant (in milliseconds) past which the replication tick stops
    /// re-arming — normally the workload horizon. Required whenever
    /// `checkpoint_replication_ms` is non-zero: the self-rearming tick
    /// would otherwise keep `run_to_completion` from ever draining. `0`
    /// (the default) leaves replication unarmed.
    pub replication_horizon_ms: u64,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            grid_side: 3,
            topology: TopologyKind::Grid,
            seed: 1,
            wired_latency: SimDuration::from_millis(10),
            wireless_latency: SimDuration::from_millis(20),
            link_model: None,
            covering: true,
            engine_workers: 0,
            fanout_mode: FanoutMode::default(),
            retained: false,
            shared_group_size: 0,
            track_mem: false,
            dedup_window: 0,
            retransmit: false,
            checkpoint_replication_ms: 0,
            replication_horizon_ms: 0,
        }
    }
}

/// A fully-built simulated pub/sub system, ready to run.
pub struct Deployment<P: MobilityProtocol> {
    /// The broker network.
    pub network: Arc<Network>,
    /// The address book.
    pub book: AddressBook,
    /// The engine holding all broker and client nodes (serial or parallel
    /// per [`DeploymentConfig::engine_workers`]; same results either way).
    pub engine: AnyEngine<NetMsg<P::Msg>, SimNode<P>>,
}

/// Description of one client to create.
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// Subscription filter.
    pub filter: Filter,
    /// Initial (home) broker.
    pub home: BrokerId,
    /// Whether the client is in the mobile 20 %.
    pub mobile: bool,
    /// Whether the client starts attached to its home broker with its
    /// subscription pre-installed (the default). Detached clients join the
    /// system only when the workload schedules their first
    /// [`ClientAction::Reconnect`], which the broker treats as an initial
    /// connect — the late-subscriber shape retained-replay scenarios need.
    pub initially_attached: bool,
}

impl<P: MobilityProtocol> Deployment<P> {
    /// Build a deployment. `make_protocol` constructs one protocol instance
    /// per broker, `clients` describes the client population; every client is
    /// attached to its home broker with its subscription pre-installed
    /// everywhere (no warm-up messages). The network is built from the
    /// config's [`TopologyKind`]; use [`build_on`](Self::build_on) to share
    /// an already-built network (the harness builds it once per run for the
    /// workload generator, the fabric and the deployment together).
    pub fn build(
        config: &DeploymentConfig,
        clients: &[ClientSpec],
        make_protocol: impl FnMut(BrokerId) -> P,
    ) -> Self {
        let network = Arc::new(config.topology.build(config.grid_side, config.seed));
        Self::build_on(network, config, clients, make_protocol)
    }

    /// [`build`](Self::build) over an already-constructed network (the
    /// config's `grid_side`/`topology` are ignored in favour of it).
    pub fn build_on(
        network: Arc<Network>,
        config: &DeploymentConfig,
        clients: &[ClientSpec],
        make_protocol: impl FnMut(BrokerId) -> P,
    ) -> Self {
        Self::build_on_in(network, config, clients, make_protocol, EngineArena::new())
    }

    /// [`build_on`](Self::build_on) reusing a recycled
    /// [`EngineArena`] (from [`AnyEngine::recycle`]) so sweep workers
    /// running many deployments back to back stop re-growing the engine's
    /// event-queue, clock and scratch storage on every run. The arena only
    /// feeds the serial backend; a parallel build (`engine_workers > 1`)
    /// uses sharded storage and drops it.
    pub fn build_on_in(
        network: Arc<Network>,
        config: &DeploymentConfig,
        clients: &[ClientSpec],
        mut make_protocol: impl FnMut(BrokerId) -> P,
        arena: EngineArena<NetMsg<P::Msg>>,
    ) -> Self {
        let broker_count = network.broker_count();
        let book = AddressBook::new(broker_count, clients.len());
        let base = GridFabric::new(
            network.clone(),
            config.wired_latency,
            config.wireless_latency,
        );
        // Zero-jitter runs keep the unwrapped fabric: one virtual call per
        // message, byte-identical to the pre-refactor constant-latency path.
        let fabric: Arc<dyn Fabric> = match &config.link_model {
            Some(model) if !model.is_constant() => {
                Arc::new(JitteredFabric::new(base, model.clone()))
            }
            _ => Arc::new(base),
        };

        let mut brokers: Vec<Broker<P>> = book
            .brokers()
            .map(|b| {
                Broker::new(
                    BrokerCore::new(b, book, network.clone(), config.covering)
                        .with_fanout_mode(config.fanout_mode)
                        .with_retained(config.retained)
                        .with_shared_groups(config.shared_group_size)
                        .with_mem_tracking(config.track_mem)
                        .with_dedup_window(config.dedup_window)
                        .with_publish_acks(config.retransmit)
                        .with_checkpoint_replication(
                            SimDuration::from_millis(config.checkpoint_replication_ms),
                            SimTime::from_millis(config.replication_horizon_ms),
                        ),
                    make_protocol(b),
                )
            })
            .collect();

        let mut client_nodes = Vec::with_capacity(clients.len());
        for (i, spec) in clients.iter().enumerate() {
            let id = ClientId(i as u32);
            let mut node = ClientNode::new(id, book, spec.filter.clone(), spec.home);
            if spec.initially_attached {
                install_subscription(&mut brokers, &network, id, &spec.filter, spec.home, true);
                node.attach_initially();
            }
            node.mobile = spec.mobile;
            node.retransmit = config.retransmit;
            client_nodes.push(node);
        }

        let mut nodes: Vec<SimNode<P>> = brokers.into_iter().map(SimNode::Broker).collect();
        nodes.extend(client_nodes.into_iter().map(SimNode::Client));
        let engine = if config.engine_workers > 1 {
            let homes: Vec<usize> = clients.iter().map(|s| s.home.0 as usize).collect();
            let partition = Partition::broker_blocks(&network, &homes, config.engine_workers);
            AnyEngine::parallel(nodes, fabric, &partition)
        } else {
            AnyEngine::serial_in(nodes, fabric, arena)
        };
        Deployment {
            network,
            book,
            engine,
        }
    }

    /// Seed the neighbour-replication clock: schedule every broker's first
    /// [`RepairMsg::ReplicateTick`] one period into the run (each tick
    /// re-arms itself from inside the repair handler, until the
    /// replication horizon). A no-op unless the deployment was built with
    /// both [`DeploymentConfig::checkpoint_replication_ms`] and
    /// [`DeploymentConfig::replication_horizon_ms`] set. Callers that
    /// reserve external sequence numbers (the harness runner) must arm
    /// *after* reserving — arming draws ordinary sequence numbers.
    pub fn arm_replication_ticks(&mut self) {
        let (period, until) = self
            .brokers()
            .map(|b| (b.core.replication_period, b.core.replication_until))
            .next()
            .unwrap_or((SimDuration::ZERO, SimTime::ZERO));
        let first = SimTime::ZERO + period;
        if period == SimDuration::ZERO || first > until {
            return;
        }
        for b in self.book.brokers() {
            self.engine.schedule_external(
                first,
                self.book.broker_node(b),
                NetMsg::Repair(RepairMsg::ReplicateTick),
            );
        }
    }

    /// Schedule a client action at an absolute time.
    pub fn schedule(&mut self, at: SimTime, client: ClientId, action: ClientAction) {
        self.engine
            .schedule_external(at, self.book.client_node(client), NetMsg::Action(action));
    }

    /// Schedule a publish action.
    pub fn schedule_publish(&mut self, at: SimTime, client: ClientId, event: Event) {
        self.schedule(at, client, ClientAction::Publish(event));
    }

    /// Borrow a broker.
    pub fn broker(&self, id: BrokerId) -> &Broker<P> {
        self.engine
            .node(self.book.broker_node(id))
            .as_broker()
            .expect("broker node ids map to brokers")
    }

    /// Borrow a client.
    pub fn client(&self, id: ClientId) -> &ClientNode {
        self.engine
            .node(self.book.client_node(id))
            .as_client()
            .expect("client node ids map to clients")
    }

    /// Iterate over all brokers.
    pub fn brokers(&self) -> impl Iterator<Item = &Broker<P>> {
        self.engine.nodes().filter_map(SimNode::as_broker)
    }

    /// Iterate over all clients.
    pub fn clients(&self) -> impl Iterator<Item = &ClientNode> {
        self.engine.nodes().filter_map(SimNode::as_client)
    }

    /// All events still buffered by the mobility protocol across brokers, as
    /// `(client, event id)` pairs (for the delivery audit).
    pub fn buffered_events(&self) -> Vec<(ClientId, crate::event::EventId)> {
        self.brokers()
            .flat_map(|b| b.proto.buffered_events())
            .map(|(c, e)| (c, e.id))
            .collect()
    }

    /// Fan-out accounting summed over every broker.
    pub fn fanout_stats(&self) -> FanoutStats {
        let mut total = FanoutStats::default();
        for b in self.brokers() {
            total.merge(&b.core.fanout);
        }
        total
    }

    /// Highest buffered-bytes sample observed at any single broker (only
    /// non-zero when [`DeploymentConfig::track_mem`] was set).
    pub fn buffered_bytes_peak(&self) -> u64 {
        self.brokers()
            .map(|b| b.core.buffered_bytes_peak)
            .max()
            .unwrap_or(0)
    }

    /// Largest modeled checkpoint written by any single broker restart.
    pub fn checkpoint_bytes_peak(&self) -> u64 {
        self.brokers()
            .map(|b| b.core.checkpoint_bytes_peak)
            .max()
            .unwrap_or(0)
    }

    /// Duplicate deliveries suppressed by broker dedup, summed system-wide.
    pub fn duplicates_suppressed(&self) -> u64 {
        self.brokers().map(|b| b.core.duplicates_suppressed).sum()
    }

    /// Publisher-side retransmissions sent, summed over all clients.
    pub fn retransmissions(&self) -> u64 {
        self.clients().map(|c| c.retransmissions).sum()
    }

    /// Subscriptions re-installed because a restored replica was stale,
    /// summed over all brokers.
    pub fn stale_resubscribes(&self) -> u64 {
        self.brokers().map(|b| b.core.stale_resubscribes).sum()
    }

    /// Highest dedup-state sample observed at any single broker (only
    /// non-zero when [`DeploymentConfig::track_mem`] was set).
    pub fn dedup_bytes_peak(&self) -> u64 {
        self.brokers()
            .map(|b| b.core.dedup_bytes_peak)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::NoProtocol;
    use crate::event::EventBuilder;
    use crate::filter::Op;

    fn specs(n: usize, brokers: usize) -> Vec<ClientSpec> {
        (0..n)
            .map(|i| ClientSpec {
                filter: Filter::single("group", Op::Eq, 1i64),
                home: BrokerId((i % brokers) as u32),
                mobile: false,
                initially_attached: true,
            })
            .collect()
    }

    #[test]
    fn build_wires_everything_up() {
        let config = DeploymentConfig::default();
        let clients = specs(5, 9);
        let dep: Deployment<NoProtocol> = Deployment::build(&config, &clients, |_| NoProtocol);
        assert_eq!(dep.book.broker_count(), 9);
        assert_eq!(dep.book.client_count(), 5);
        assert_eq!(dep.engine.node_count(), 14);
        assert_eq!(dep.clients().count(), 5);
        assert_eq!(dep.brokers().count(), 9);
        assert!(dep.client(ClientId(0)).current_broker.is_some());
    }

    #[test]
    fn parallel_deployment_matches_serial() {
        let clients = specs(6, 9);
        let event = EventBuilder::new()
            .attr("group", 1i64)
            .build(1, ClientId(2), 0);
        let run = |workers: usize| {
            let config = DeploymentConfig {
                engine_workers: workers,
                ..DeploymentConfig::default()
            };
            let mut dep: Deployment<NoProtocol> =
                Deployment::build(&config, &clients, |_| NoProtocol);
            dep.schedule_publish(SimTime::from_millis(1), ClientId(2), event.clone());
            dep.engine.run_to_completion();
            let received: Vec<String> =
                dep.clients().map(|c| format!("{:?}", c.received)).collect();
            (received, format!("{:?}", dep.engine.stats()))
        };
        let serial = run(0);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers), serial, "workers={workers}");
        }
    }

    #[test]
    fn scheduled_publish_is_delivered_to_all_other_subscribers() {
        let config = DeploymentConfig::default();
        let clients = specs(6, 9);
        let mut dep: Deployment<NoProtocol> = Deployment::build(&config, &clients, |_| NoProtocol);
        let event = EventBuilder::new()
            .attr("group", 1i64)
            .build(1, ClientId(2), 0);
        dep.schedule_publish(SimTime::from_millis(1), ClientId(2), event);
        dep.engine.run_to_completion();
        for c in dep.clients() {
            if c.id == ClientId(2) {
                assert!(c.received.is_empty());
            } else {
                assert_eq!(c.received.len(), 1, "client {} missed the event", c.id);
            }
        }
    }
}
