//! # mhh-pubsub — content-based publish/subscribe substrate
//!
//! This crate implements the system model of Section 3 of the MHH paper:
//! a content-based publish/subscribe system whose event brokers form an
//! acyclic overlay (a spanning tree of the physical broker network) and route
//! events by reverse path forwarding (RPF).
//!
//! The crate provides:
//!
//! * events and attribute values ([`event`], [`value`]),
//! * conjunctive content filters with matching and *covering* ([`filter`]),
//! * the per-broker filter table with the *accept-only-from* labels that the
//!   MHH subscription-migration relies on ([`filter_table`]),
//! * persistent / temporary event queues and the distributed-queue-list
//!   bookkeeping ([`queue`]),
//! * the on-wire message set, generic over a mobility protocol
//!   ([`messages`]),
//! * the broker node: protocol-agnostic core plus a
//!   [`broker::MobilityProtocol`] trait that `mhh-core`
//!   (MHH itself) and `mhh-baselines` (sub-unsub, home-broker) plug into
//!   ([`broker`]),
//! * the mobile client node ([`client`]),
//! * type-erased protocols ([`dynproto`]): any [`MobilityProtocol`] can run
//!   behind a `Box<dyn DynProtocol>` (`Deployment<Box<dyn DynProtocol>>`),
//!   which is what lets registries and data-driven experiments pick
//!   protocols by name at run time, and
//! * delivery auditing: exactly-once, loss, duplication and per-publisher
//!   ordering checks ([`delivery`]), and
//! * overlay repair under injected faults ([`repair`]): sticky-path
//!   re-routing around crashed brokers, partition tunneling, and broker
//!   checkpoint/restore with a protocol [`broker::MobilityProtocol::on_restart`]
//!   recovery hook.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod broker;
pub mod client;
pub mod delivery;
pub mod deployment;
pub mod dynproto;
pub mod event;
pub mod filter;
pub mod filter_table;
pub mod messages;
pub mod queue;
pub mod repair;
pub mod value;
pub mod wire;

pub use address::{AddressBook, BrokerId, ClientId, Peer};
pub use broker::{Broker, BrokerCore, BrokerCtx, MobilityProtocol};
pub use client::{ClientNode, DeliveryRecord, DisconnectRecord, ReconnectRecord};
pub use delivery::{audit, DeliveryAudit};
pub use deployment::{ClientSpec, Deployment, DeploymentConfig, SimNode};
pub use dynproto::{erase, BoxedMsg, DynProtocol, ErasedProtocol};
pub use event::{Event, EventId};
pub use filter::{Constraint, Filter, Op};
pub use filter_table::{FilterEntry, FilterTable};
pub use messages::{ClientAction, ConnectInfo, NetMsg, ProtocolMessage, RepairMsg};
pub use queue::{EventQueue, PqId, QueueKind};
pub use repair::{repair_drives, BrokerCheckpoint, RepairState};
pub use value::Value;
pub use wire::{CachedEvent, FanoutMode, FanoutStats};
