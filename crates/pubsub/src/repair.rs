//! Overlay repair: routing around crashed brokers and partitioned links,
//! and restoring broker state from a checkpoint after a restart.
//!
//! The repair layer keeps the paper's acyclic-overlay routing usable while a
//! [`FaultSchedule`] is active:
//!
//! * **sticky-path crash repair** — routes through a broker are kept until
//!   that broker actually dies. When it does, each surviving tree neighbor
//!   drops its routes through the dead broker and *announces* the filters it
//!   still needs toward a deterministic **detour hub** (the dead broker's
//!   lowest-id surviving neighbor), which installs temporary **detour**
//!   entries pointing at the announcer and relays the announcement to the
//!   other neighbors, which route via the hub. The detour overlay is thus a
//!   star centred on the hub — a tree — so reverse-path-forwarding's
//!   from-exclusion keeps detoured events loop-free whatever the dead
//!   broker's tree degree. When the broker restarts, the detours are
//!   reverted and both sides resync.
//! * **partition tunneling** — a severed broker↔broker channel (both ends
//!   alive) is bridged by wrapping every envelope for the unreachable peer in
//!   a [`RepairMsg::Tunnel`] through a relay broker; the destination unwraps
//!   it and processes the inner message exactly as if it had arrived
//!   directly, so routing semantics (RPF exclusions, protocol handshakes)
//!   are unchanged.
//! * **checkpoint/restore** — a restarting broker reloads its durable state
//!   ([`BrokerCheckpoint`]: filter table + connected set) and hands control
//!   to the mobility protocol's
//!   [`on_restart`](crate::broker::MobilityProtocol::on_restart) hook; timers
//!   and in-flight messages are lost (the engine dropped them), which is
//!   precisely what the hook must recover from.
//!
//! Failure *detection* is driven deterministically: [`repair_drives`]
//! translates a fault schedule into the timeout envelopes a real failure
//! detector would produce (`PeerDown` after a detection delay, `Restarted` /
//! `PeerUp` at the heal instant), so the whole repair sequence is a pure
//! function of the schedule and the seed.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use mhh_simnet::{FaultSchedule, Network, NodeId, OutageScope, SimDuration, SimTime};

use crate::address::{AddressBook, BrokerId, ClientId, Peer};
use crate::broker::{Broker, BrokerCore, BrokerCtx, MobilityProtocol};
use crate::filter::Filter;
use crate::filter_table::FilterTable;
use crate::messages::{NetMsg, ProtocolMessage, RepairMsg};

/// Per-broker repair bookkeeping, embedded in [`BrokerCore`].
#[derive(Debug, Clone, Default)]
pub struct RepairState {
    /// Tree neighbors currently believed crashed.
    pub dead: BTreeSet<BrokerId>,
    /// Detour entries installed while a broker was dead:
    /// `dead → [(via, filter)]`, reverted on `PeerUp`.
    pub detours: BTreeMap<BrokerId, Vec<(BrokerId, Filter)>>,
    /// Partitioned peers and the relay to tunnel through:
    /// `unreachable → relay`. Shared with every [`BrokerCtx`] so all
    /// broker→broker sends are transparently tunneled.
    pub tunnels: Arc<BTreeMap<BrokerId, BrokerId>>,
    /// Checkpoint replicas this broker holds *for* its neighbors
    /// (`owner → last pushed snapshot`). Soft state: wiped when the holder
    /// itself restarts, which is exactly the double-failure a real replica
    /// store would lose.
    pub replicas: BTreeMap<BrokerId, BrokerCheckpoint>,
}

/// The durable state a broker reloads after a restart (the "synchronous
/// checkpointing" model: the filter table and client attachments survive,
/// soft protocol state, timers and in-flight messages do not).
#[derive(Debug, Clone)]
pub struct BrokerCheckpoint {
    /// The filter table at checkpoint time.
    pub filters: FilterTable,
    /// Locally connected clients and their filters.
    pub connected: BTreeMap<ClientId, Filter>,
}

impl BrokerCheckpoint {
    /// Modeled on-disk size of the checkpoint: a 4-byte peer id plus the
    /// filter's [`Filter::modeled_bytes`] per filter-table entry, and the
    /// same per connected client. Pure accounting — restores never pay a
    /// size-dependent latency.
    pub fn modeled_bytes(&self) -> u64 {
        let table: u64 = self
            .filters
            .entries()
            .map(|e| 4 + e.filter.modeled_bytes())
            .sum();
        let connected: u64 = self.connected.values().map(|f| 4 + f.modeled_bytes()).sum();
        table + connected
    }
}

impl BrokerCore {
    /// Snapshot this broker's durable state.
    pub fn checkpoint(&self) -> BrokerCheckpoint {
        BrokerCheckpoint {
            filters: self.filters.clone(),
            connected: self.connected.clone(),
        }
    }

    /// Reload durable state from a checkpoint (everything else — repair
    /// bookkeeping, protocol soft state — is the caller's to reset).
    pub fn restore(&mut self, checkpoint: BrokerCheckpoint) {
        self.filters = checkpoint.filters;
        self.connected = checkpoint.connected;
    }

    /// Overlay-tree neighbors of an arbitrary broker.
    pub fn tree_neighbors_of(&self, broker: BrokerId) -> Vec<BrokerId> {
        self.network
            .tree
            .neighbors(broker.index())
            .iter()
            .map(|&n| BrokerId(n as u32))
            .collect()
    }

    /// Every distinct filter this broker still has at least one entry for —
    /// the set of filters it must keep receiving matching events for.
    pub fn needed_filters(&self) -> Vec<Filter> {
        let mut out: Vec<Filter> = Vec::new();
        for e in self.filters.entries() {
            if !out.contains(&e.filter) {
                out.push(e.filter.clone());
            }
        }
        out
    }

    /// The deterministic detour hub for a dead broker: its lowest-id tree
    /// neighbor this broker still believes alive. All detour announces flow
    /// through the hub, which re-announces them to the dead broker's other
    /// neighbors — the detour overlay is a *star* centred on the hub. A star
    /// is a tree, so reverse-path forwarding's from-exclusion keeps detoured
    /// events loop-free whatever the dead broker's tree degree (an all-to-all
    /// detour mesh is a clique, and from-exclusion only breaks 2-cycles:
    /// three or more neighbors would circulate events forever).
    pub fn detour_hub(&self, dead: BrokerId) -> Option<BrokerId> {
        self.tree_neighbors_of(dead)
            .into_iter()
            .filter(|nb| !self.repair.dead.contains(nb))
            .min()
    }

    /// The deterministic neighbor holding this broker's checkpoint replica:
    /// its lowest-id overlay-tree neighbor. `None` for a broker with no
    /// tree neighbors (single-broker deployments), which disables
    /// replication for it.
    pub fn replica_holder(&self) -> Option<BrokerId> {
        self.neighbors().into_iter().min()
    }

    /// A tree neighbor crashed: drop every route through it and announce the
    /// filters still needed here toward the detour hub, which installs detour
    /// entries pointing back at this broker (and, as hub, relays the
    /// announcement to the dead broker's other neighbors).
    pub fn repair_peer_down<P: ProtocolMessage>(
        &mut self,
        dead: BrokerId,
        ctx: &mut BrokerCtx<'_, P>,
    ) {
        if !self.repair.dead.insert(dead) {
            return;
        }
        self.filters.remove_peer(Peer::Broker(dead));
        let needed = self.needed_filters();
        if needed.is_empty() {
            return;
        }
        let Some(hub) = self.detour_hub(dead) else {
            return;
        };
        if hub == self.id {
            for nb in self.tree_neighbors_of(dead) {
                if nb == self.id || self.repair.dead.contains(&nb) {
                    continue;
                }
                ctx.send_to_broker(
                    nb,
                    NetMsg::Repair(RepairMsg::Announce {
                        dead: Some(dead),
                        filters: needed.clone(),
                    }),
                );
            }
        } else {
            ctx.send_to_broker(
                hub,
                NetMsg::Repair(RepairMsg::Announce {
                    dead: Some(dead),
                    filters: needed,
                }),
            );
        }
    }

    /// A filter announcement arrived from `from`. Detour announces
    /// (`dead: Some`) install direct entries reverted at `PeerUp` — and when
    /// this broker is the detour hub, the freshly installed filters are
    /// relayed to the dead broker's other surviving neighbors so they route
    /// via the hub (keeping the detour overlay a star, see
    /// [`detour_hub`](Self::detour_hub)). Resync announces (`dead: None`)
    /// are applied as ordinary mobility subscriptions so genuinely new
    /// filters re-propagate past this broker (subscriptions that arose while
    /// a neighbor was down never crossed it).
    pub fn repair_announce<P: ProtocolMessage>(
        &mut self,
        from: BrokerId,
        dead: Option<BrokerId>,
        filters: Vec<Filter>,
        ctx: &mut BrokerCtx<'_, P>,
    ) {
        match dead {
            Some(d) => {
                // A detour announce for a broker no longer believed dead is
                // late (the outage healed while the announce was in flight):
                // installing it now would leave a stale entry no `PeerUp`
                // will ever revert, and stale detours alongside healed tree
                // routes form routing cycles.
                if !self.repair.dead.contains(&d) {
                    return;
                }
                let mut fresh = Vec::new();
                for f in filters {
                    if self.filters.add(Peer::Broker(from), f.clone()) {
                        self.repair
                            .detours
                            .entry(d)
                            .or_default()
                            .push((from, f.clone()));
                        fresh.push(f);
                    }
                }
                if !fresh.is_empty() && self.detour_hub(d) == Some(self.id) {
                    for nb in self.tree_neighbors_of(d) {
                        if nb == self.id || nb == from || self.repair.dead.contains(&nb) {
                            continue;
                        }
                        ctx.send_to_broker(
                            nb,
                            NetMsg::Repair(RepairMsg::Announce {
                                dead: Some(d),
                                filters: fresh.clone(),
                            }),
                        );
                    }
                }
            }
            None => {
                for f in filters {
                    self.apply_subscribe(Peer::Broker(from), f, true, ctx);
                }
            }
        }
    }

    /// A crashed tree neighbor restarted: revert the detours that were
    /// routing around it and resync it with the filters still needed here.
    pub fn repair_peer_up<P: ProtocolMessage>(
        &mut self,
        peer: BrokerId,
        ctx: &mut BrokerCtx<'_, P>,
    ) {
        if !self.repair.dead.remove(&peer) {
            return;
        }
        if let Some(detours) = self.repair.detours.remove(&peer) {
            for (via, f) in detours {
                self.filters.remove(Peer::Broker(via), &f);
            }
        }
        let needed = self.needed_filters();
        if !needed.is_empty() {
            ctx.send_to_broker(
                peer,
                NetMsg::Repair(RepairMsg::Announce {
                    dead: None,
                    filters: needed,
                }),
            );
        }
    }

    /// Start (or update) tunneling for a partitioned peer.
    pub fn repair_link_down(&mut self, peer: BrokerId, relay: BrokerId) {
        Arc::make_mut(&mut self.repair.tunnels).insert(peer, relay);
    }

    /// The partition toward `peer` healed: stop tunneling.
    pub fn repair_link_up(&mut self, peer: BrokerId) {
        Arc::make_mut(&mut self.repair.tunnels).remove(&peer);
    }
}

impl<P: MobilityProtocol> Broker<P> {
    /// Handle a repair message. `from` is the sending broker (or this
    /// broker's own id for driver-injected notifications).
    pub(crate) fn on_repair(
        &mut self,
        from: BrokerId,
        msg: RepairMsg<P::Msg>,
        ctx: &mut BrokerCtx<'_, P::Msg>,
    ) {
        match msg {
            RepairMsg::PeerDown { peer } => self.core.repair_peer_down(peer, ctx),
            RepairMsg::PeerUp { peer } => self.core.repair_peer_up(peer, ctx),
            RepairMsg::LinkDown { peer, relay } => self.core.repair_link_down(peer, relay),
            RepairMsg::LinkUp { peer } => self.core.repair_link_up(peer),
            RepairMsg::Announce { dead, filters } => {
                self.core.repair_announce(from, dead, filters, ctx)
            }
            RepairMsg::Restarted => {
                // Detour entries are soft state living inside the durable
                // filter table: revert any recorded before the crash, because
                // the restart wipes the bookkeeping (`PeerUp` may itself have
                // been dropped while this broker was down) and a stale detour
                // alongside resynced tree routes is a routing cycle. Taking
                // the repair state also wipes any replicas this broker held
                // for *other* brokers — a restart loses them.
                let repair = std::mem::take(&mut self.core.repair);
                for detours in repair.detours.into_values() {
                    for (via, f) in detours {
                        self.core.filters.remove(Peer::Broker(via), &f);
                    }
                }
                self.core.repair = RepairState::default();
                let holder = (self.core.replication_period > SimDuration::ZERO)
                    .then(|| self.core.replica_holder())
                    .flatten();
                if let Some(holder) = holder {
                    // Neighbour-replicated restart: defer the restore until
                    // the holder's (stale) replica arrives, stashing the
                    // pre-crash attachment set to price the staleness.
                    // Timers died with the crash, so re-arm the replication
                    // tick here.
                    self.core.pending_restore = Some(self.core.connected.clone());
                    ctx.send_to_broker(
                        holder,
                        NetMsg::Repair(RepairMsg::ReplicaRequest {
                            owner: self.core.id,
                        }),
                    );
                    self.rearm_replication(ctx);
                } else {
                    // Reload durable state from the synchronous checkpoint
                    // (the round-trip models the reload; timers and in-flight
                    // messages were dropped by the engine while the window
                    // was active).
                    let checkpoint = self.core.checkpoint();
                    if self.core.track_mem {
                        let bytes = checkpoint.modeled_bytes();
                        self.core.note_checkpoint_bytes(bytes);
                    }
                    self.core.restore(checkpoint);
                    self.finish_restart(ctx);
                }
            }
            RepairMsg::ReplicateTick => {
                if self.core.replication_period > SimDuration::ZERO {
                    if let Some(holder) = self.core.replica_holder() {
                        let checkpoint = self.core.checkpoint();
                        if self.core.track_mem {
                            let bytes = checkpoint.modeled_bytes();
                            self.core.note_checkpoint_bytes(bytes);
                        }
                        ctx.send_to_broker(
                            holder,
                            NetMsg::Repair(RepairMsg::Replicate {
                                owner: self.core.id,
                                checkpoint: Box::new(checkpoint),
                            }),
                        );
                    }
                    self.rearm_replication(ctx);
                }
            }
            RepairMsg::Replicate { owner, checkpoint } => {
                self.core.repair.replicas.insert(owner, *checkpoint);
            }
            RepairMsg::ReplicaRequest { owner } => {
                let replica = self.core.repair.replicas.get(&owner).cloned().map(Box::new);
                ctx.send_to_broker(
                    owner,
                    NetMsg::Repair(RepairMsg::ReplicaResponse { owner, replica }),
                );
            }
            RepairMsg::ReplicaResponse { owner: _, replica } => {
                self.finish_replica_restore(replica.map(|b| *b), ctx);
            }
            RepairMsg::Tunnel { src, dst, inner } => {
                if dst == self.core.id {
                    // Final hop: process the inner message exactly as if it
                    // had arrived directly from the original sender.
                    self.dispatch(ctx.book().broker_node(src), *inner, ctx);
                } else {
                    // Relay hop: pass the tunnel through unchanged.
                    ctx.send_to_broker(dst, NetMsg::Repair(RepairMsg::Tunnel { src, dst, inner }));
                }
            }
        }
    }

    /// Schedule the next [`RepairMsg::ReplicateTick`] — unless it would
    /// land past the replication horizon. The bound is what lets a run
    /// drain to quiescence after the workload ends: an unconditional
    /// re-arm would keep the event queue non-empty forever.
    fn rearm_replication(&mut self, ctx: &mut BrokerCtx<'_, P::Msg>) {
        let period = self.core.replication_period;
        if period > SimDuration::ZERO && ctx.now() + period <= self.core.replication_until {
            ctx.schedule_repair(period, RepairMsg::ReplicateTick);
        }
    }

    /// The replica holder's response arrived: restore from the stale
    /// snapshot (or restart cold when none survived), re-subscribe clients
    /// the replica predates, and run the common post-restart recovery.
    fn finish_replica_restore(
        &mut self,
        replica: Option<BrokerCheckpoint>,
        ctx: &mut BrokerCtx<'_, P::Msg>,
    ) {
        let pre_crash = self.core.pending_restore.take().unwrap_or_default();
        match replica {
            Some(checkpoint) => {
                if self.core.track_mem {
                    let bytes = checkpoint.modeled_bytes();
                    self.core.note_checkpoint_bytes(bytes);
                }
                self.core.restore(checkpoint);
            }
            None => {
                // No replica survived (the holder restarted too, or the
                // crash beat the first tick): cold restart. Broker-peer
                // routes are rebuilt by the neighbors' resync announces.
                self.core.filters = FilterTable::new();
                self.core.connected = BTreeMap::new();
            }
        }
        // Staleness cost: clients attached before the crash but absent from
        // the replica (they arrived after the last tick) re-subscribe from
        // scratch — real subscription-propagation traffic, attributed in
        // the recovery ledger.
        for (client, filter) in pre_crash {
            if !self.core.connected.contains_key(&client) {
                self.core.stale_resubscribes += 1;
                self.core.connected.insert(client, filter.clone());
                self.core
                    .apply_subscribe(Peer::Client(client), filter, true, ctx);
            }
        }
        self.finish_restart(ctx);
    }

    /// Common tail of both restart flavors: give the mobility protocol its
    /// recovery hook, then resync filters with the overlay neighbors.
    fn finish_restart(&mut self, ctx: &mut BrokerCtx<'_, P::Msg>) {
        self.proto.on_restart(&mut self.core, ctx);
        let needed = self.core.needed_filters();
        if !needed.is_empty() {
            for nb in self.core.neighbors() {
                ctx.send_to_broker(
                    nb,
                    NetMsg::Repair(RepairMsg::Announce {
                        dead: None,
                        filters: needed.clone(),
                    }),
                );
            }
        }
    }
}

/// Translate a fault schedule into the deterministic "timeout envelope"
/// stream that drives the repair layer: for every window, failure
/// notifications `detection_delay` after the outage starts and heal
/// notifications at the instant it ends.
///
/// * **crash** (broker [`OutageScope::Node`]): `PeerDown` to each tree
///   neighbor once detected, then `Restarted` to the broker itself and
///   `PeerUp` to the neighbors at the restart instant;
/// * **region**: as crash for every broker in the region, with notifications
///   only to tree neighbors *outside* the region (brokers inside are down
///   and would drop them anyway);
/// * **partition** ([`OutageScope::Link`]): `LinkDown` with a deterministic
///   relay (the lowest-id broker that is neither endpoint) to both ends,
///   `LinkUp` at the heal instant.
///
/// Windows too short to detect (`start + detection_delay >= end`) produce no
/// down-phase notifications; crashes still get the `Restarted` kick so the
/// mobility protocol can recover lost timers.
pub fn repair_drives<P>(
    schedule: &FaultSchedule,
    network: &Network,
    book: &AddressBook,
    detection_delay: SimDuration,
) -> Vec<(SimTime, NodeId, NetMsg<P>)> {
    let broker_count = network.broker_count();
    let as_broker = |n: NodeId| (n.index() < broker_count).then_some(BrokerId(n.0));
    let mut out: Vec<(SimTime, NodeId, NetMsg<P>)> = Vec::new();

    for window in schedule.windows() {
        let detect = window.start + detection_delay;
        let detected = detect < window.end;
        match &window.scope {
            OutageScope::Node(n) => {
                let Some(b) = as_broker(*n) else { continue };
                broker_outage_drives(
                    &mut out,
                    network,
                    book,
                    b,
                    detect,
                    detected,
                    window.end,
                    &[],
                );
            }
            OutageScope::Region(nodes) => {
                let down: Vec<BrokerId> = nodes.iter().filter_map(|&n| as_broker(n)).collect();
                for &b in &down {
                    broker_outage_drives(
                        &mut out, network, book, b, detect, detected, window.end, &down,
                    );
                }
            }
            OutageScope::Link(x, y) => {
                let (Some(a), Some(b)) = (as_broker(*x), as_broker(*y)) else {
                    continue;
                };
                // Deterministic relay: the lowest-id broker that is neither
                // endpoint (partitions only sever the direct a↔b channel).
                let Some(relay) = (0..broker_count)
                    .map(|i| BrokerId(i as u32))
                    .find(|&r| r != a && r != b)
                else {
                    continue;
                };
                if detected {
                    for (me, peer) in [(a, b), (b, a)] {
                        out.push((
                            detect,
                            book.broker_node(me),
                            NetMsg::Repair(RepairMsg::LinkDown { peer, relay }),
                        ));
                    }
                    for (me, peer) in [(a, b), (b, a)] {
                        out.push((
                            window.end,
                            book.broker_node(me),
                            NetMsg::Repair(RepairMsg::LinkUp { peer }),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Drive messages for one crashed broker: `PeerDown`/`PeerUp` to its tree
/// neighbors outside `also_down`, plus the `Restarted` kick to itself.
#[allow(clippy::too_many_arguments)]
fn broker_outage_drives<P>(
    out: &mut Vec<(SimTime, NodeId, NetMsg<P>)>,
    network: &Network,
    book: &AddressBook,
    broker: BrokerId,
    detect: SimTime,
    detected: bool,
    end: SimTime,
    also_down: &[BrokerId],
) {
    let neighbors: Vec<BrokerId> = network
        .tree
        .neighbors(broker.index())
        .iter()
        .map(|&n| BrokerId(n as u32))
        .filter(|nb| !also_down.contains(nb))
        .collect();
    if detected {
        for &nb in &neighbors {
            out.push((
                detect,
                book.broker_node(nb),
                NetMsg::Repair(RepairMsg::PeerDown { peer: broker }),
            ));
        }
    }
    out.push((
        end,
        book.broker_node(broker),
        NetMsg::Repair(RepairMsg::Restarted),
    ));
    if detected {
        for &nb in &neighbors {
            out.push((
                end,
                book.broker_node(nb),
                NetMsg::Repair(RepairMsg::PeerUp { peer: broker }),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::NoProtocol;
    use crate::deployment::{ClientSpec, Deployment, DeploymentConfig};
    use crate::event::EventBuilder;
    use crate::filter::Op;
    use mhh_simnet::SimTime;

    fn filter(group: i64) -> Filter {
        Filter::single("group", Op::Eq, group)
    }

    /// A subscriber at one tree neighbor of the dead broker, a publisher at
    /// another: during the outage the event must detour around the dead
    /// broker, and after the restart the resync must restore the tree route.
    #[test]
    fn crash_detour_routes_around_dead_broker_and_heals() {
        let config = DeploymentConfig::default();
        let network = Arc::new(mhh_simnet::TopologyKind::Grid.build(config.grid_side, config.seed));
        // A broker with at least two overlay-tree neighbors sits on the
        // unique tree path between those neighbors.
        let dead = (0..network.broker_count())
            .find(|&b| network.tree.neighbors(b).len() >= 2)
            .expect("a 3x3 MST has interior nodes");
        let nbs = network.tree.neighbors(dead);
        let (sub_home, pub_home) = (BrokerId(nbs[0] as u32), BrokerId(nbs[1] as u32));
        let clients = vec![
            ClientSpec {
                filter: filter(1),
                home: sub_home,
                mobile: false,
                initially_attached: true,
            },
            ClientSpec {
                filter: filter(99),
                home: pub_home,
                mobile: false,
                initially_attached: true,
            },
        ];
        let schedule = FaultSchedule::new().crash(
            NodeId(dead as u32),
            SimTime::from_secs(1),
            SimTime::from_secs(10),
        );

        let run = |repair: bool| {
            let mut dep: Deployment<NoProtocol> =
                Deployment::build_on(network.clone(), &config, &clients, |_| NoProtocol);
            dep.engine.set_faults(Arc::new(schedule.clone()));
            if repair {
                let drives = repair_drives(
                    &schedule,
                    &network,
                    &dep.book,
                    SimDuration::from_millis(500),
                );
                for (at, node, msg) in drives {
                    dep.engine.schedule_external(at, node, msg);
                }
            }
            // One publish mid-outage (after detection), one after the heal.
            for (at, id) in [(3u64, 1u64), (12, 2)] {
                let event = EventBuilder::new()
                    .attr("group", 1i64)
                    .build(id, ClientId(1), id);
                dep.schedule_publish(SimTime::from_secs(at), ClientId(1), event);
            }
            dep.engine.run_to_completion();
            let ids: Vec<u64> = dep
                .client(ClientId(0))
                .received
                .iter()
                .map(|r| r.event.0)
                .collect();
            ids
        };

        assert_eq!(
            run(false),
            vec![2],
            "without repair the mid-outage event dies at the crashed broker"
        );
        assert_eq!(
            run(true),
            vec![1, 2],
            "the detour delivers the mid-outage event exactly once, \
             and the post-restart resync restores the tree route"
        );
    }

    /// Overlapping crashes on *adjacent* brokers: the second crash swallows
    /// the first broker's `PeerUp`/resync while the detour hub is down, so
    /// the hub restarts with detour entries still sitting in its (durable)
    /// filter table and no bookkeeping left to revert them. Stale detours
    /// alongside healed tree routes form a routing cycle whose events
    /// multiply without bound — this test only returns from
    /// `run_to_completion` because `Restarted` reverts recorded detours.
    #[test]
    fn overlapping_adjacent_crashes_heal_without_forwarding_storm() {
        let config = DeploymentConfig::default();
        let network = Arc::new(mhh_simnet::TopologyKind::Grid.build(config.grid_side, config.seed));
        let dead = (0..network.broker_count())
            .find(|&b| network.tree.neighbors(b).len() >= 2)
            .expect("a grid MST has interior nodes");
        let nbs = network.tree.neighbors(dead);
        let hub = *nbs.iter().min().expect("interior node has neighbors");
        let (sub_home, pub_home) = (BrokerId(nbs[0] as u32), BrokerId(nbs[1] as u32));
        let clients = vec![
            ClientSpec {
                filter: filter(1),
                home: sub_home,
                mobile: false,
                initially_attached: true,
            },
            ClientSpec {
                filter: filter(99),
                home: pub_home,
                mobile: false,
                initially_attached: true,
            },
        ];
        let schedule = FaultSchedule::new()
            .crash(
                NodeId(dead as u32),
                SimTime::from_secs(1),
                SimTime::from_secs(10),
            )
            .crash(
                NodeId(hub as u32),
                SimTime::from_secs(9),
                SimTime::from_secs(20),
            );
        let mut dep: Deployment<NoProtocol> =
            Deployment::build_on(network.clone(), &config, &clients, |_| NoProtocol);
        dep.engine.set_faults(Arc::new(schedule.clone()));
        let drives = repair_drives(
            &schedule,
            &network,
            &dep.book,
            SimDuration::from_millis(500),
        );
        for (at, node, msg) in drives {
            dep.engine.schedule_external(at, node, msg);
        }
        let event = EventBuilder::new()
            .attr("group", 1i64)
            .build(7, ClientId(1), 1);
        dep.schedule_publish(SimTime::from_secs(25), ClientId(1), event);
        dep.engine.run_to_completion();
        let ids: Vec<u64> = dep
            .client(ClientId(0))
            .received
            .iter()
            .map(|r| r.event.0)
            .collect();
        assert_eq!(
            ids,
            vec![7],
            "the post-heal event must arrive exactly once over the resynced tree"
        );
    }

    /// A partitioned tree edge is bridged by tunneling through a relay;
    /// after the heal the tunnel is dismantled.
    #[test]
    fn partition_tunnel_bridges_severed_tree_edge() {
        let config = DeploymentConfig::default();
        let network = Arc::new(mhh_simnet::TopologyKind::Grid.build(config.grid_side, config.seed));
        let a = 0usize;
        let b = network.tree.neighbors(a)[0];
        let clients = vec![
            ClientSpec {
                filter: filter(1),
                home: BrokerId(a as u32),
                mobile: false,
                initially_attached: true,
            },
            ClientSpec {
                filter: filter(99),
                home: BrokerId(b as u32),
                mobile: false,
                initially_attached: true,
            },
        ];
        let schedule = FaultSchedule::new().partition(
            NodeId(a as u32),
            NodeId(b as u32),
            SimTime::from_secs(1),
            SimTime::from_secs(10),
        );

        let run = |repair: bool| {
            let mut dep: Deployment<NoProtocol> =
                Deployment::build_on(network.clone(), &config, &clients, |_| NoProtocol);
            dep.engine.set_faults(Arc::new(schedule.clone()));
            if repair {
                let drives = repair_drives(
                    &schedule,
                    &network,
                    &dep.book,
                    SimDuration::from_millis(500),
                );
                for (at, node, msg) in drives {
                    dep.engine.schedule_external(at, node, msg);
                }
            }
            for (at, id) in [(3u64, 1u64), (12, 2)] {
                let event = EventBuilder::new()
                    .attr("group", 1i64)
                    .build(id, ClientId(1), id);
                dep.schedule_publish(SimTime::from_secs(at), ClientId(1), event);
            }
            dep.engine.run_to_completion();
            let ids: Vec<u64> = dep
                .client(ClientId(0))
                .received
                .iter()
                .map(|r| r.event.0)
                .collect();
            let tunneled = dep.engine.stats().kind("repair_tunnel").messages;
            (ids, tunneled)
        };

        let (ids, tunneled) = run(false);
        assert_eq!(ids, vec![2], "severed edge loses the mid-outage event");
        assert_eq!(tunneled, 0);
        let (ids, tunneled) = run(true);
        assert_eq!(ids, vec![1, 2], "the tunnel bridges the partition");
        assert!(
            tunneled >= 2,
            "a tunneled envelope crosses the relay in two tunnel sends, got {tunneled}"
        );
    }

    /// Durable state survives a checkpoint/restore round-trip; later
    /// mutations are rolled back to the snapshot.
    #[test]
    fn checkpoint_restore_round_trips_durable_state() {
        let network = Arc::new(Network::grid(3, 7));
        let book = AddressBook::new(9, 2);
        let mut core = BrokerCore::new(BrokerId(4), book, network, true);
        core.filters.add(Peer::Client(ClientId(0)), filter(1));
        core.filters.add(Peer::Broker(BrokerId(1)), filter(2));
        core.connected.insert(ClientId(0), filter(1));
        let checkpoint = core.checkpoint();

        core.filters.remove(Peer::Client(ClientId(0)), &filter(1));
        core.connected.clear();
        core.filters.add(Peer::Broker(BrokerId(2)), filter(3));
        core.restore(checkpoint);

        assert!(core.filters.contains(Peer::Client(ClientId(0)), &filter(1)));
        assert!(core.filters.contains(Peer::Broker(BrokerId(1)), &filter(2)));
        assert!(!core.filters.contains(Peer::Broker(BrokerId(2)), &filter(3)));
        assert_eq!(core.connected.len(), 1);
        assert_eq!(core.needed_filters().len(), 2);
    }

    /// The drive generator emits the full detect/heal sequence for a crash
    /// and nothing for windows too short to detect (except the restart kick).
    #[test]
    fn repair_drives_cover_detect_and_heal_phases() {
        let network = Arc::new(Network::grid(3, 7));
        let book = AddressBook::new(9, 0);
        let dead = (0..9)
            .find(|&b| network.tree.neighbors(b).len() >= 2)
            .unwrap();
        let degree = network.tree.neighbors(dead).len();
        let schedule = FaultSchedule::new().crash(
            NodeId(dead as u32),
            SimTime::from_secs(1),
            SimTime::from_secs(10),
        );
        let drives: Vec<(SimTime, NodeId, NetMsg<crate::messages::NoProtocolMsg>)> =
            repair_drives(&schedule, &network, &book, SimDuration::from_secs(2));
        // degree × PeerDown at 3s, Restarted + degree × PeerUp at 10s.
        assert_eq!(drives.len(), 2 * degree + 1);
        assert!(
            drives
                .iter()
                .filter(
                    |(at, _, m)| matches!(m, NetMsg::Repair(RepairMsg::PeerDown { .. }))
                        && *at == SimTime::from_secs(3)
                )
                .count()
                == degree
        );

        // Too short to detect: only the Restarted kick remains.
        let blip = FaultSchedule::new().crash(
            NodeId(dead as u32),
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        let drives: Vec<(SimTime, NodeId, NetMsg<crate::messages::NoProtocolMsg>)> =
            repair_drives(&blip, &network, &book, SimDuration::from_secs(5));
        assert_eq!(drives.len(), 1);
        assert!(matches!(drives[0].2, NetMsg::Repair(RepairMsg::Restarted)));
    }
}
