//! Events: the notifications published into the system.

use std::fmt;
use std::sync::Arc;

use mhh_simnet::SimTime;

use crate::address::ClientId;
use crate::value::Value;

/// Globally unique event identifier, assigned by the publisher side
/// (workload generator or example application).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The immutable payload of an event. Shared behind an [`Arc`] so that
/// forwarding an event across many overlay hops never copies attribute data.
#[derive(Debug, Clone, PartialEq)]
pub struct EventData {
    /// Attribute name/value pairs. Events carry few attributes, so linear
    /// lookup is faster than a map and keeps the type compact.
    pub attrs: Vec<(String, Value)>,
}

/// A published event.
///
/// The identity fields needed for the paper's delivery guarantees travel by
/// value: `publisher` and `seq` give the per-publisher order ("publisher
/// order of events", footnote 1 of the paper), `id` gives exactly-once
/// accounting, `published_at` records publication time for delay metrics.
#[derive(Debug, Clone)]
pub struct Event {
    /// Globally unique id.
    pub id: EventId,
    /// The client that published the event.
    pub publisher: ClientId,
    /// Per-publisher sequence number (strictly increasing per publisher).
    pub seq: u64,
    /// Simulation time at which the event was published.
    pub published_at: SimTime,
    /// Modeled application payload size in bytes. Zero (the default) means
    /// payload modeling is off: [`wire_size`](Event::wire_size) reports 0
    /// and every byte counter downstream stays silent, so workloads that
    /// never opt in behave exactly as before.
    pub payload_bytes: u32,
    /// Shared attribute payload.
    pub data: Arc<EventData>,
}

/// Fixed per-message framing cost charged by [`Event::wire_size`]: event
/// id (8) + publisher (4) + per-publisher seq (8) + attribute count and
/// flags (4).
pub const WIRE_HEADER_BYTES: u32 = 24;

impl Event {
    /// Build an event from attribute pairs.
    pub fn new(id: EventId, publisher: ClientId, seq: u64, attrs: Vec<(String, Value)>) -> Self {
        Event {
            id,
            publisher,
            seq,
            published_at: SimTime::ZERO,
            payload_bytes: 0,
            data: Arc::new(EventData { attrs }),
        }
    }

    /// Attach a modeled payload size (builder-style). Zero turns payload
    /// modeling back off for this event.
    pub fn with_payload(mut self, bytes: u32) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// The modeled wire form size of this event in bytes, or 0 when
    /// payload modeling is off (`payload_bytes == 0`).
    ///
    /// The size model is deliberately simple and deterministic: a fixed
    /// header ([`WIRE_HEADER_BYTES`]), each attribute's name length plus a
    /// type-dependent value encoding (8 bytes for numbers, 1 for booleans,
    /// length-prefixed strings), and the opaque application payload. It
    /// only feeds byte *accounting* — latency never depends on it — so
    /// enabling it cannot change delivery behavior.
    pub fn wire_size(&self) -> u32 {
        if self.payload_bytes == 0 {
            return 0;
        }
        let attrs: u32 = self
            .data
            .attrs
            .iter()
            .map(|(name, value)| {
                let value_bytes = match value {
                    Value::Int(_) | Value::Float(_) => 8,
                    Value::Str(s) => 2 + s.len() as u32,
                    Value::Bool(_) => 1,
                };
                2 + name.len() as u32 + value_bytes
            })
            .sum();
        WIRE_HEADER_BYTES + attrs + self.payload_bytes
    }

    /// Look up an attribute by name.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.data
            .attrs
            .iter()
            .find(|(name, _)| name == attr)
            .map(|(_, v)| v)
    }

    /// Whether the event carries the named attribute.
    pub fn has(&self, attr: &str) -> bool {
        self.get(attr).is_some()
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.data.attrs.len()
    }

    /// Return a copy of the event stamped with a publication time (used by
    /// the client node at the moment of publication).
    pub fn stamped(mut self, at: SimTime) -> Self {
        self.published_at = at;
        self
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for Event {}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} #{}]", self.id, self.publisher, self.seq)
    }
}

/// Convenience builder used by tests and examples.
#[derive(Debug, Default, Clone)]
pub struct EventBuilder {
    attrs: Vec<(String, Value)>,
}

impl EventBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an attribute.
    pub fn attr(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.attrs.push((name.to_string(), value.into()));
        self
    }

    /// Finish, assigning identity fields.
    pub fn build(self, id: u64, publisher: ClientId, seq: u64) -> Event {
        Event::new(EventId(id), publisher, seq, self.attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        EventBuilder::new()
            .attr("group", 3i64)
            .attr("price", 12.5f64)
            .attr("symbol", "ACME")
            .build(1, ClientId(7), 4)
    }

    #[test]
    fn attribute_lookup() {
        let e = sample();
        assert_eq!(e.get("group"), Some(&Value::Int(3)));
        assert_eq!(e.get("symbol"), Some(&Value::Str("ACME".into())));
        assert_eq!(e.get("missing"), None);
        assert!(e.has("price"));
        assert_eq!(e.attr_count(), 3);
    }

    #[test]
    fn identity_equality_ignores_payload() {
        let a = sample();
        let mut b = sample();
        b.seq = 99;
        assert_eq!(a, b, "events compare by id");
    }

    #[test]
    fn cloning_shares_payload() {
        let a = sample();
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn stamping_sets_publication_time() {
        let e = sample().stamped(SimTime::from_millis(25));
        assert_eq!(e.published_at, SimTime::from_millis(25));
    }

    #[test]
    fn display_mentions_publisher_and_seq() {
        assert_eq!(format!("{}", sample()), "e1[C7 #4]");
    }

    #[test]
    fn wire_size_is_zero_with_payload_modeling_off() {
        assert_eq!(sample().wire_size(), 0);
    }

    #[test]
    fn wire_size_counts_header_attrs_and_payload() {
        let e = sample().with_payload(100);
        // header 24 + group (2+5+8) + price (2+5+8) + symbol (2+6+2+4)
        // + payload 100
        assert_eq!(e.wire_size(), 24 + 15 + 15 + 14 + 100);
    }
}
