//! Type-erased mobility protocols: run any [`MobilityProtocol`] behind a
//! `Box<dyn DynProtocol>`.
//!
//! The generic substrate monomorphizes a whole deployment per protocol
//! (`Deployment<Mhh>`, `Deployment<SubUnsub>`, …), which is the fast path —
//! but it freezes the protocol axis at compile time: code that wants to pick
//! a protocol by *name* (a registry, a CLI flag, a data-driven experiment
//! matrix) cannot name the deployment type. This module adds the dyn path:
//!
//! * [`BoxedMsg`] — a protocol message with its concrete type erased; keeps
//!   the [`ProtocolMessage`] behaviour (kind, traffic class, clone, debug)
//!   and can be downcast back at the receiving protocol.
//! * [`DynProtocol`] — the object-safe mirror of [`MobilityProtocol`], all
//!   methods speaking [`BoxedMsg`].
//! * [`ErasedProtocol`] — wraps any concrete protocol as a [`DynProtocol`],
//!   boxing outgoing messages (via [`BrokerCtx::erased`]) and downcasting
//!   incoming ones.
//! * `impl MobilityProtocol for Box<dyn DynProtocol>` — so the *existing*
//!   generic machinery (`Broker`, `Deployment`, `Engine`) runs erased
//!   protocols unchanged: `Deployment<Box<dyn DynProtocol>>`.
//!
//! Because erasure only re-wraps payloads at the send boundary — same
//! messages, same sends, in the same order, with the same `kind()` and
//! `traffic_class()` — a dyn-dispatched run is behaviourally identical to
//! the generic run of the same protocol (the harness asserts byte-identical
//! metrics).

use std::any::Any;
use std::fmt;

use mhh_simnet::TrafficClass;

use crate::address::{BrokerId, ClientId, Peer};
use crate::broker::{BrokerCore, BrokerCtx, MobilityProtocol};
use crate::event::Event;
use crate::filter::Filter;
use crate::messages::{ConnectInfo, ProtocolMessage};

/// Object-safe view of one protocol message: everything [`ProtocolMessage`]
/// offers, plus cloning and downcasting through the box.
trait ErasedMessage: fmt::Debug + Send {
    fn kind(&self) -> &'static str;
    fn traffic_class(&self) -> TrafficClass;
    fn wire_bytes(&self) -> u32;
    fn clone_box(&self) -> Box<dyn ErasedMessage>;
    fn as_any(&self) -> &dyn Any;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<M: ProtocolMessage> ErasedMessage for M {
    fn kind(&self) -> &'static str {
        ProtocolMessage::kind(self)
    }
    fn traffic_class(&self) -> TrafficClass {
        ProtocolMessage::traffic_class(self)
    }
    fn wire_bytes(&self) -> u32 {
        ProtocolMessage::wire_bytes(self)
    }
    fn clone_box(&self) -> Box<dyn ErasedMessage> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A protocol message with its concrete type erased.
///
/// [`BoxedMsg`] is itself a [`ProtocolMessage`], so the whole generic
/// message set ([`crate::messages::NetMsg`]`<BoxedMsg>`) and everything
/// built on it work unchanged; `kind()` and `traffic_class()` delegate to
/// the wrapped message, so traffic accounting is identical to the generic
/// path.
pub struct BoxedMsg(Box<dyn ErasedMessage>);

impl BoxedMsg {
    /// Erase a concrete protocol message.
    pub fn new<M: ProtocolMessage>(msg: M) -> Self {
        BoxedMsg(Box::new(msg))
    }

    /// Recover the concrete message, or give the box back when the type
    /// does not match (a protocol received a foreign message — a wiring
    /// bug, since brokers of one deployment all run the same protocol).
    pub fn downcast<M: ProtocolMessage>(self) -> Result<M, BoxedMsg> {
        if self.0.as_any().is::<M>() {
            Ok(*self
                .0
                .into_any()
                .downcast::<M>()
                .expect("type checked just above"))
        } else {
            Err(self)
        }
    }
}

impl Clone for BoxedMsg {
    fn clone(&self) -> Self {
        BoxedMsg(self.0.clone_box())
    }
}

impl fmt::Debug for BoxedMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Transparent: print exactly like the wrapped message so traces of
        // erased and generic runs read the same.
        self.0.fmt(f)
    }
}

impl ProtocolMessage for BoxedMsg {
    fn kind(&self) -> &'static str {
        self.0.kind()
    }
    fn traffic_class(&self) -> TrafficClass {
        self.0.traffic_class()
    }
    fn wire_bytes(&self) -> u32 {
        self.0.wire_bytes()
    }
}

/// The object-safe mirror of [`MobilityProtocol`]: same hooks, with the
/// protocol's message type erased to [`BoxedMsg`]. Implement it directly
/// for a natively type-erased protocol, or get it for free for any concrete
/// protocol via [`ErasedProtocol`] / [`erase`].
pub trait DynProtocol: Send {
    /// Human-readable protocol name (used in reports).
    fn name(&self) -> &'static str;

    /// A client reconnected at this broker (non-initial attachments only).
    fn on_client_connect(
        &mut self,
        core: &mut BrokerCore,
        info: ConnectInfo,
        ctx: &mut BrokerCtx<'_, BoxedMsg>,
    );

    /// A client disconnected from this broker.
    fn on_client_disconnect(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        filter: Filter,
        proclaimed_dest: Option<BrokerId>,
        ctx: &mut BrokerCtx<'_, BoxedMsg>,
    );

    /// A protocol-specific message arrived from `from`.
    fn on_protocol_msg(
        &mut self,
        core: &mut BrokerCore,
        from: BrokerId,
        msg: BoxedMsg,
        ctx: &mut BrokerCtx<'_, BoxedMsg>,
    );

    /// An event matched a client entry of this broker's filter table.
    fn on_client_event(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        event: Event,
        from: Peer,
        ctx: &mut BrokerCtx<'_, BoxedMsg>,
    );

    /// Events currently buffered for disconnected or mid-handoff clients.
    fn buffered_events(&self) -> Vec<(ClientId, Event)>;

    /// Total modeled wire bytes of the buffered events (see
    /// [`MobilityProtocol::buffered_bytes`]).
    fn buffered_bytes(&self) -> u64;

    /// This broker just restarted from a crash (see
    /// [`MobilityProtocol::on_restart`]).
    fn on_restart(&mut self, core: &mut BrokerCore, ctx: &mut BrokerCtx<'_, BoxedMsg>);
}

/// Adapter wrapping a concrete [`MobilityProtocol`] as a [`DynProtocol`]:
/// incoming [`BoxedMsg`]s are downcast to the protocol's native message
/// type, and the context handed down re-boxes outgoing messages.
pub struct ErasedProtocol<P: MobilityProtocol>(pub P);

impl<P: MobilityProtocol> DynProtocol for ErasedProtocol<P> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn on_client_connect(
        &mut self,
        core: &mut BrokerCore,
        info: ConnectInfo,
        ctx: &mut BrokerCtx<'_, BoxedMsg>,
    ) {
        self.0
            .on_client_connect(core, info, &mut ctx.erased::<P::Msg>());
    }

    fn on_client_disconnect(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        filter: Filter,
        proclaimed_dest: Option<BrokerId>,
        ctx: &mut BrokerCtx<'_, BoxedMsg>,
    ) {
        self.0.on_client_disconnect(
            core,
            client,
            filter,
            proclaimed_dest,
            &mut ctx.erased::<P::Msg>(),
        );
    }

    fn on_protocol_msg(
        &mut self,
        core: &mut BrokerCore,
        from: BrokerId,
        msg: BoxedMsg,
        ctx: &mut BrokerCtx<'_, BoxedMsg>,
    ) {
        match msg.downcast::<P::Msg>() {
            Ok(msg) => self
                .0
                .on_protocol_msg(core, from, msg, &mut ctx.erased::<P::Msg>()),
            Err(other) => panic!(
                "protocol {:?} received a foreign message {:?} — all brokers \
                 of one deployment must run the same protocol",
                self.0.name(),
                other
            ),
        }
    }

    fn on_client_event(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        event: Event,
        from: Peer,
        ctx: &mut BrokerCtx<'_, BoxedMsg>,
    ) {
        self.0
            .on_client_event(core, client, event, from, &mut ctx.erased::<P::Msg>());
    }

    fn buffered_events(&self) -> Vec<(ClientId, Event)> {
        self.0.buffered_events()
    }

    fn buffered_bytes(&self) -> u64 {
        self.0.buffered_bytes()
    }

    fn on_restart(&mut self, core: &mut BrokerCore, ctx: &mut BrokerCtx<'_, BoxedMsg>) {
        self.0.on_restart(core, &mut ctx.erased::<P::Msg>());
    }
}

/// Erase a concrete protocol into a boxed [`DynProtocol`].
pub fn erase<P: MobilityProtocol + 'static>(protocol: P) -> Box<dyn DynProtocol> {
    Box::new(ErasedProtocol(protocol))
}

/// The boxed dyn protocol *is* a [`MobilityProtocol`] (over [`BoxedMsg`]),
/// so `Deployment<Box<dyn DynProtocol>>` reuses the entire generic broker /
/// engine machinery — one deployment type runs every registered protocol.
impl MobilityProtocol for Box<dyn DynProtocol> {
    type Msg = BoxedMsg;

    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn on_client_connect(
        &mut self,
        core: &mut BrokerCore,
        info: ConnectInfo,
        ctx: &mut BrokerCtx<'_, Self::Msg>,
    ) {
        self.as_mut().on_client_connect(core, info, ctx);
    }

    fn on_client_disconnect(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        filter: Filter,
        proclaimed_dest: Option<BrokerId>,
        ctx: &mut BrokerCtx<'_, Self::Msg>,
    ) {
        self.as_mut()
            .on_client_disconnect(core, client, filter, proclaimed_dest, ctx);
    }

    fn on_protocol_msg(
        &mut self,
        core: &mut BrokerCore,
        from: BrokerId,
        msg: Self::Msg,
        ctx: &mut BrokerCtx<'_, Self::Msg>,
    ) {
        self.as_mut().on_protocol_msg(core, from, msg, ctx);
    }

    fn on_client_event(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        event: Event,
        from: Peer,
        ctx: &mut BrokerCtx<'_, Self::Msg>,
    ) {
        self.as_mut()
            .on_client_event(core, client, event, from, ctx);
    }

    fn buffered_events(&self) -> Vec<(ClientId, Event)> {
        self.as_ref().buffered_events()
    }

    fn buffered_bytes(&self) -> u64 {
        self.as_ref().buffered_bytes()
    }

    fn on_restart(&mut self, core: &mut BrokerCore, ctx: &mut BrokerCtx<'_, Self::Msg>) {
        self.as_mut().on_restart(core, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::NoProtocol;
    use crate::deployment::{ClientSpec, Deployment, DeploymentConfig};
    use crate::event::EventBuilder;
    use crate::filter::Op;
    use crate::messages::{ClientAction, NoProtocolMsg};
    use mhh_simnet::SimTime;

    #[derive(Debug, Clone, PartialEq)]
    struct Probe(u32);
    impl ProtocolMessage for Probe {
        fn kind(&self) -> &'static str {
            "probe"
        }
        fn traffic_class(&self) -> TrafficClass {
            TrafficClass::MobilityControl
        }
    }

    #[test]
    fn boxed_msg_preserves_kind_class_debug_and_downcasts() {
        let boxed = BoxedMsg::new(Probe(7));
        assert_eq!(ProtocolMessage::kind(&boxed), "probe");
        assert_eq!(
            ProtocolMessage::traffic_class(&boxed),
            TrafficClass::MobilityControl
        );
        assert_eq!(format!("{boxed:?}"), format!("{:?}", Probe(7)));
        let copy = boxed.clone();
        assert_eq!(copy.downcast::<Probe>().unwrap(), Probe(7));
        // Wrong-type downcast hands the box back intact.
        let back = boxed.downcast::<NoProtocolMsg>().unwrap_err();
        assert_eq!(back.downcast::<Probe>().unwrap(), Probe(7));
    }

    fn specs(n: usize) -> Vec<ClientSpec> {
        (0..n)
            .map(|i| ClientSpec {
                filter: Filter::single("group", Op::Eq, 1i64),
                home: BrokerId((i % 9) as u32),
                mobile: false,
                initially_attached: true,
            })
            .collect()
    }

    /// A dyn-dispatched deployment delivers exactly like the generic one.
    #[test]
    fn erased_deployment_matches_generic_deployment() {
        let config = DeploymentConfig::default();
        let clients = specs(6);
        let event = EventBuilder::new()
            .attr("group", 1i64)
            .build(1, ClientId(2), 0);

        let mut generic: Deployment<NoProtocol> =
            Deployment::build(&config, &clients, |_| NoProtocol);
        generic.schedule_publish(SimTime::from_millis(1), ClientId(2), event.clone());
        generic.engine.run_to_completion();

        let mut erased_dep: Deployment<Box<dyn DynProtocol>> =
            Deployment::build(&config, &clients, |_| erase(NoProtocol));
        erased_dep.schedule_publish(SimTime::from_millis(1), ClientId(2), event);
        erased_dep.engine.run_to_completion();

        for (g, e) in generic.clients().zip(erased_dep.clients()) {
            assert_eq!(format!("{:?}", g.received), format!("{:?}", e.received));
        }
        assert_eq!(
            format!("{:?}", generic.engine.stats()),
            format!("{:?}", erased_dep.engine.stats())
        );
    }

    /// Reconnects route through the erased protocol hooks (NoProtocol
    /// re-subscribes at the new broker), exercising `BrokerCtx::erased`.
    #[test]
    fn erased_protocol_hooks_fire_on_mobility() {
        let config = DeploymentConfig::default();
        let clients = specs(2);
        let mut dep: Deployment<Box<dyn DynProtocol>> =
            Deployment::build(&config, &clients, |_| erase(NoProtocol));
        dep.schedule(
            SimTime::from_millis(5),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(500),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(8),
            },
        );
        let late = EventBuilder::new()
            .attr("group", 1i64)
            .build(2, ClientId(1), 0);
        dep.schedule_publish(SimTime::from_millis(2_000), ClientId(1), late);
        dep.engine.run_to_completion();
        assert_eq!(dep.client(ClientId(0)).received.len(), 1);
        assert_eq!(dep.client(ClientId(0)).current_broker, Some(BrokerId(8)));
        assert_eq!(dep.broker(BrokerId(8)).proto.name(), "static");
    }
}
