//! Serialize-once fan-out: the wire form of an event, rendered one time
//! per publish and shared across every matched destination.
//!
//! A naive broker serializes an event once *per subscriber*: with a
//! 2,000-subscriber fan-out that is 2,000 buffer allocations and 2,000
//! full renders of the same bytes. Production MQTT brokers (FlashMQ's and
//! VibeMQ's `CachedPublish`) instead render the packet body once, share
//! it behind a reference count, and patch only the few header bytes that
//! differ per destination (packet id, QoS bits) in a stack buffer at
//! write time — orders of magnitude fewer allocations on hot fan-out
//! paths.
//!
//! [`CachedEvent`] reproduces that design inside the simulation: the body
//! is rendered into an `Arc<[u8]>` exactly once per fan-out
//! ([`CachedEvent::render`]), every destination shares it, and
//! [`CachedEvent::patch_header`] produces the per-destination header in a
//! fixed stack array without touching the heap. The clone-per-subscriber
//! baseline ([`FanoutMode::CloneBaseline`]) is kept switchable so the win
//! is measured, not asserted — delivery behavior is byte-identical
//! between the two modes because serialization is an accounting model
//! only: simulated latency never depends on it.

use std::sync::Arc;

use crate::event::Event;
use crate::value::Value;

/// How a broker materializes the wire form of an event during fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FanoutMode {
    /// Render once per publish, share by `Arc`, patch headers per
    /// destination (the `CachedPublish` pattern). The default.
    #[default]
    Cached,
    /// Render the full wire form once per destination — the baseline the
    /// cached path is measured against.
    CloneBaseline,
}

impl FanoutMode {
    /// Stable label used in reports and `BENCH_engine.json`.
    pub fn label(self) -> &'static str {
        match self {
            FanoutMode::Cached => "cached",
            FanoutMode::CloneBaseline => "clone",
        }
    }
}

/// Per-broker fan-out accounting, aggregated into the run result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FanoutStats {
    /// Fan-outs that rendered at least one wire form (payload modeling
    /// on and at least one matched target).
    pub fanouts: u64,
    /// Full wire-form renders performed.
    pub serializations: u64,
    /// Total bytes rendered across all serializations.
    pub bytes_serialized: u64,
    /// Heap buffers allocated for fan-out (one per render).
    pub fanout_allocs: u64,
    /// Destinations served from an already-rendered cached form.
    pub cache_hits: u64,
}

impl FanoutStats {
    /// Accumulate another broker's counters.
    pub fn merge(&mut self, other: &FanoutStats) {
        self.fanouts += other.fanouts;
        self.serializations += other.serializations;
        self.bytes_serialized += other.bytes_serialized;
        self.fanout_allocs += other.fanout_allocs;
        self.cache_hits += other.cache_hits;
    }
}

/// Length of the per-destination header patched at write time: destination
/// node id (4) + frame length (4).
pub const DEST_HEADER_BYTES: usize = 8;

/// The rendered wire form of one event, shared across a fan-out.
#[derive(Debug, Clone)]
pub struct CachedEvent {
    bytes: Arc<[u8]>,
}

impl CachedEvent {
    /// Render the wire form of `event`. Returns `None` when payload
    /// modeling is off for this event (`wire_size() == 0`), in which case
    /// fan-out proceeds without any byte accounting — the pre-payload
    /// behavior.
    pub fn render(event: &Event) -> Option<CachedEvent> {
        let size = event.wire_size();
        if size == 0 {
            return None;
        }
        let mut buf = vec![0u8; size as usize];
        // Fixed header: id, publisher, per-publisher seq, attr count.
        buf[0..8].copy_from_slice(&event.id.0.to_le_bytes());
        buf[8..12].copy_from_slice(&event.publisher.0.to_le_bytes());
        buf[12..20].copy_from_slice(&event.seq.to_le_bytes());
        buf[20..24].copy_from_slice(&(event.data.attrs.len() as u32).to_le_bytes());
        let mut at = 24usize;
        for (name, value) in &event.data.attrs {
            buf[at..at + 2].copy_from_slice(&(name.len() as u16).to_le_bytes());
            at += 2;
            buf[at..at + name.len()].copy_from_slice(name.as_bytes());
            at += name.len();
            match value {
                Value::Int(v) => {
                    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
                    at += 8;
                }
                Value::Float(v) => {
                    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
                    at += 8;
                }
                Value::Str(s) => {
                    buf[at..at + 2].copy_from_slice(&(s.len() as u16).to_le_bytes());
                    at += 2;
                    buf[at..at + s.len()].copy_from_slice(s.as_bytes());
                    at += s.len();
                }
                Value::Bool(v) => {
                    buf[at] = *v as u8;
                    at += 1;
                }
            }
        }
        // The rest of the buffer is the opaque application payload,
        // modeled as zeros.
        debug_assert_eq!(size as usize - at, event.payload_bytes as usize);
        Some(CachedEvent { bytes: buf.into() })
    }

    /// Rendered length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the rendered form is empty (never true for a successful
    /// render — kept for the conventional `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Share the rendered form with another destination: a reference-count
    /// bump, no copy.
    pub fn share(&self) -> CachedEvent {
        CachedEvent {
            bytes: Arc::clone(&self.bytes),
        }
    }

    /// The rendered bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Produce the per-destination header in a stack buffer — the only
    /// bytes that differ between destinations of the same fan-out. No
    /// heap allocation.
    #[inline]
    pub fn patch_header(&self, dest: u32) -> [u8; DEST_HEADER_BYTES] {
        let mut header = [0u8; DEST_HEADER_BYTES];
        header[0..4].copy_from_slice(&dest.to_le_bytes());
        header[4..8].copy_from_slice(&(self.bytes.len() as u32).to_le_bytes());
        header
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::ClientId;
    use crate::event::EventBuilder;

    fn payload_event(bytes: u32) -> Event {
        EventBuilder::new()
            .attr("group", 3i64)
            .attr("symbol", "ACME")
            .build(42, ClientId(7), 5)
            .with_payload(bytes)
    }

    #[test]
    fn render_skips_events_without_payload_model() {
        let plain = EventBuilder::new()
            .attr("group", 1i64)
            .build(1, ClientId(0), 0);
        assert!(CachedEvent::render(&plain).is_none());
    }

    #[test]
    fn render_length_matches_wire_size() {
        let e = payload_event(128);
        let cached = CachedEvent::render(&e).expect("payload modeled");
        assert_eq!(cached.len(), e.wire_size() as usize);
        assert!(!cached.is_empty());
    }

    #[test]
    fn sharing_bumps_refcount_without_copy() {
        let cached = CachedEvent::render(&payload_event(64)).unwrap();
        let shared = cached.share();
        assert!(std::ptr::eq(cached.bytes(), shared.bytes()));
    }

    #[test]
    fn header_patch_varies_only_by_destination() {
        let cached = CachedEvent::render(&payload_event(64)).unwrap();
        let a = cached.patch_header(3);
        let b = cached.patch_header(9);
        assert_ne!(a, b);
        assert_eq!(a[4..], b[4..], "length half is destination-independent");
    }

    #[test]
    fn rendered_header_carries_event_identity() {
        let e = payload_event(16);
        let cached = CachedEvent::render(&e).unwrap();
        assert_eq!(&cached.bytes()[0..8], &e.id.0.to_le_bytes());
        assert_eq!(&cached.bytes()[8..12], &e.publisher.0.to_le_bytes());
    }
}
