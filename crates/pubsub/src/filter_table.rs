//! The per-broker filter table.
//!
//! Section 3 of the paper: "Each event broker maintains a filter table to
//! record the subscriptions of its neighbors. [...] The filter table of a
//! broker can be represented as the set {(nb, f)}, where each pair means that
//! neighbor nb is interested in the events that satisfy the filter f."
//!
//! Two extensions required by the protocols are supported:
//!
//! * **accept-only-from labels** — MHH marks a client entry with a neighbor
//!   label meaning "only accept events for this client when they arrive from
//!   that neighbor" (paper, Section 4.1 steps 2–3); matching honours the
//!   label;
//! * per-entry bookkeeping helpers used by subscription propagation with the
//!   optional covering optimisation.
//!
//! # Indexing
//!
//! At city scale every broker's table holds an entry per remote subscriber
//! (distinct per-client filters defeat `(peer, filter)` deduplication), so
//! the original flat-`Vec` representation made event matching *and* the
//! duplicate check on insert O(table) — the dominant per-event cost of the
//! whole simulation. The table therefore keeps incremental indexes beside
//! the entry vector:
//!
//! * per attribute, an **equality map** from the attribute value to the
//!   single-`Eq` entries pinned to it, and a bucketed **interval grid** over
//!   single-attribute numeric range filters (the evaluation workload's
//!   `lo <= v < hi` selectivity windows) — an event value probes one bucket;
//! * a **residual scan list** for entries the index cannot classify
//!   (multi-attribute filters, `Ne`/`Prefix`/`Exists`, match-all), always
//!   probed;
//! * a **duplicate map** keyed by `(peer, filter-content-hash)` and a
//!   **per-peer position list**, making `add`'s set check, `contains`,
//!   `filters_for` and the label helpers O(entries of that peer).
//!
//! Candidates coming out of the index are probed in ascending entry
//! position — exactly the insertion order the plain linear scan used — and
//! re-checked with the real filter, so matching results are byte-identical
//! to a naive in-order scan (pinned by a differential property test).
//! Removals tombstone the entry and unlink it from the indexes in O(its
//! buckets); the vector is compacted (and the indexes rebuilt) only when
//! dead entries outnumber live ones.

use std::collections::HashMap;
use std::fmt;

use crate::address::Peer;
use crate::event::Event;
use crate::filter::{Filter, Op};
use crate::value::Value;

/// One `(neighbor, filter)` entry, optionally labeled.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterEntry {
    /// The interested neighbor (broker or client).
    pub peer: Peer,
    /// The filter the neighbor is interested in.
    pub filter: Filter,
    /// MHH accept-only-from label: when set, events for this entry are only
    /// accepted when they arrive from the given neighbor.
    pub accept_only_from: Option<Peer>,
}

/// Hashable canonical form of a [`Value`] for the equality map. Two values
/// share a key exactly when [`Value::eq_value`] holds between them: numerics
/// canonicalise through `f64` (so `Int(3)` and `Float(3.0)` collide, as
/// matching requires) and `-0.0` folds onto `0.0`. NaN keys may collide
/// without harm — candidates are re-checked with the real filter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ValueKey {
    Num(u64),
    Str(String),
    Bool(bool),
}

impl ValueKey {
    fn of(value: &Value) -> Self {
        match value {
            Value::Int(i) => Self::num(*i as f64),
            Value::Float(f) => Self::num(*f),
            Value::Str(s) => ValueKey::Str(s.clone()),
            Value::Bool(b) => ValueKey::Bool(*b),
        }
    }

    fn num(f: f64) -> Self {
        ValueKey::Num(if f == 0.0 {
            0.0f64.to_bits()
        } else {
            f.to_bits()
        })
    }
}

/// FNV-1a content hash of a filter, respecting `Filter`'s derived equality
/// (equal filters hash equal; constraint order matters, as it does for
/// `PartialEq`). Used only to key the duplicate map — lookups always confirm
/// with a real equality check, so collisions cost a probe, never
/// correctness.
fn filter_hash(filter: &Filter) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        h ^= word;
        h = h.wrapping_mul(PRIME);
    };
    for c in &filter.constraints {
        for b in c.attr.as_bytes() {
            mix(*b as u64);
        }
        mix(0xff);
        mix(c.op as u64);
        match &c.value {
            Value::Int(i) => {
                mix(1);
                mix(*i as u64);
            }
            Value::Float(f) => {
                mix(2);
                mix(f.to_bits());
            }
            Value::Str(s) => {
                mix(3);
                for b in s.as_bytes() {
                    mix(*b as u64);
                }
                mix(0xff);
            }
            Value::Bool(b) => {
                mix(4);
                mix(*b as u64);
            }
        }
    }
    h
}

/// The numeric interval `[lo, hi]` that over-approximates a filter whose
/// constraints all bound one attribute: any event value satisfying the
/// filter lies inside it (boundaries included — `Gt`/`Lt` only shrink the
/// true match set, and a false candidate is re-checked anyway). `None` when
/// the filter is not a single-attribute numeric range conjunction.
fn as_interval(filter: &Filter) -> Option<(&str, f64, f64)> {
    let mut attr: Option<&str> = None;
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    for c in &filter.constraints {
        let v = c.value.as_f64()?;
        match attr {
            None => attr = Some(&c.attr),
            Some(a) if a == c.attr => {}
            Some(_) => return None,
        }
        match c.op {
            Op::Ge | Op::Gt => lo = lo.max(v),
            Op::Le | Op::Lt => hi = hi.min(v),
            Op::Eq => {
                lo = lo.max(v);
                hi = hi.min(v);
            }
            _ => return None,
        }
    }
    attr.map(|a| (a, lo, hi))
}

/// How an entry is registered in the index (recomputed from the filter, so
/// removal unlinks exactly what insertion linked).
enum Class {
    Eq(String, ValueKey),
    Interval(String, f64, f64),
    Scan,
}

fn classify(filter: &Filter) -> Class {
    if let [c] = filter.constraints.as_slice() {
        if c.op == Op::Eq {
            return Class::Eq(c.attr.clone(), ValueKey::of(&c.value));
        }
    }
    match as_interval(filter) {
        Some((attr, lo, hi)) => Class::Interval(attr.to_string(), lo, hi),
        None => Class::Scan,
    }
}

/// Bucketed 1-D grid over the interval entries of one attribute. An
/// interval is registered in every bucket it touches; a query value probes
/// exactly one bucket. Out-of-domain values and bounds clamp onto the edge
/// buckets, which keeps the structure sound (a superset of true matches) for
/// intervals appended after the grid was sized.
#[derive(Clone)]
struct Grid {
    lo: f64,
    inv_step: f64,
    buckets: Vec<Vec<u32>>,
}

impl Grid {
    fn bucket_of(&self, v: f64) -> usize {
        // Negative and NaN casts saturate to 0, oversized to usize::MAX.
        (((v - self.lo) * self.inv_step) as usize).min(self.buckets.len() - 1)
    }

    fn insert(&mut self, pos: u32, lo: f64, hi: f64) {
        for b in self.bucket_of(lo)..=self.bucket_of(hi) {
            self.buckets[b].push(pos);
        }
    }

    fn remove(&mut self, pos: u32, lo: f64, hi: f64) {
        for b in self.bucket_of(lo)..=self.bucket_of(hi) {
            self.buckets[b].retain(|&p| p != pos);
        }
    }
}

/// Per-attribute index: the equality map plus the interval entries and
/// their lazily-built grid.
#[derive(Clone, Default)]
struct AttrIndex {
    eq: HashMap<ValueKey, Vec<u32>>,
    /// Every interval entry of this attribute (master list; the grid is
    /// derived from it and rebuilt lazily after being dropped).
    intervals: Vec<u32>,
    grid: Option<Grid>,
}

impl AttrIndex {
    /// The grid, built on first use from the live interval entries.
    fn grid_mut(&mut self, entries: &[FilterEntry], live: &[bool]) -> &mut Grid {
        if self.grid.is_none() {
            let mut spans: Vec<(u32, f64, f64)> = Vec::with_capacity(self.intervals.len());
            let (mut dom_lo, mut dom_hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &pos in &self.intervals {
                if !live[pos as usize] {
                    continue;
                }
                let (_, lo, hi) = as_interval(&entries[pos as usize].filter)
                    .expect("interval entries re-classify as intervals");
                spans.push((pos, lo, hi));
                if lo.is_finite() {
                    dom_lo = dom_lo.min(lo);
                    dom_hi = dom_hi.max(lo);
                }
                if hi.is_finite() {
                    dom_lo = dom_lo.min(hi);
                    dom_hi = dom_hi.max(hi);
                }
            }
            let buckets = spans.len().clamp(1, 512);
            let span = (dom_hi - dom_lo).max(f64::MIN_POSITIVE);
            let mut grid = Grid {
                lo: if dom_lo.is_finite() { dom_lo } else { 0.0 },
                inv_step: if dom_lo.is_finite() {
                    buckets as f64 / span
                } else {
                    0.0
                },
                buckets: vec![Vec::new(); buckets],
            };
            // Ascending positions per bucket: `intervals` is ascending.
            for (pos, lo, hi) in spans {
                grid.insert(pos, lo, hi);
            }
            self.grid = Some(grid);
        }
        self.grid.as_mut().expect("just built")
    }
}

/// All incremental indexes over the entry vector.
#[derive(Clone, Default)]
struct TableIndex {
    attrs: HashMap<String, AttrIndex>,
    /// Unclassifiable entries, always probed.
    scan: Vec<u32>,
    /// `(peer, filter_hash)` → positions, for O(1) duplicate/`contains`/
    /// label lookups (confirmed by real equality at the listed positions).
    dup: HashMap<(Peer, u64), Vec<u32>>,
    /// Peer → positions, ascending, for `filters_for`/`remove_peer`.
    by_peer: HashMap<Peer, Vec<u32>>,
}

/// The filter table of a broker.
#[derive(Clone, Default)]
pub struct FilterTable {
    entries: Vec<FilterEntry>,
    /// Tombstone flags, parallel to `entries`.
    live: Vec<bool>,
    live_count: usize,
    index: TableIndex,
}

impl fmt::Debug for FilterTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The indexes and tombstones are derived state; keep diagnostics
        // (and any debug-format comparisons) pinned to the live entries.
        f.debug_list().entries(self.entries()).finish()
    }
}

impl FilterTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Iterate over all entries, in insertion order.
    pub fn entries(&self) -> impl Iterator<Item = &FilterEntry> {
        self.entries
            .iter()
            .zip(&self.live)
            .filter_map(|(e, &alive)| alive.then_some(e))
    }

    /// Register a (new) position in every index. The entry must already be
    /// pushed and live.
    fn link(&mut self, pos: u32) {
        let e = &self.entries[pos as usize];
        let peer = e.peer;
        let h = filter_hash(&e.filter);
        match classify(&e.filter) {
            Class::Eq(attr, key) => self
                .index
                .attrs
                .entry(attr)
                .or_default()
                .eq
                .entry(key)
                .or_default()
                .push(pos),
            Class::Interval(attr, lo, hi) => {
                let aidx = self.index.attrs.entry(attr).or_default();
                aidx.intervals.push(pos);
                if let Some(grid) = aidx.grid.as_mut() {
                    grid.insert(pos, lo, hi);
                }
            }
            Class::Scan => self.index.scan.push(pos),
        }
        self.index.dup.entry((peer, h)).or_default().push(pos);
        self.index.by_peer.entry(peer).or_default().push(pos);
    }

    /// Tombstone a live position and unlink it from every index.
    fn kill(&mut self, pos: u32) {
        debug_assert!(self.live[pos as usize]);
        self.live[pos as usize] = false;
        self.live_count -= 1;
        let e = &self.entries[pos as usize];
        let peer = e.peer;
        let h = filter_hash(&e.filter);
        let class = classify(&e.filter);
        match class {
            Class::Eq(attr, key) => {
                if let Some(aidx) = self.index.attrs.get_mut(&attr) {
                    if let Some(bucket) = aidx.eq.get_mut(&key) {
                        bucket.retain(|&p| p != pos);
                    }
                }
            }
            Class::Interval(attr, lo, hi) => {
                if let Some(aidx) = self.index.attrs.get_mut(&attr) {
                    aidx.intervals.retain(|&p| p != pos);
                    if let Some(grid) = aidx.grid.as_mut() {
                        grid.remove(pos, lo, hi);
                    }
                }
            }
            Class::Scan => self.index.scan.retain(|&p| p != pos),
        }
        if let Some(bucket) = self.index.dup.get_mut(&(peer, h)) {
            bucket.retain(|&p| p != pos);
            if bucket.is_empty() {
                self.index.dup.remove(&(peer, h));
            }
        }
        if let Some(positions) = self.index.by_peer.get_mut(&peer) {
            positions.retain(|&p| p != pos);
        }
    }

    /// Compact the entry vector and rebuild the indexes once tombstones
    /// outnumber live entries (amortized O(1) per removal).
    fn maybe_compact(&mut self) {
        let dead = self.entries.len() - self.live_count;
        if dead <= self.live_count.max(64) {
            return;
        }
        let mut alive = self.live.iter();
        self.entries
            .retain(|_| *alive.next().expect("parallel vecs"));
        self.live.clear();
        self.live.resize(self.entries.len(), true);
        self.live_count = self.entries.len();
        self.index = TableIndex::default();
        for pos in 0..self.entries.len() as u32 {
            self.link(pos);
        }
    }

    /// The live position holding exactly `(peer, filter)`, if any.
    fn position_of(&self, peer: Peer, filter: &Filter) -> Option<u32> {
        let bucket = self.index.dup.get(&(peer, filter_hash(filter)))?;
        bucket
            .iter()
            .copied()
            .find(|&p| self.live[p as usize] && &self.entries[p as usize].filter == filter)
    }

    /// Add an unlabeled entry. Duplicate `(peer, filter)` pairs are ignored
    /// (the table is a set).
    pub fn add(&mut self, peer: Peer, filter: Filter) -> bool {
        self.add_labeled(peer, filter, None)
    }

    /// Add an entry with an accept-only-from label.
    /// Returns `true` when the entry was actually inserted.
    pub fn add_labeled(&mut self, peer: Peer, filter: Filter, label: Option<Peer>) -> bool {
        if self.position_of(peer, &filter).is_some() {
            return false;
        }
        self.maybe_compact();
        let pos = self.entries.len() as u32;
        self.entries.push(FilterEntry {
            peer,
            filter,
            accept_only_from: label,
        });
        self.live.push(true);
        self.live_count += 1;
        self.link(pos);
        true
    }

    /// Remove the `(peer, filter)` entry. Returns `true` when present.
    pub fn remove(&mut self, peer: Peer, filter: &Filter) -> bool {
        match self.position_of(peer, filter) {
            Some(pos) => {
                self.kill(pos);
                self.maybe_compact();
                true
            }
            None => false,
        }
    }

    /// Remove every entry for a peer, returning the removed filters.
    pub fn remove_peer(&mut self, peer: Peer) -> Vec<Filter> {
        let positions = match self.index.by_peer.get(&peer) {
            Some(positions) => positions.clone(),
            None => return Vec::new(),
        };
        let mut removed = Vec::with_capacity(positions.len());
        for pos in positions {
            if self.live[pos as usize] {
                removed.push(self.entries[pos as usize].filter.clone());
                self.kill(pos);
            }
        }
        self.index.by_peer.remove(&peer);
        self.maybe_compact();
        removed
    }

    /// Whether the `(peer, filter)` entry exists.
    pub fn contains(&self, peer: Peer, filter: &Filter) -> bool {
        self.position_of(peer, filter).is_some()
    }

    /// All filters registered for a peer.
    pub fn filters_for(&self, peer: Peer) -> Vec<&Filter> {
        match self.index.by_peer.get(&peer) {
            Some(positions) => positions
                .iter()
                .filter(|&&p| self.live[p as usize])
                .map(|&p| &self.entries[p as usize].filter)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Set (or clear) the accept-only-from label on an existing entry.
    /// Returns `true` when the entry was found.
    pub fn set_label(&mut self, peer: Peer, filter: &Filter, label: Option<Peer>) -> bool {
        match self.position_of(peer, filter) {
            Some(pos) => {
                self.entries[pos as usize].accept_only_from = label;
                true
            }
            None => false,
        }
    }

    /// The current label of an entry (None when unlabeled or absent).
    pub fn label_of(&self, peer: Peer, filter: &Filter) -> Option<Peer> {
        self.position_of(peer, filter)
            .and_then(|pos| self.entries[pos as usize].accept_only_from)
    }

    /// Reverse-path-forwarding matching: the set of neighbors an event
    /// arriving from `from` must be handed to.
    ///
    /// * the neighbor the event came from is never selected (RPF),
    /// * labeled entries only match when the event arrived from the label.
    ///
    /// Each peer is returned at most once even if several of its filters
    /// match. Candidate entries come from the per-attribute equality maps
    /// and interval grids plus the residual scan list; probing them in
    /// ascending position keeps the result order identical to a plain
    /// in-order scan of the table.
    pub fn matching_targets(&mut self, event: &Event, from: Peer) -> Vec<Peer> {
        let mut cand: Vec<u32> = self.index.scan.clone();
        for (attr, aidx) in self.index.attrs.iter_mut() {
            let Some(value) = event.get(attr) else {
                continue;
            };
            if !aidx.eq.is_empty() {
                if let Some(hits) = aidx.eq.get(&ValueKey::of(value)) {
                    cand.extend_from_slice(hits);
                }
            }
            if !aidx.intervals.is_empty() {
                if let Some(v) = value.as_f64() {
                    let grid = aidx.grid_mut(&self.entries, &self.live);
                    cand.extend_from_slice(&grid.buckets[grid.bucket_of(v)]);
                }
            }
        }
        cand.sort_unstable();
        let mut out: Vec<Peer> = Vec::new();
        for &pos in &cand {
            if !self.live[pos as usize] {
                continue;
            }
            let e = &self.entries[pos as usize];
            if e.peer == from {
                continue;
            }
            if let Some(label) = e.accept_only_from {
                if label != from {
                    continue;
                }
            }
            if e.filter.matches(event) && !out.contains(&e.peer) {
                out.push(e.peer);
            }
        }
        out
    }

    /// Is there an entry from a peer other than `except` whose filter covers
    /// `filter`? Used by the covering optimisation to decide whether a new
    /// subscription needs to be propagated to a neighbor, and whether an
    /// unsubscription may be suppressed.
    pub fn covered_by_other(&self, filter: &Filter, except: Peer) -> bool {
        self.entries()
            .any(|e| e.peer != except && e.filter.covers(filter))
    }

    /// Is there an entry from a peer other than `except` whose filter equals
    /// or covers `filter`, *ignoring* labels? Used when deciding whether an
    /// unsubscription must be forwarded.
    pub fn still_needed_by_other(&self, filter: &Filter, except: Peer) -> bool {
        self.covered_by_other(filter, except)
    }

    /// All client peers that currently have at least one entry.
    pub fn client_peers(&self) -> Vec<Peer> {
        let mut out = Vec::new();
        for e in self.entries() {
            if matches!(e.peer, Peer::Client(_)) && !out.contains(&e.peer) {
                out.push(e.peer);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::{BrokerId, ClientId};
    use crate::event::EventBuilder;
    use crate::filter::Op;

    fn ev(group: i64) -> Event {
        EventBuilder::new()
            .attr("group", group)
            .build(1, ClientId(0), 0)
    }

    fn f(group: i64) -> Filter {
        Filter::single("group", Op::Eq, group)
    }

    const B1: Peer = Peer::Broker(BrokerId(1));
    const B2: Peer = Peer::Broker(BrokerId(2));
    const C1: Peer = Peer::Client(ClientId(1));

    #[test]
    fn add_remove_contains() {
        let mut t = FilterTable::new();
        assert!(t.add(B1, f(3)));
        assert!(!t.add(B1, f(3)), "duplicates are ignored");
        assert!(t.contains(B1, &f(3)));
        assert!(!t.contains(B2, &f(3)));
        assert!(t.remove(B1, &f(3)));
        assert!(!t.remove(B1, &f(3)));
        assert!(t.is_empty());
    }

    #[test]
    fn matching_respects_rpf() {
        let mut t = FilterTable::new();
        t.add(B1, f(3));
        t.add(B2, f(3));
        t.add(C1, f(3));
        // Event arriving from B1 goes to B2 and C1 but never back to B1.
        let targets = t.matching_targets(&ev(3), B1);
        assert_eq!(targets, vec![B2, C1]);
        // Non-matching event goes nowhere.
        assert!(t.matching_targets(&ev(4), B1).is_empty());
    }

    #[test]
    fn matching_respects_labels() {
        let mut t = FilterTable::new();
        t.add(B1, f(3));
        t.add_labeled(C1, f(3), Some(B1));
        // From B1 the labeled client entry is accepted.
        assert_eq!(t.matching_targets(&ev(3), B1), vec![C1]);
        // From B2 the labeled entry is skipped; B1's broker entry matches.
        assert_eq!(t.matching_targets(&ev(3), B2), vec![B1]);
    }

    #[test]
    fn label_set_and_clear() {
        let mut t = FilterTable::new();
        t.add(C1, f(3));
        assert_eq!(t.label_of(C1, &f(3)), None);
        assert!(t.set_label(C1, &f(3), Some(B2)));
        assert_eq!(t.label_of(C1, &f(3)), Some(B2));
        assert!(t.set_label(C1, &f(3), None));
        assert_eq!(t.label_of(C1, &f(3)), None);
        assert!(!t.set_label(B1, &f(3), Some(B2)), "absent entry");
    }

    #[test]
    fn peer_deduplication_in_targets() {
        let mut t = FilterTable::new();
        t.add(B2, f(3));
        t.add(B2, Filter::match_all());
        let targets = t.matching_targets(&ev(3), B1);
        assert_eq!(
            targets,
            vec![B2],
            "peer appears once even with two matching filters"
        );
    }

    #[test]
    fn remove_peer_returns_filters() {
        let mut t = FilterTable::new();
        t.add(C1, f(1));
        t.add(C1, f(2));
        t.add(B1, f(1));
        let removed = t.remove_peer(C1);
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.client_peers(), Vec::<Peer>::new());
    }

    #[test]
    fn covered_by_other_uses_covering() {
        let mut t = FilterTable::new();
        t.add(B1, Filter::single("price", Op::Ge, 10.0));
        let narrow = Filter::single("price", Op::Ge, 50.0);
        assert!(t.covered_by_other(&narrow, B2));
        assert!(
            !t.covered_by_other(&narrow, B1),
            "the only covering entry is excluded"
        );
    }

    #[test]
    fn filters_for_lists_per_peer() {
        let mut t = FilterTable::new();
        t.add(C1, f(1));
        t.add(C1, f(2));
        assert_eq!(t.filters_for(C1).len(), 2);
        assert!(t.filters_for(B1).is_empty());
    }

    #[test]
    fn cross_type_numeric_eq_entries_still_match() {
        // eq_value treats Int(3) and Float(3.0) as equal; the equality map
        // must keep that semantics for single-Eq entries.
        let mut t = FilterTable::new();
        t.add(C1, Filter::single("group", Op::Eq, 3.0f64));
        let e = ev(3); // carries Int(3)
        assert_eq!(t.matching_targets(&e, B1), vec![C1]);
    }

    #[test]
    fn range_entries_match_through_the_grid() {
        // The evaluation workload's filter shape: lo <= v < hi.
        let mut t = FilterTable::new();
        for i in 0..50u32 {
            let lo = i as f64 / 50.0;
            t.add(
                Peer::Client(ClientId(i)),
                Filter::new(vec![])
                    .and("v", Op::Ge, lo)
                    .and("v", Op::Lt, lo + 0.1),
            );
        }
        let e = EventBuilder::new()
            .attr("v", 0.505)
            .build(1, ClientId(0), 0);
        let targets = t.matching_targets(&e, B1);
        // Clients with lo in (0.405, 0.505]: indices 21..=25.
        let expect: Vec<Peer> = (21..=25).map(|i| Peer::Client(ClientId(i))).collect();
        assert_eq!(targets, expect);
    }

    #[test]
    fn compaction_preserves_order_and_content() {
        let mut t = FilterTable::new();
        for i in 0..200u32 {
            t.add(Peer::Client(ClientId(i)), f(i as i64 % 5));
        }
        for i in 0..150u32 {
            assert!(t.remove(Peer::Client(ClientId(i)), &f(i as i64 % 5)));
        }
        assert_eq!(t.len(), 50);
        let survivors: Vec<Peer> = t.entries().map(|e| e.peer).collect();
        let expect: Vec<Peer> = (150..200).map(|i| Peer::Client(ClientId(i))).collect();
        assert_eq!(survivors, expect, "insertion order survives compaction");
        let targets = t.matching_targets(&ev(3), B1);
        let matching: Vec<Peer> = (150..200)
            .filter(|i| i % 5 == 3)
            .map(|i| Peer::Client(ClientId(i)))
            .collect();
        assert_eq!(targets, matching);
    }

    /// Differential check: the indexed matcher must return exactly what the
    /// original in-order linear scan returned, across random tables, random
    /// events, and interleaved removals (which exercise tombstones, grid
    /// unlinking and compaction).
    #[test]
    fn indexed_matching_equals_linear_scan() {
        use mhh_simnet::random::DetRng;

        fn reference(t: &FilterTable, event: &Event, from: Peer) -> Vec<Peer> {
            let mut out: Vec<Peer> = Vec::new();
            for e in t.entries() {
                if e.peer == from {
                    continue;
                }
                if let Some(label) = e.accept_only_from {
                    if label != from {
                        continue;
                    }
                }
                if e.filter.matches(event) && !out.contains(&e.peer) {
                    out.push(e.peer);
                }
            }
            out
        }

        let mut rng = DetRng::new(0xf117_ab1e);
        let peer = |rng: &mut DetRng| -> Peer {
            if rng.index(2) == 0 {
                Peer::Broker(BrokerId(rng.index(4) as u32))
            } else {
                Peer::Client(ClientId(rng.index(6) as u32))
            }
        };
        let filt = |rng: &mut DetRng| -> Filter {
            match rng.index(5) {
                0 => f(rng.index(5) as i64),
                1 => Filter::single("price", Op::Ge, rng.index(50) as f64),
                2 => Filter::single("group", Op::Eq, rng.index(5) as f64),
                3 => {
                    let lo = rng.index(40) as f64;
                    Filter::new(vec![])
                        .and("price", Op::Ge, lo)
                        .and("price", Op::Lt, lo + 10.0)
                }
                _ => Filter::match_all(),
            }
        };
        for _ in 0..64 {
            let mut t = FilterTable::new();
            for _ in 0..rng.index(24) {
                let label = if rng.index(3) == 0 {
                    Some(peer(&mut rng))
                } else {
                    None
                };
                t.add_labeled(peer(&mut rng), filt(&mut rng), label);
            }
            for _ in 0..8 {
                // Exercise append, tombstone-removal and compaction paths.
                match rng.index(3) {
                    0 => {
                        t.add(peer(&mut rng), filt(&mut rng));
                    }
                    1 => {
                        t.remove_peer(peer(&mut rng));
                    }
                    _ => {}
                }
                let event = EventBuilder::new()
                    .attr("group", rng.index(5) as i64)
                    .attr("price", rng.index(50) as f64)
                    .build(1, ClientId(0), 0);
                let from = peer(&mut rng);
                assert_eq!(
                    t.matching_targets(&event, from),
                    reference(&t, &event, from),
                    "index diverged from linear scan"
                );
            }
        }
    }
}
