//! The per-broker filter table.
//!
//! Section 3 of the paper: "Each event broker maintains a filter table to
//! record the subscriptions of its neighbors. [...] The filter table of a
//! broker can be represented as the set {(nb, f)}, where each pair means that
//! neighbor nb is interested in the events that satisfy the filter f."
//!
//! Two extensions required by the protocols are supported:
//!
//! * **accept-only-from labels** — MHH marks a client entry with a neighbor
//!   label meaning "only accept events for this client when they arrive from
//!   that neighbor" (paper, Section 4.1 steps 2–3); matching honours the
//!   label;
//! * per-entry bookkeeping helpers used by subscription propagation with the
//!   optional covering optimisation.

use crate::address::Peer;
use crate::event::Event;
use crate::filter::Filter;

/// One `(neighbor, filter)` entry, optionally labeled.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterEntry {
    /// The interested neighbor (broker or client).
    pub peer: Peer,
    /// The filter the neighbor is interested in.
    pub filter: Filter,
    /// MHH accept-only-from label: when set, events for this entry are only
    /// accepted when they arrive from the given neighbor.
    pub accept_only_from: Option<Peer>,
}

/// The filter table of a broker.
#[derive(Debug, Clone, Default)]
pub struct FilterTable {
    entries: Vec<FilterEntry>,
}

impl FilterTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over all entries.
    pub fn entries(&self) -> impl Iterator<Item = &FilterEntry> {
        self.entries.iter()
    }

    /// Add an unlabeled entry. Duplicate `(peer, filter)` pairs are ignored
    /// (the table is a set).
    pub fn add(&mut self, peer: Peer, filter: Filter) -> bool {
        self.add_labeled(peer, filter, None)
    }

    /// Add an entry with an accept-only-from label.
    /// Returns `true` when the entry was actually inserted.
    pub fn add_labeled(&mut self, peer: Peer, filter: Filter, label: Option<Peer>) -> bool {
        if self
            .entries
            .iter()
            .any(|e| e.peer == peer && e.filter == filter)
        {
            return false;
        }
        self.entries.push(FilterEntry {
            peer,
            filter,
            accept_only_from: label,
        });
        true
    }

    /// Remove the `(peer, filter)` entry. Returns `true` when present.
    pub fn remove(&mut self, peer: Peer, filter: &Filter) -> bool {
        let before = self.entries.len();
        self.entries
            .retain(|e| !(e.peer == peer && &e.filter == filter));
        self.entries.len() != before
    }

    /// Remove every entry for a peer, returning the removed filters.
    pub fn remove_peer(&mut self, peer: Peer) -> Vec<Filter> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            if e.peer == peer {
                removed.push(e.filter.clone());
                false
            } else {
                true
            }
        });
        removed
    }

    /// Whether the `(peer, filter)` entry exists.
    pub fn contains(&self, peer: Peer, filter: &Filter) -> bool {
        self.entries
            .iter()
            .any(|e| e.peer == peer && &e.filter == filter)
    }

    /// All filters registered for a peer.
    pub fn filters_for(&self, peer: Peer) -> Vec<&Filter> {
        self.entries
            .iter()
            .filter(|e| e.peer == peer)
            .map(|e| &e.filter)
            .collect()
    }

    /// Set (or clear) the accept-only-from label on an existing entry.
    /// Returns `true` when the entry was found.
    pub fn set_label(&mut self, peer: Peer, filter: &Filter, label: Option<Peer>) -> bool {
        for e in &mut self.entries {
            if e.peer == peer && &e.filter == filter {
                e.accept_only_from = label;
                return true;
            }
        }
        false
    }

    /// The current label of an entry (None when unlabeled or absent).
    pub fn label_of(&self, peer: Peer, filter: &Filter) -> Option<Peer> {
        self.entries
            .iter()
            .find(|e| e.peer == peer && &e.filter == filter)
            .and_then(|e| e.accept_only_from)
    }

    /// Reverse-path-forwarding matching: the set of neighbors an event
    /// arriving from `from` must be handed to.
    ///
    /// * the neighbor the event came from is never selected (RPF),
    /// * labeled entries only match when the event arrived from the label.
    ///
    /// Each peer is returned at most once even if several of its filters
    /// match.
    pub fn matching_targets(&self, event: &Event, from: Peer) -> Vec<Peer> {
        let mut out: Vec<Peer> = Vec::new();
        for e in &self.entries {
            if e.peer == from {
                continue;
            }
            if let Some(label) = e.accept_only_from {
                if label != from {
                    continue;
                }
            }
            if e.filter.matches(event) && !out.contains(&e.peer) {
                out.push(e.peer);
            }
        }
        out
    }

    /// Is there an entry from a peer other than `except` whose filter covers
    /// `filter`? Used by the covering optimisation to decide whether a new
    /// subscription needs to be propagated to a neighbor, and whether an
    /// unsubscription may be suppressed.
    pub fn covered_by_other(&self, filter: &Filter, except: Peer) -> bool {
        self.entries
            .iter()
            .any(|e| e.peer != except && e.filter.covers(filter))
    }

    /// Is there an entry from a peer other than `except` whose filter equals
    /// or covers `filter`, *ignoring* labels? Used when deciding whether an
    /// unsubscription must be forwarded.
    pub fn still_needed_by_other(&self, filter: &Filter, except: Peer) -> bool {
        self.covered_by_other(filter, except)
    }

    /// All client peers that currently have at least one entry.
    pub fn client_peers(&self) -> Vec<Peer> {
        let mut out = Vec::new();
        for e in &self.entries {
            if matches!(e.peer, Peer::Client(_)) && !out.contains(&e.peer) {
                out.push(e.peer);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::{BrokerId, ClientId};
    use crate::event::EventBuilder;
    use crate::filter::Op;

    fn ev(group: i64) -> Event {
        EventBuilder::new()
            .attr("group", group)
            .build(1, ClientId(0), 0)
    }

    fn f(group: i64) -> Filter {
        Filter::single("group", Op::Eq, group)
    }

    const B1: Peer = Peer::Broker(BrokerId(1));
    const B2: Peer = Peer::Broker(BrokerId(2));
    const C1: Peer = Peer::Client(ClientId(1));

    #[test]
    fn add_remove_contains() {
        let mut t = FilterTable::new();
        assert!(t.add(B1, f(3)));
        assert!(!t.add(B1, f(3)), "duplicates are ignored");
        assert!(t.contains(B1, &f(3)));
        assert!(!t.contains(B2, &f(3)));
        assert!(t.remove(B1, &f(3)));
        assert!(!t.remove(B1, &f(3)));
        assert!(t.is_empty());
    }

    #[test]
    fn matching_respects_rpf() {
        let mut t = FilterTable::new();
        t.add(B1, f(3));
        t.add(B2, f(3));
        t.add(C1, f(3));
        // Event arriving from B1 goes to B2 and C1 but never back to B1.
        let targets = t.matching_targets(&ev(3), B1);
        assert_eq!(targets, vec![B2, C1]);
        // Non-matching event goes nowhere.
        assert!(t.matching_targets(&ev(4), B1).is_empty());
    }

    #[test]
    fn matching_respects_labels() {
        let mut t = FilterTable::new();
        t.add(B1, f(3));
        t.add_labeled(C1, f(3), Some(B1));
        // From B1 the labeled client entry is accepted.
        assert_eq!(t.matching_targets(&ev(3), B1), vec![C1]);
        // From B2 the labeled entry is skipped; B1's broker entry matches.
        assert_eq!(t.matching_targets(&ev(3), B2), vec![B1]);
    }

    #[test]
    fn label_set_and_clear() {
        let mut t = FilterTable::new();
        t.add(C1, f(3));
        assert_eq!(t.label_of(C1, &f(3)), None);
        assert!(t.set_label(C1, &f(3), Some(B2)));
        assert_eq!(t.label_of(C1, &f(3)), Some(B2));
        assert!(t.set_label(C1, &f(3), None));
        assert_eq!(t.label_of(C1, &f(3)), None);
        assert!(!t.set_label(B1, &f(3), Some(B2)), "absent entry");
    }

    #[test]
    fn peer_deduplication_in_targets() {
        let mut t = FilterTable::new();
        t.add(B2, f(3));
        t.add(B2, Filter::match_all());
        let targets = t.matching_targets(&ev(3), B1);
        assert_eq!(
            targets,
            vec![B2],
            "peer appears once even with two matching filters"
        );
    }

    #[test]
    fn remove_peer_returns_filters() {
        let mut t = FilterTable::new();
        t.add(C1, f(1));
        t.add(C1, f(2));
        t.add(B1, f(1));
        let removed = t.remove_peer(C1);
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.client_peers(), Vec::<Peer>::new());
    }

    #[test]
    fn covered_by_other_uses_covering() {
        let mut t = FilterTable::new();
        t.add(B1, Filter::single("price", Op::Ge, 10.0));
        let narrow = Filter::single("price", Op::Ge, 50.0);
        assert!(t.covered_by_other(&narrow, B2));
        assert!(
            !t.covered_by_other(&narrow, B1),
            "the only covering entry is excluded"
        );
    }

    #[test]
    fn filters_for_lists_per_peer() {
        let mut t = FilterTable::new();
        t.add(C1, f(1));
        t.add(C1, f(2));
        assert_eq!(t.filters_for(C1).len(), 2);
        assert!(t.filters_for(B1).is_empty());
    }
}
