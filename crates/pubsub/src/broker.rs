//! The event broker node.
//!
//! A broker is split into two cooperating parts:
//!
//! * [`BrokerCore`] — the protocol-agnostic state of Section 3 of the paper:
//!   the filter table, the overlay routing table, the set of locally
//!   connected clients, and the reverse-path-forwarding subscription /
//!   event propagation logic;
//! * a [`MobilityProtocol`] implementation — everything that happens when
//!   clients move: MHH (in `mhh-core`), sub-unsub and home-broker (in
//!   `mhh-baselines`) plug in here.
//!
//! [`Broker`] glues the two together and implements the simulator's
//! [`Node`] trait.

use std::collections::BTreeMap;
use std::sync::Arc;

use mhh_simnet::{Context, Envelope, Network, Node, NodeId, SimDuration, SimTime};

use crate::address::{AddressBook, BrokerId, ClientId, Peer};
use crate::dynproto::BoxedMsg;
use crate::event::Event;
use crate::event::EventId;
use crate::filter::Filter;
use crate::filter_table::FilterTable;
use crate::messages::{ConnectInfo, NetMsg, ProtocolMessage, RepairMsg};
use crate::queue::PqId;
use crate::repair::RepairState;
use crate::wire::{CachedEvent, FanoutMode, FanoutStats};

/// Where a [`BrokerCtx`] routes outgoing messages.
///
/// The `Direct` arm is the generic fast path: messages go straight into the
/// engine context with their concrete protocol payload type. The `Erased`
/// arm backs dyn-dispatched protocols ([`crate::dynproto`]): the engine runs
/// on [`BoxedMsg`] payloads, and a protocol's native messages are boxed at
/// the send boundary.
enum CtxSink<'a, P: ProtocolMessage> {
    Direct(&'a mut Context<NetMsg<P>>),
    Erased(&'a mut Context<NetMsg<BoxedMsg>>),
}

/// Helper handed to broker/protocol code for sending messages; wraps the
/// simulator context plus the address book so protocol code can speak in
/// terms of broker and client ids.
pub struct BrokerCtx<'a, P: ProtocolMessage> {
    sink: CtxSink<'a, P>,
    book: AddressBook,
    /// The broker this context belongs to (None for client/test contexts).
    self_broker: Option<BrokerId>,
    /// Partitioned peers to tunnel around (snapshot of the broker's
    /// [`RepairState::tunnels`]; empty in the fault-free common case).
    tunnels: Arc<BTreeMap<BrokerId, BrokerId>>,
}

impl<'a, P: ProtocolMessage> BrokerCtx<'a, P> {
    /// Wrap a simulator context (no tunnel interception — clients, tests).
    pub fn new(inner: &'a mut Context<NetMsg<P>>, book: AddressBook) -> Self {
        BrokerCtx {
            sink: CtxSink::Direct(inner),
            book,
            self_broker: None,
            tunnels: Arc::new(BTreeMap::new()),
        }
    }

    /// Wrap a simulator context for a specific broker: sends to a
    /// partitioned peer are transparently wrapped in a
    /// [`RepairMsg::Tunnel`] through that peer's relay.
    pub fn for_broker(
        inner: &'a mut Context<NetMsg<P>>,
        book: AddressBook,
        broker: BrokerId,
        tunnels: Arc<BTreeMap<BrokerId, BrokerId>>,
    ) -> Self {
        BrokerCtx {
            sink: CtxSink::Direct(inner),
            book,
            self_broker: Some(broker),
            tunnels,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        match &self.sink {
            CtxSink::Direct(inner) => inner.now(),
            CtxSink::Erased(inner) => inner.now(),
        }
    }

    /// The address book of the deployment.
    pub fn book(&self) -> AddressBook {
        self.book
    }

    fn send(&mut self, to: mhh_simnet::NodeId, msg: NetMsg<P>) {
        match &mut self.sink {
            CtxSink::Direct(inner) => inner.send(to, msg),
            CtxSink::Erased(inner) => inner.send(to, msg.map_protocol(BoxedMsg::new)),
        }
    }

    /// Send an arbitrary message to another broker. While the direct channel
    /// to `broker` is partitioned, the message is transparently tunneled
    /// through the relay recorded by the repair layer (tunnels themselves
    /// are never re-wrapped — the relay forwards them as-is).
    pub fn send_to_broker(&mut self, broker: BrokerId, msg: NetMsg<P>) {
        if !self.tunnels.is_empty() && !matches!(msg, NetMsg::Repair(RepairMsg::Tunnel { .. })) {
            if let (Some(me), Some(&relay)) = (self.self_broker, self.tunnels.get(&broker)) {
                let wrapped = NetMsg::Repair(RepairMsg::Tunnel {
                    src: me,
                    dst: broker,
                    inner: Box::new(msg),
                });
                self.send(self.book.broker_node(relay), wrapped);
                return;
            }
        }
        self.send(self.book.broker_node(broker), msg);
    }

    /// Send a protocol-specific message to another broker.
    pub fn send_protocol(&mut self, broker: BrokerId, msg: P) {
        self.send_to_broker(broker, NetMsg::Protocol(msg));
    }

    /// Forward an event to a neighboring broker over the overlay.
    pub fn forward(&mut self, broker: BrokerId, event: Event) {
        self.send_to_broker(broker, NetMsg::Forward(event));
    }

    /// Deliver an event to a connected client over the wireless link.
    ///
    /// Protocol code should normally go through [`BrokerCore::deliver`] (or
    /// [`BrokerCore::try_deliver`]) instead, which applies the broker's
    /// duplicate-suppression window before reaching this raw send.
    pub fn deliver(&mut self, client: ClientId, event: Event) {
        self.send(self.book.client_node(client), NetMsg::Deliver(event));
    }

    /// Acknowledge a client publish (publisher-side retransmission support).
    pub fn ack_publish(&mut self, client: ClientId, id: EventId) {
        self.send(self.book.client_node(client), NetMsg::PublishAck { id });
    }

    /// Schedule a protocol message back to this broker after `delay`
    /// (a timer — never counted as network traffic).
    pub fn schedule_protocol(&mut self, delay: SimDuration, msg: P) {
        match &mut self.sink {
            CtxSink::Direct(inner) => inner.schedule(delay, NetMsg::Protocol(msg)),
            CtxSink::Erased(inner) => inner.schedule(delay, NetMsg::Protocol(BoxedMsg::new(msg))),
        }
    }

    /// Schedule a repair message back to this broker after `delay`
    /// (a timer — never counted as network traffic). Drives the periodic
    /// checkpoint-replication tick.
    pub fn schedule_repair(&mut self, delay: SimDuration, msg: RepairMsg<P>) {
        match &mut self.sink {
            CtxSink::Direct(inner) => inner.schedule(delay, NetMsg::Repair(msg)),
            CtxSink::Erased(inner) => {
                inner.schedule(delay, NetMsg::Repair(msg).map_protocol(BoxedMsg::new))
            }
        }
    }

    /// Report fan-out buffer allocations to the engine's perf counters
    /// (see [`Context::note_fanout_allocs`]).
    pub fn note_fanout_allocs(&mut self, n: u64) {
        match &mut self.sink {
            CtxSink::Direct(inner) => inner.note_fanout_allocs(n),
            CtxSink::Erased(inner) => inner.note_fanout_allocs(n),
        }
    }
}

impl<'a> BrokerCtx<'a, BoxedMsg> {
    /// Reborrow this context for a protocol whose native message type is
    /// `M`: sends are boxed back into [`BoxedMsg`] at the boundary. This is
    /// how [`crate::dynproto::ErasedProtocol`] hands the wrapped protocol a
    /// context of its own message type while the engine runs type-erased.
    pub fn erased<M: ProtocolMessage>(&mut self) -> BrokerCtx<'_, M> {
        let book = self.book;
        let self_broker = self.self_broker;
        let tunnels = self.tunnels.clone();
        // Both arms hold a `Context<NetMsg<BoxedMsg>>` when `P = BoxedMsg`.
        let inner: &mut Context<NetMsg<BoxedMsg>> = match &mut self.sink {
            CtxSink::Direct(inner) => inner,
            CtxSink::Erased(inner) => inner,
        };
        BrokerCtx {
            sink: CtxSink::Erased(inner),
            book,
            self_broker,
            tunnels,
        }
    }
}

/// Behaviour a mobility-management protocol contributes to a broker.
///
/// The same trait is implemented by the paper's MHH protocol (`mhh-core`)
/// and by the two baselines (`mhh-baselines`), which is what lets the
/// evaluation harness run all three on identical workloads.
pub trait MobilityProtocol: Sized + Send {
    /// The protocol's own message enum.
    type Msg: ProtocolMessage;

    /// Human-readable protocol name (used in reports).
    fn name(&self) -> &'static str;

    /// A client reconnected at this broker (non-initial attachments only;
    /// initial attachments are handled by the core).
    fn on_client_connect(
        &mut self,
        core: &mut BrokerCore,
        info: ConnectInfo,
        ctx: &mut BrokerCtx<'_, Self::Msg>,
    );

    /// A client disconnected from this broker.
    fn on_client_disconnect(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        filter: Filter,
        proclaimed_dest: Option<BrokerId>,
        ctx: &mut BrokerCtx<'_, Self::Msg>,
    );

    /// A protocol-specific message arrived from `from` (equal to this
    /// broker's own id for self-scheduled timers).
    fn on_protocol_msg(
        &mut self,
        core: &mut BrokerCore,
        from: BrokerId,
        msg: Self::Msg,
        ctx: &mut BrokerCtx<'_, Self::Msg>,
    );

    /// An event matched a client entry of this broker's filter table. The
    /// protocol decides whether to deliver immediately, buffer, or move it.
    fn on_client_event(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        event: Event,
        from: Peer,
        ctx: &mut BrokerCtx<'_, Self::Msg>,
    );

    /// Events currently buffered at this broker for disconnected or
    /// mid-handoff clients. Used by the end-of-run delivery audit to tell
    /// "still pending" apart from "lost".
    fn buffered_events(&self) -> Vec<(ClientId, Event)> {
        Vec::new()
    }

    /// Total modeled wire bytes of the events in
    /// [`buffered_events`](Self::buffered_events), without materializing
    /// them. Sampled by the broker after each message (only when payload
    /// modeling is on) to track the buffered-memory high-water mark during
    /// handoff and capture windows.
    fn buffered_bytes(&self) -> u64 {
        0
    }

    /// This broker just restarted from a crash: durable core state was
    /// reloaded from the checkpoint, but all pending timers and in-flight
    /// messages were lost while the broker was down. Protocols override this
    /// to re-arm stalled state machines (MHH re-kicks pending migrations).
    fn on_restart(&mut self, core: &mut BrokerCore, ctx: &mut BrokerCtx<'_, Self::Msg>) {
        let _ = (core, ctx);
    }
}

/// Per-client duplicate-suppression state: a per-publisher delivery
/// watermark (the highest per-publisher sequence number already delivered)
/// plus a bounded window of recently delivered event ids. An event is
/// suppressed when its sequence number is at or below the publisher's
/// watermark *or* its id is still in the recent window; otherwise it is
/// delivered and both structures advance. The watermark is what kills the
/// unbounded crash-recovery duplicate storm (re-forwarded backlogs replay
/// entire histories); the id window catches re-sends that race ahead of it.
#[derive(Debug, Clone, Default)]
pub struct DedupState {
    /// Highest delivered sequence number per publisher.
    pub watermarks: BTreeMap<ClientId, u64>,
    /// Recently delivered event ids, oldest first, bounded by the broker's
    /// [`BrokerCore::dedup_window`].
    pub recent: std::collections::VecDeque<EventId>,
}

impl DedupState {
    /// Modeled memory footprint: 12 bytes per watermark entry (4-byte
    /// client id + 8-byte sequence), 8 bytes per windowed event id.
    pub fn modeled_bytes(&self) -> u64 {
        self.watermarks.len() as u64 * 12 + self.recent.len() as u64 * 8
    }
}

/// Protocol-agnostic broker state.
#[derive(Debug, Clone)]
pub struct BrokerCore {
    /// This broker's id.
    pub id: BrokerId,
    /// Address book of the deployment.
    pub book: AddressBook,
    /// The broker network (overlay tree + routing + distances).
    pub network: Arc<Network>,
    /// The filter table (Section 3).
    pub filters: FilterTable,
    /// Currently connected clients and their filters.
    pub connected: BTreeMap<ClientId, Filter>,
    /// Whether the covering optimisation is applied to subscription
    /// propagation.
    pub covering_enabled: bool,
    /// Overlay-repair bookkeeping (dead peers, detours, partition tunnels).
    pub repair: RepairState,
    /// How event fan-out materializes wire forms (serialize-once cached
    /// vs. clone-per-subscriber baseline). Only observable through byte
    /// and allocation accounting — delivery behavior is identical.
    pub fanout_mode: FanoutMode,
    /// Fan-out serialization counters for this broker.
    pub fanout: FanoutStats,
    /// When set, this broker keeps the last event of each publisher it
    /// routed and replays matching retained events to newly attaching
    /// subscribers (the MQTT retained-message pattern).
    pub retained_enabled: bool,
    /// Last routed event per publisher (retained store; empty unless
    /// [`retained_enabled`](Self::retained_enabled)).
    pub retained: BTreeMap<ClientId, Event>,
    /// Shared-subscription group width: matched local subscribers whose
    /// ids fall in the same `id / size` bucket receive each event on
    /// exactly one member (load-balanced delivery groups). 0 or 1 = off.
    pub shared_group_size: u32,
    /// Track buffered/checkpoint byte high-water marks (enabled together
    /// with payload modeling; off by default so the hot path stays free
    /// of sampling).
    pub track_mem: bool,
    /// Peak modeled bytes buffered by the mobility protocol at this
    /// broker (handoff/capture windows).
    pub buffered_bytes_peak: u64,
    /// Peak modeled checkpoint size written by this broker.
    pub checkpoint_bytes_peak: u64,
    /// Delivery duplicate-suppression window width (0 = off: deliveries
    /// bypass the dedup state entirely, the pre-reliability fast path).
    pub dedup_window: usize,
    /// Per-client dedup state (empty unless
    /// [`dedup_window`](Self::dedup_window) is set). Intentionally survives
    /// a simulated restart, like the retained store: suppression state is
    /// client-scoped, not part of the broker's durable checkpoint.
    pub dedup: BTreeMap<ClientId, DedupState>,
    /// Deliveries suppressed as duplicates at this broker.
    pub duplicates_suppressed: u64,
    /// Peak modeled bytes of dedup state (tracked only with
    /// [`track_mem`](Self::track_mem)).
    pub dedup_bytes_peak: u64,
    /// Whether this broker acknowledges client publishes
    /// ([`NetMsg::PublishAck`]); enabled together with publisher-side
    /// retransmission.
    pub acks_enabled: bool,
    /// Period of the neighbour-replicated checkpoint tick
    /// ([`RepairMsg::ReplicateTick`]); zero disables replication and keeps
    /// restarts on the self-checkpoint fast path.
    pub replication_period: SimDuration,
    /// The tick never re-arms past this instant — the bound that lets a
    /// run drain to quiescence after the workload horizon. [`SimTime::ZERO`]
    /// (the default) means replication is never armed at all.
    pub replication_until: SimTime,
    /// Clients re-subscribed after a replica restore because the stale
    /// replica predated their attachment (the modeled staleness cost).
    pub stale_resubscribes: u64,
    /// Pre-crash connected snapshot stashed between `Restarted` and the
    /// replica holder's `ReplicaResponse`.
    pub(crate) pending_restore: Option<BTreeMap<ClientId, Filter>>,
    /// Per-client allocator for persistent-queue identifiers.
    pq_seq: BTreeMap<ClientId, u32>,
}

impl BrokerCore {
    /// Create the core state for one broker.
    pub fn new(id: BrokerId, book: AddressBook, network: Arc<Network>, covering: bool) -> Self {
        BrokerCore {
            id,
            book,
            network,
            filters: FilterTable::new(),
            connected: BTreeMap::new(),
            covering_enabled: covering,
            repair: RepairState::default(),
            fanout_mode: FanoutMode::default(),
            fanout: FanoutStats::default(),
            retained_enabled: false,
            retained: BTreeMap::new(),
            shared_group_size: 0,
            track_mem: false,
            buffered_bytes_peak: 0,
            checkpoint_bytes_peak: 0,
            dedup_window: 0,
            dedup: BTreeMap::new(),
            duplicates_suppressed: 0,
            dedup_bytes_peak: 0,
            acks_enabled: false,
            replication_period: SimDuration::ZERO,
            replication_until: SimTime::ZERO,
            stale_resubscribes: 0,
            pending_restore: None,
            pq_seq: BTreeMap::new(),
        }
    }

    /// Select the fan-out materialization mode (builder-style).
    pub fn with_fanout_mode(mut self, mode: FanoutMode) -> Self {
        self.fanout_mode = mode;
        self
    }

    /// Enable the retained-message store and replay (builder-style).
    pub fn with_retained(mut self, enabled: bool) -> Self {
        self.retained_enabled = enabled;
        self
    }

    /// Set the shared-subscription group width (builder-style); 0 or 1
    /// disables group collapsing.
    pub fn with_shared_groups(mut self, size: u32) -> Self {
        self.shared_group_size = size;
        self
    }

    /// Enable buffered/checkpoint memory high-water tracking
    /// (builder-style).
    pub fn with_mem_tracking(mut self, enabled: bool) -> Self {
        self.track_mem = enabled;
        self
    }

    /// Set the delivery duplicate-suppression window width (builder-style);
    /// 0 keeps deliveries on the dedup-free fast path.
    pub fn with_dedup_window(mut self, window: usize) -> Self {
        self.dedup_window = window;
        self
    }

    /// Enable publish acknowledgments (builder-style); paired with
    /// publisher-side retransmission on the clients.
    pub fn with_publish_acks(mut self, enabled: bool) -> Self {
        self.acks_enabled = enabled;
        self
    }

    /// Set the neighbour-replicated checkpoint period and the horizon past
    /// which the tick stops re-arming (builder-style);
    /// [`SimDuration::ZERO`] disables replication. The horizon is what lets
    /// `run_to_completion` terminate: without it the self-rearming tick
    /// would keep the event queue non-empty forever.
    pub fn with_checkpoint_replication(mut self, period: SimDuration, until: SimTime) -> Self {
        self.replication_period = period;
        self.replication_until = until;
        self
    }

    /// Record a buffered-bytes sample, keeping the high-water mark.
    pub fn note_buffered_bytes(&mut self, bytes: u64) {
        if bytes > self.buffered_bytes_peak {
            self.buffered_bytes_peak = bytes;
        }
    }

    /// Record the modeled size of a checkpoint write.
    pub fn note_checkpoint_bytes(&mut self, bytes: u64) {
        if bytes > self.checkpoint_bytes_peak {
            self.checkpoint_bytes_peak = bytes;
        }
    }

    /// This broker as a [`Peer`].
    pub fn self_peer(&self) -> Peer {
        Peer::Broker(self.id)
    }

    /// Overlay-tree neighbors of this broker.
    pub fn neighbors(&self) -> Vec<BrokerId> {
        self.network
            .tree
            .neighbors(self.id.index())
            .iter()
            .map(|&n| BrokerId(n as u32))
            .collect()
    }

    /// The overlay neighbor on the path toward `dst` (Section 3's routing
    /// table). Returns this broker's own id when `dst == self.id`.
    pub fn next_hop_to(&self, dst: BrokerId) -> BrokerId {
        BrokerId(self.network.next_hop(self.id.index(), dst.index()) as u32)
    }

    /// Hop distance to another broker over the physical grid.
    pub fn grid_distance_to(&self, other: BrokerId) -> u32 {
        self.network.grid_distance(self.id.index(), other.index())
    }

    /// Allocate a fresh persistent-queue id for a client at this broker.
    pub fn alloc_pq_id(&mut self, client: ClientId) -> PqId {
        let seq = self.pq_seq.entry(client).or_insert(0);
        let id = PqId {
            broker: self.id,
            client,
            seq: *seq,
        };
        *seq += 1;
        id
    }

    /// Is the client currently attached to this broker?
    pub fn is_connected(&self, client: ClientId) -> bool {
        self.connected.contains_key(&client)
    }

    /// Deliver an event to a client, applying the duplicate-suppression
    /// window first. This is the single choke point every protocol delivery
    /// routes through; with [`dedup_window`](Self::dedup_window) at 0 it
    /// degenerates to the raw [`BrokerCtx::deliver`] send. Returns `true`
    /// when the event actually went out, `false` when it was suppressed.
    pub fn deliver<P: ProtocolMessage>(
        &mut self,
        client: ClientId,
        event: Event,
        ctx: &mut BrokerCtx<'_, P>,
    ) -> bool {
        if self.dedup_window > 0 && self.note_delivery_is_duplicate(client, &event) {
            self.duplicates_suppressed += 1;
            return false;
        }
        ctx.deliver(client, event);
        true
    }

    /// Check an imminent delivery against the client's dedup state and,
    /// when it is fresh, advance the watermark and the recent-id window.
    fn note_delivery_is_duplicate(&mut self, client: ClientId, event: &Event) -> bool {
        let st = self.dedup.entry(client).or_default();
        let duplicate = st
            .watermarks
            .get(&event.publisher)
            .is_some_and(|&max| event.seq <= max)
            || st.recent.contains(&event.id);
        if !duplicate {
            st.watermarks.insert(event.publisher, event.seq);
            st.recent.push_back(event.id);
            while st.recent.len() > self.dedup_window {
                st.recent.pop_front();
            }
        }
        duplicate
    }

    /// Total modeled bytes of dedup state across clients (memory tracking).
    pub fn dedup_bytes(&self) -> u64 {
        self.dedup.values().map(DedupState::modeled_bytes).sum()
    }

    /// Record a dedup-state memory sample, keeping the high-water mark.
    pub fn note_dedup_bytes(&mut self) {
        let bytes = self.dedup_bytes();
        if bytes > self.dedup_bytes_peak {
            self.dedup_bytes_peak = bytes;
        }
    }

    /// Deliver to the client if it is attached here; returns `false`
    /// otherwise so the caller can buffer instead. Routes through
    /// [`deliver`](Self::deliver), so suppression still applies (a
    /// suppressed duplicate counts as handled — `true`).
    pub fn try_deliver<P: ProtocolMessage>(
        &mut self,
        client: ClientId,
        event: Event,
        ctx: &mut BrokerCtx<'_, P>,
    ) -> bool {
        if self.is_connected(client) {
            self.deliver(client, event, ctx);
            true
        } else {
            false
        }
    }

    /// Register a subscription arriving from `from` and propagate it over
    /// the overlay (reverse path forwarding: the subscription fans out to
    /// every tree neighbor except the one it came from, unless the covering
    /// optimisation suppresses it).
    pub fn apply_subscribe<P: ProtocolMessage>(
        &mut self,
        from: Peer,
        filter: Filter,
        mobility: bool,
        ctx: &mut BrokerCtx<'_, P>,
    ) {
        // Decide propagation before inserting so the new entry does not
        // count as "already covering". Mobility-triggered re-subscriptions
        // (the sub-unsub baseline) must reach *every* broker — "the system
        // ensures that the client's subscription on the new broker is made
        // known to all other brokers" — so the covering optimisation only
        // suppresses ordinary subscription propagation.
        let mut to_notify = Vec::new();
        for nb in self.neighbors() {
            if from == Peer::Broker(nb) {
                continue;
            }
            if self.covering_enabled
                && !mobility
                && self.filters.covered_by_other(&filter, Peer::Broker(nb))
            {
                // A covering subscription has already been propagated toward
                // this neighbor; no need to send another one.
                continue;
            }
            to_notify.push(nb);
        }
        let inserted = self.filters.add(from, filter.clone());
        if !inserted {
            // Exact duplicate from the same peer: nothing new to tell anyone.
            return;
        }
        for nb in to_notify {
            ctx.send_to_broker(
                nb,
                NetMsg::SubPropagate {
                    filter: filter.clone(),
                    mobility,
                },
            );
        }
    }

    /// Remove a subscription of `from` and propagate the unsubscription
    /// where it is no longer needed.
    pub fn apply_unsubscribe<P: ProtocolMessage>(
        &mut self,
        from: Peer,
        filter: Filter,
        mobility: bool,
        ctx: &mut BrokerCtx<'_, P>,
    ) {
        let removed = self.filters.remove(from, &filter);
        if !removed {
            return;
        }
        for nb in self.neighbors() {
            if from == Peer::Broker(nb) {
                continue;
            }
            if self
                .filters
                .still_needed_by_other(&filter, Peer::Broker(nb))
            {
                // Another neighbor or local client still needs events
                // matching this filter, so the neighbor must keep sending
                // them to us.
                continue;
            }
            if self.covering_enabled {
                // Covering re-propagation: subscriptions whose propagation
                // toward this neighbor was suppressed because the filter
                // being removed covered them must be re-announced *before*
                // the unsubscription (per-link FIFO keeps the order), or the
                // neighbor drops the route for filters still needed here.
                let mut repropagate: Vec<Filter> = Vec::new();
                for e in self.filters.entries() {
                    if e.peer != Peer::Broker(nb)
                        && filter.covers(&e.filter)
                        && !repropagate.contains(&e.filter)
                    {
                        repropagate.push(e.filter.clone());
                    }
                }
                for f in repropagate {
                    ctx.send_to_broker(
                        nb,
                        NetMsg::SubPropagate {
                            filter: f,
                            mobility: false,
                        },
                    );
                }
            }
            ctx.send_to_broker(
                nb,
                NetMsg::UnsubPropagate {
                    filter: filter.clone(),
                    mobility,
                },
            );
        }
    }
}

/// Collapse matched client targets into shared-subscription groups: for
/// every group (`client.0 / group_size`) with more than zero matched local
/// members, exactly one member — chosen by the event id, round-robin over
/// the sorted members — keeps the event. Broker targets (overlay hops)
/// are never collapsed: remote group members may win the event at their
/// own broker. Deterministic by construction, so runs reproduce exactly.
fn collapse_shared_groups(targets: &mut Vec<Peer>, group_size: u32, id: EventId) {
    let mut groups: BTreeMap<u32, Vec<ClientId>> = BTreeMap::new();
    targets.retain(|t| match t {
        Peer::Client(c) => {
            groups.entry(c.0 / group_size).or_default().push(*c);
            false
        }
        Peer::Broker(_) => true,
    });
    for members in groups.values_mut() {
        members.sort_unstable();
        let pick = members[(id.0 % members.len() as u64) as usize];
        targets.push(Peer::Client(pick));
    }
}

/// A broker node: protocol-agnostic core plus a mobility protocol.
pub struct Broker<P: MobilityProtocol> {
    /// Protocol-agnostic state.
    pub core: BrokerCore,
    /// Mobility-protocol state.
    pub proto: P,
}

impl<P: MobilityProtocol> Broker<P> {
    /// Build a broker from its parts.
    pub fn new(core: BrokerCore, proto: P) -> Self {
        Broker { core, proto }
    }

    /// Route an event that arrived from `from` (a client publish or an
    /// overlay forward): matching broker neighbors get a `Forward`, matching
    /// client entries are handed to the protocol.
    ///
    /// When payload modeling is on (`event.wire_size() > 0`), the wire form
    /// is materialized per [`FanoutMode`]: rendered once and `Arc`-shared
    /// across all targets (cached), or re-rendered per target (the clone
    /// baseline). Both modes transport the same `Event` values, so delivery
    /// behavior — order, timing, audit, ledger — is byte-identical; only
    /// the serialization/allocation counters differ.
    fn handle_event(&mut self, event: Event, from: Peer, ctx: &mut BrokerCtx<'_, P::Msg>) {
        if self.core.retained_enabled {
            self.core.retained.insert(event.publisher, event.clone());
        }
        let mut targets = self.core.filters.matching_targets(&event, from);
        if self.core.shared_group_size > 1 {
            collapse_shared_groups(&mut targets, self.core.shared_group_size, event.id);
        }
        if !targets.is_empty() {
            match self.core.fanout_mode {
                FanoutMode::Cached => {
                    if let Some(cached) = CachedEvent::render(&event) {
                        self.core.fanout.fanouts += 1;
                        self.core.fanout.serializations += 1;
                        self.core.fanout.bytes_serialized += cached.len() as u64;
                        self.core.fanout.fanout_allocs += 1;
                        ctx.note_fanout_allocs(1);
                        for target in &targets {
                            let shared = cached.share();
                            let dest = match target {
                                Peer::Broker(b) => ctx.book().broker_node(*b).0,
                                Peer::Client(c) => ctx.book().client_node(*c).0,
                            };
                            std::hint::black_box(shared.patch_header(dest));
                            self.core.fanout.cache_hits += 1;
                        }
                    }
                }
                FanoutMode::CloneBaseline => {
                    if event.wire_size() > 0 {
                        self.core.fanout.fanouts += 1;
                        for _ in &targets {
                            let rendered =
                                CachedEvent::render(&event).expect("wire_size checked above");
                            self.core.fanout.serializations += 1;
                            self.core.fanout.bytes_serialized += rendered.len() as u64;
                            self.core.fanout.fanout_allocs += 1;
                            ctx.note_fanout_allocs(1);
                            std::hint::black_box(rendered.bytes());
                        }
                    }
                }
            }
        }
        for target in targets {
            match target {
                Peer::Broker(b) => ctx.forward(b, event.clone()),
                Peer::Client(c) => {
                    self.proto
                        .on_client_event(&mut self.core, c, event.clone(), from, ctx)
                }
            }
        }
    }

    /// Process one message as if it arrived from `from_node`. Split out of
    /// [`Node::on_message`] so a tunneled envelope can be re-dispatched with
    /// the *original* sender once it is unwrapped at its destination.
    pub(crate) fn dispatch(
        &mut self,
        from_node: NodeId,
        msg: NetMsg<P::Msg>,
        bctx: &mut BrokerCtx<'_, P::Msg>,
    ) {
        let book = self.core.book;
        match msg {
            NetMsg::Connect(info) => {
                self.core.connected.insert(info.client, info.filter.clone());
                if info.initial {
                    // First attachment ever: a plain subscription, no handoff.
                    self.core.apply_subscribe(
                        Peer::Client(info.client),
                        info.filter.clone(),
                        false,
                        bctx,
                    );
                    // Retained replay: a late subscriber immediately gets the
                    // last matching event of every publisher this broker has
                    // routed (the MQTT retained-message pattern). Replay is
                    // initial-attach only, so mobility handoffs stay
                    // untouched.
                    if self.core.retained_enabled {
                        let replay: Vec<Event> = self
                            .core
                            .retained
                            .values()
                            .filter(|e| e.publisher != info.client && info.filter.matches(e))
                            .cloned()
                            .collect();
                        for event in replay {
                            self.core.deliver(info.client, event, bctx);
                        }
                    }
                } else {
                    self.proto.on_client_connect(&mut self.core, info, bctx);
                }
            }
            NetMsg::Disconnect {
                client,
                proclaimed_dest,
            } => {
                let filter = self
                    .core
                    .connected
                    .remove(&client)
                    .or_else(|| {
                        self.core
                            .filters
                            .filters_for(Peer::Client(client))
                            .first()
                            .map(|f| (*f).clone())
                    })
                    .unwrap_or_default();
                self.proto.on_client_disconnect(
                    &mut self.core,
                    client,
                    filter,
                    proclaimed_dest,
                    bctx,
                );
            }
            NetMsg::Publish(event) => {
                // Acknowledge before routing (only when retransmission is
                // on): a re-sent publish whose original got through is
                // re-acked and its duplicate deliveries suppressed by the
                // subscribers' brokers.
                if self.core.acks_enabled {
                    bctx.ack_publish(event.publisher, event.id);
                }
                let from = Peer::Client(event.publisher);
                self.handle_event(event, from, bctx);
            }
            NetMsg::Forward(event) => {
                let from = book.node_peer(from_node);
                self.handle_event(event, from, bctx);
            }
            NetMsg::SubPropagate { filter, mobility } => {
                let from = book.node_peer(from_node);
                self.core.apply_subscribe(from, filter, mobility, bctx);
            }
            NetMsg::UnsubPropagate { filter, mobility } => {
                let from = book.node_peer(from_node);
                self.core.apply_unsubscribe(from, filter, mobility, bctx);
            }
            NetMsg::Protocol(msg) => {
                let from = if book.is_broker_node(from_node) {
                    book.node_broker(from_node)
                } else {
                    // Protocol messages only travel between brokers (and as
                    // self-timers); a client sender would be a logic error.
                    self.core.id
                };
                self.proto.on_protocol_msg(&mut self.core, from, msg, bctx);
            }
            NetMsg::Repair(msg) => {
                let from = if book.is_broker_node(from_node) {
                    book.node_broker(from_node)
                } else {
                    self.core.id
                };
                self.on_repair(from, msg, bctx);
            }
            // Messages addressed to clients or timer actions are never
            // handled by brokers.
            NetMsg::Deliver(_) | NetMsg::PublishAck { .. } | NetMsg::Action(_) => {}
        }
    }
}

impl<P: MobilityProtocol> Node<NetMsg<P::Msg>> for Broker<P> {
    fn on_message(&mut self, env: Envelope<NetMsg<P::Msg>>, ctx: &mut Context<NetMsg<P::Msg>>) {
        let mut bctx = BrokerCtx::for_broker(
            ctx,
            self.core.book,
            self.core.id,
            self.core.repair.tunnels.clone(),
        );
        self.dispatch(env.from, env.msg, &mut bctx);
        if self.core.track_mem {
            let buffered = self.proto.buffered_bytes();
            self.core.note_buffered_bytes(buffered);
            if self.core.dedup_window > 0 {
                self.core.note_dedup_bytes();
            }
        }
    }
}

/// Install a client's subscription across an already-built broker slice
/// without exchanging any messages. Used by the evaluation harness to set up
/// the initial state of Section 5.1 ("In the initial state, each broker
/// serves 10 clients") without paying a warm-up phase, and by tests.
///
/// `subscription_root` is the broker the subscription is rooted at (the
/// client's attachment broker, or its home broker for the home-broker
/// baseline). When `attach` is true the client is also marked as connected
/// there.
pub fn install_subscription<P: MobilityProtocol>(
    brokers: &mut [Broker<P>],
    network: &Network,
    client: ClientId,
    filter: &Filter,
    subscription_root: BrokerId,
    attach: bool,
) {
    for broker in brokers.iter_mut() {
        let here = broker.core.id;
        if here == subscription_root {
            broker
                .core
                .filters
                .add(Peer::Client(client), filter.clone());
            if attach {
                broker.core.connected.insert(client, filter.clone());
            }
        } else {
            let next = BrokerId(network.next_hop(here.index(), subscription_root.index()) as u32);
            broker.core.filters.add(Peer::Broker(next), filter.clone());
        }
    }
}

/// A "no mobility support" protocol: reconnecting clients simply issue a new
/// subscription at the new broker and events for absent clients are dropped.
/// Used to test the static substrate and as the simplest possible example of
/// the [`MobilityProtocol`] trait.
#[derive(Debug, Default, Clone)]
pub struct NoProtocol;

impl MobilityProtocol for NoProtocol {
    type Msg = crate::messages::NoProtocolMsg;

    fn name(&self) -> &'static str {
        "static"
    }

    fn on_client_connect(
        &mut self,
        core: &mut BrokerCore,
        info: ConnectInfo,
        ctx: &mut BrokerCtx<'_, Self::Msg>,
    ) {
        // Behave exactly like an initial connect: subscribe here, leave any
        // stale state elsewhere alone (that is precisely why a real mobility
        // protocol is needed).
        core.apply_subscribe(Peer::Client(info.client), info.filter, false, ctx);
    }

    fn on_client_disconnect(
        &mut self,
        _core: &mut BrokerCore,
        _client: ClientId,
        _filter: Filter,
        _proclaimed_dest: Option<BrokerId>,
        _ctx: &mut BrokerCtx<'_, Self::Msg>,
    ) {
    }

    fn on_protocol_msg(
        &mut self,
        _core: &mut BrokerCore,
        _from: BrokerId,
        msg: Self::Msg,
        _ctx: &mut BrokerCtx<'_, Self::Msg>,
    ) {
        match msg {}
    }

    fn on_client_event(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        event: Event,
        _from: Peer,
        ctx: &mut BrokerCtx<'_, Self::Msg>,
    ) {
        // Deliver if attached, silently drop otherwise.
        let _ = core.try_deliver(client, event, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientNode;
    use crate::filter::Op;
    use crate::messages::ClientAction;
    use mhh_simnet::{Engine, GridFabric, TrafficClass};

    type M = NetMsg<crate::messages::NoProtocolMsg>;

    /// A node that is either a broker or a client, so one engine can hold
    /// both. The mobsim crate has its own richer version; this one is for
    /// substrate tests.
    #[allow(clippy::large_enum_variant)]
    enum TestNode {
        Broker(Broker<NoProtocol>),
        Client(ClientNode),
    }

    impl Node<M> for TestNode {
        fn on_message(&mut self, env: Envelope<M>, ctx: &mut Context<M>) {
            match self {
                TestNode::Broker(b) => b.on_message(env, ctx),
                TestNode::Client(c) => c.on_message(env, ctx),
            }
        }
    }

    /// Build a 3×3 broker grid with `clients` clients, all subscribed to
    /// `group == 1`, attached round-robin.
    fn build(clients: usize) -> (Engine<M, TestNode>, AddressBook, Arc<Network>) {
        let network = Arc::new(Network::grid(3, 7));
        let book = AddressBook::new(9, clients);
        let fabric = Arc::new(GridFabric::paper_defaults(network.clone()));
        let filter = Filter::single("group", Op::Eq, 1i64);

        let mut brokers: Vec<Broker<NoProtocol>> = book
            .brokers()
            .map(|b| Broker::new(BrokerCore::new(b, book, network.clone(), true), NoProtocol))
            .collect();
        let mut client_nodes = Vec::new();
        for c in book.clients() {
            let home = BrokerId((c.0 as usize % 9) as u32);
            install_subscription(&mut brokers, &network, c, &filter, home, true);
            let mut node = ClientNode::new(c, book, filter.clone(), home);
            node.current_broker = Some(home);
            client_nodes.push(node);
        }
        let mut nodes: Vec<TestNode> = brokers.into_iter().map(TestNode::Broker).collect();
        nodes.extend(client_nodes.into_iter().map(TestNode::Client));
        (Engine::new(nodes, fabric), book, network)
    }

    fn publish_action(book: &AddressBook, publisher: ClientId, id: u64, group: i64) -> M {
        let _ = book;
        let event = crate::event::EventBuilder::new()
            .attr("group", group)
            .build(id, publisher, id);
        NetMsg::Action(ClientAction::Publish(event))
    }

    #[test]
    fn published_event_reaches_all_matching_subscribers() {
        let (mut eng, book, _net) = build(6);
        // Client 0 publishes a matching event; clients 1..6 must receive it,
        // client 0 itself must not.
        eng.schedule_external(
            SimTime::from_millis(1),
            book.client_node(ClientId(0)),
            publish_action(&book, ClientId(0), 100, 1),
        );
        eng.run_to_completion();
        for c in 1..6u32 {
            let node = eng.node(book.client_node(ClientId(c)));
            match node {
                TestNode::Client(cl) => {
                    assert_eq!(cl.received.len(), 1, "client {c} should get the event");
                }
                _ => unreachable!(),
            }
        }
        match eng.node(book.client_node(ClientId(0))) {
            TestNode::Client(cl) => {
                assert!(cl.received.is_empty(), "publisher must not self-receive")
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn non_matching_event_is_not_delivered() {
        let (mut eng, book, _net) = build(4);
        eng.schedule_external(
            SimTime::from_millis(1),
            book.client_node(ClientId(0)),
            publish_action(&book, ClientId(0), 101, 99),
        );
        eng.run_to_completion();
        for c in 1..4u32 {
            match eng.node(book.client_node(ClientId(c))) {
                TestNode::Client(cl) => assert!(cl.received.is_empty()),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn event_routing_uses_overlay_tree_only() {
        let (mut eng, book, net) = build(9 * 2);
        eng.schedule_external(
            SimTime::from_millis(1),
            book.client_node(ClientId(0)),
            publish_action(&book, ClientId(0), 7, 1),
        );
        eng.run_to_completion();
        // Every Forward hop is a single tree edge (1 grid hop because the MST
        // uses grid edges), so hops == messages for the forward class.
        let stats = eng.stats();
        let fwd = stats.kind("forward");
        assert!(fwd.messages > 0);
        assert_eq!(fwd.messages, fwd.hops, "tree edges are single grid hops");
        // The tree has broker_count-1 edges; a broadcast traverses each at
        // most once.
        assert!(fwd.messages <= (net.broker_count() - 1) as u64);
        assert_eq!(stats.class(TrafficClass::MobilityControl).messages, 0);
    }

    #[test]
    fn subscription_install_points_toward_root() {
        let network = Arc::new(Network::grid(3, 7));
        let book = AddressBook::new(9, 1);
        let filter = Filter::single("group", Op::Eq, 2i64);
        let mut brokers: Vec<Broker<NoProtocol>> = book
            .brokers()
            .map(|b| Broker::new(BrokerCore::new(b, book, network.clone(), true), NoProtocol))
            .collect();
        install_subscription(
            &mut brokers,
            &network,
            ClientId(0),
            &filter,
            BrokerId(4),
            true,
        );
        // The root broker has a client entry.
        assert!(brokers[4]
            .core
            .filters
            .contains(Peer::Client(ClientId(0)), &filter));
        assert!(brokers[4].core.is_connected(ClientId(0)));
        // Every other broker has exactly one entry pointing at its next hop
        // toward broker 4.
        for b in book.brokers().filter(|b| *b != BrokerId(4)) {
            let next = BrokerId(network.next_hop(b.index(), 4) as u32);
            assert!(brokers[b.index()]
                .core
                .filters
                .contains(Peer::Broker(next), &filter));
        }
    }

    #[test]
    fn live_subscribe_via_messages_matches_static_install() {
        // A client that connects "for real" (initial Connect message) must
        // end up routable from everywhere: a publish from any other broker
        // reaches it.
        let network = Arc::new(Network::grid(3, 11));
        let book = AddressBook::new(9, 2);
        let fabric = Arc::new(GridFabric::paper_defaults(network.clone()));
        let filter = Filter::single("group", Op::Eq, 5i64);
        let brokers: Vec<Broker<NoProtocol>> = book
            .brokers()
            .map(|b| Broker::new(BrokerCore::new(b, book, network.clone(), true), NoProtocol))
            .collect();
        let mut c0 = ClientNode::new(ClientId(0), book, filter.clone(), BrokerId(0));
        let c1 = ClientNode::new(ClientId(1), book, filter.clone(), BrokerId(8));
        c0.current_broker = None;
        let mut nodes: Vec<TestNode> = brokers.into_iter().map(TestNode::Broker).collect();
        nodes.push(TestNode::Client(c0));
        nodes.push(TestNode::Client(c1));
        let mut eng = Engine::new(nodes, fabric);
        // Client 0 attaches at broker 0 at t=0 (initial connect).
        eng.schedule_external(
            SimTime::ZERO,
            book.client_node(ClientId(0)),
            NetMsg::Action(ClientAction::Reconnect {
                broker: BrokerId(0),
            }),
        );
        // Client 1 (attached statically? no - it must attach too).
        eng.schedule_external(
            SimTime::ZERO,
            book.client_node(ClientId(1)),
            NetMsg::Action(ClientAction::Reconnect {
                broker: BrokerId(8),
            }),
        );
        // Give the subscription time to propagate, then publish from client 1.
        let event =
            crate::event::EventBuilder::new()
                .attr("group", 5i64)
                .build(900, ClientId(1), 0);
        eng.schedule_external(
            SimTime::from_secs(5),
            book.client_node(ClientId(1)),
            NetMsg::Action(ClientAction::Publish(event)),
        );
        eng.run_to_completion();
        match eng.node(book.client_node(ClientId(0))) {
            TestNode::Client(c) => assert_eq!(c.received.len(), 1),
            _ => unreachable!(),
        }
    }

    #[test]
    fn covering_suppresses_duplicate_propagation() {
        // Two clients at the same broker with identical filters: the second
        // subscription must not generate another propagation wave.
        let network = Arc::new(Network::grid(3, 1));
        let book = AddressBook::new(9, 2);
        let fabric = Arc::new(GridFabric::paper_defaults(network.clone()));
        let filter = Filter::single("group", Op::Eq, 1i64);
        let brokers: Vec<Broker<NoProtocol>> = book
            .brokers()
            .map(|b| Broker::new(BrokerCore::new(b, book, network.clone(), true), NoProtocol))
            .collect();
        let c0 = ClientNode::new(ClientId(0), book, filter.clone(), BrokerId(0));
        let c1 = ClientNode::new(ClientId(1), book, filter.clone(), BrokerId(0));
        let mut nodes: Vec<TestNode> = brokers.into_iter().map(TestNode::Broker).collect();
        nodes.push(TestNode::Client(c0));
        nodes.push(TestNode::Client(c1));
        let mut eng = Engine::new(nodes, fabric);
        eng.schedule_external(
            SimTime::ZERO,
            book.client_node(ClientId(0)),
            NetMsg::Action(ClientAction::Reconnect {
                broker: BrokerId(0),
            }),
        );
        eng.run_to_completion();
        let first_wave = eng.stats().kind("sub_propagate").messages;
        assert_eq!(first_wave, 8, "first subscription floods the 9-broker tree");
        eng.schedule_external(
            eng.now(),
            book.client_node(ClientId(1)),
            NetMsg::Action(ClientAction::Reconnect {
                broker: BrokerId(0),
            }),
        );
        eng.run_to_completion();
        let second_wave = eng.stats().kind("sub_propagate").messages;
        assert_eq!(
            second_wave, first_wave,
            "identical covered subscription must not propagate again"
        );
    }
}
