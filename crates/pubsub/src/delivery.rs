//! Delivery auditing.
//!
//! The paper claims MHH (and sub-unsub) guarantee *exactly-once, ordered*
//! delivery to mobile clients, while home-broker "may incur the loss of some
//! events during a handoff process". This module turns those claims into
//! measurable quantities over the logs a simulation run produces:
//!
//! * **lost** — events a subscriber should have received but that are neither
//!   delivered nor still buffered anywhere at the end of the run,
//! * **duplicates** — extra copies delivered,
//! * **out-of-order** — deliveries violating per-publisher order,
//! * **pending** — matching events still sitting in a protocol queue
//!   (the client simply had not reconnected yet; not a protocol fault).

use std::collections::{BTreeMap, BTreeSet};

use crate::address::ClientId;
use crate::client::DeliveryRecord;
use crate::event::{Event, EventId};
use crate::filter::Filter;

/// The result of auditing one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeliveryAudit {
    /// Total (subscriber, matching event) pairs that should eventually be
    /// delivered.
    pub expected: u64,
    /// Distinct (subscriber, event) deliveries observed.
    pub delivered: u64,
    /// Extra copies delivered beyond the first.
    pub duplicates: u64,
    /// Matching events still buffered in some protocol queue at the end of
    /// the run.
    pub pending: u64,
    /// Matching events that are neither delivered nor buffered: real loss.
    pub lost: u64,
    /// Per-publisher order violations observed in delivery logs.
    pub out_of_order: u64,
}

impl DeliveryAudit {
    /// True when the run satisfied exactly-once, ordered delivery
    /// (pending events are allowed — they are not lost).
    pub fn is_reliable(&self) -> bool {
        self.lost == 0 && self.duplicates == 0 && self.out_of_order == 0
    }

    /// Fraction of expected deliveries that were lost.
    pub fn loss_rate(&self) -> f64 {
        if self.expected == 0 {
            0.0
        } else {
            self.lost as f64 / self.expected as f64
        }
    }
}

/// One subscriber's view needed by the audit.
#[derive(Debug, Clone)]
pub struct SubscriberLog<'a> {
    /// The subscriber.
    pub client: ClientId,
    /// Its subscription.
    pub filter: &'a Filter,
    /// Every delivery it received, in arrival order.
    pub deliveries: &'a [DeliveryRecord],
}

/// Audit a run.
///
/// * `published` — every event actually handed to a broker by a publisher;
/// * `subscribers` — each subscriber with its filter and delivery log;
/// * `buffered` — events still held in protocol queues at the end of the
///   run, as `(client, event id)` pairs.
pub fn audit(
    published: &[Event],
    subscribers: &[SubscriberLog<'_>],
    buffered: &[(ClientId, EventId)],
) -> DeliveryAudit {
    let mut buffered_by_client: BTreeMap<ClientId, BTreeSet<EventId>> = BTreeMap::new();
    for (c, e) in buffered {
        buffered_by_client.entry(*c).or_default().insert(*e);
    }

    let mut result = DeliveryAudit::default();

    for sub in subscribers {
        // What this subscriber should get: every published event matching its
        // filter, except its own publications (reverse path forwarding never
        // returns an event to its source).
        let expected: BTreeSet<EventId> = published
            .iter()
            .filter(|e| e.publisher != sub.client && sub.filter.matches(e))
            .map(|e| e.id)
            .collect();
        result.expected += expected.len() as u64;

        // Count deliveries and duplicates.
        let mut seen: BTreeSet<EventId> = BTreeSet::new();
        for d in sub.deliveries {
            if !seen.insert(d.event) {
                result.duplicates += 1;
            }
        }
        let delivered_expected = expected.intersection(&seen).count() as u64;
        result.delivered += delivered_expected;

        // Classify the remainder as pending or lost.
        let empty = BTreeSet::new();
        let buffered_here = buffered_by_client.get(&sub.client).unwrap_or(&empty);
        for missing in expected.difference(&seen) {
            if buffered_here.contains(missing) {
                result.pending += 1;
            } else {
                result.lost += 1;
            }
        }

        // Per-publisher ordering: the sequence numbers delivered from one
        // publisher must be strictly increasing in delivery order.
        let mut last_seq: BTreeMap<ClientId, u64> = BTreeMap::new();
        let mut dup_guard: BTreeSet<EventId> = BTreeSet::new();
        for d in sub.deliveries {
            if !dup_guard.insert(d.event) {
                continue; // duplicates already counted; don't double-count order
            }
            if let Some(&prev) = last_seq.get(&d.publisher) {
                if d.seq <= prev {
                    result.out_of_order += 1;
                }
            }
            last_seq.insert(d.publisher, d.seq);
        }
    }

    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventBuilder;
    use crate::filter::Op;
    use mhh_simnet::SimTime;

    fn ev(id: u64, publisher: u32, seq: u64, group: i64) -> Event {
        EventBuilder::new()
            .attr("group", group)
            .build(id, ClientId(publisher), seq)
    }

    fn delivery(id: u64, publisher: u32, seq: u64, at_ms: u64) -> DeliveryRecord {
        DeliveryRecord {
            at: SimTime::from_millis(at_ms),
            event: EventId(id),
            publisher: ClientId(publisher),
            seq,
            published_at: SimTime::ZERO,
        }
    }

    #[test]
    fn perfect_run_is_reliable() {
        let published = vec![ev(1, 9, 0, 1), ev(2, 9, 1, 1), ev(3, 9, 2, 2)];
        let filter = Filter::single("group", Op::Eq, 1i64);
        let deliveries = vec![delivery(1, 9, 0, 10), delivery(2, 9, 1, 20)];
        let subs = [SubscriberLog {
            client: ClientId(0),
            filter: &filter,
            deliveries: &deliveries,
        }];
        let audit = audit(&published, &subs, &[]);
        assert_eq!(audit.expected, 2);
        assert_eq!(audit.delivered, 2);
        assert!(audit.is_reliable());
        assert_eq!(audit.loss_rate(), 0.0);
    }

    #[test]
    fn missing_event_is_lost_unless_buffered() {
        let published = vec![ev(1, 9, 0, 1), ev(2, 9, 1, 1)];
        let filter = Filter::single("group", Op::Eq, 1i64);
        let deliveries = vec![delivery(1, 9, 0, 10)];
        let subs = [SubscriberLog {
            client: ClientId(0),
            filter: &filter,
            deliveries: &deliveries,
        }];
        let lost = audit(&published, &subs, &[]);
        assert_eq!(lost.lost, 1);
        assert!(!lost.is_reliable());
        assert!(lost.loss_rate() > 0.0);

        let pending = audit(&published, &subs, &[(ClientId(0), EventId(2))]);
        assert_eq!(pending.lost, 0);
        assert_eq!(pending.pending, 1);
        assert!(pending.is_reliable());
    }

    #[test]
    fn duplicates_are_counted() {
        let published = vec![ev(1, 9, 0, 1)];
        let filter = Filter::single("group", Op::Eq, 1i64);
        let deliveries = vec![delivery(1, 9, 0, 10), delivery(1, 9, 0, 20)];
        let subs = [SubscriberLog {
            client: ClientId(0),
            filter: &filter,
            deliveries: &deliveries,
        }];
        let a = audit(&published, &subs, &[]);
        assert_eq!(a.duplicates, 1);
        assert_eq!(a.delivered, 1);
        assert!(!a.is_reliable());
    }

    #[test]
    fn out_of_order_detected_per_publisher() {
        let published = vec![ev(1, 9, 0, 1), ev(2, 9, 1, 1), ev(3, 7, 0, 1)];
        let filter = Filter::single("group", Op::Eq, 1i64);
        // Publisher 9's events delivered in reverse order; publisher 7 fine.
        let deliveries = vec![
            delivery(2, 9, 1, 10),
            delivery(1, 9, 0, 20),
            delivery(3, 7, 0, 30),
        ];
        let subs = [SubscriberLog {
            client: ClientId(0),
            filter: &filter,
            deliveries: &deliveries,
        }];
        let a = audit(&published, &subs, &[]);
        assert_eq!(a.out_of_order, 1);
        assert!(!a.is_reliable());
    }

    #[test]
    fn own_publications_are_not_expected() {
        let published = vec![ev(1, 0, 0, 1)];
        let filter = Filter::single("group", Op::Eq, 1i64);
        let subs = [SubscriberLog {
            client: ClientId(0),
            filter: &filter,
            deliveries: &[],
        }];
        let a = audit(&published, &subs, &[]);
        assert_eq!(a.expected, 0);
        assert!(a.is_reliable());
    }

    #[test]
    fn non_matching_events_are_not_expected() {
        let published = vec![ev(1, 9, 0, 2)];
        let filter = Filter::single("group", Op::Eq, 1i64);
        let subs = [SubscriberLog {
            client: ClientId(0),
            filter: &filter,
            deliveries: &[],
        }];
        assert_eq!(audit(&published, &subs, &[]).expected, 0);
    }
}
