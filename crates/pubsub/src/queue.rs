//! Event queues.
//!
//! Section 4 of the paper defines two queue types:
//!
//! > "1) Persistent Queue (PQ): to store potentially large number of events
//! > for a considerably long period; 2) Temporary Queue (TQ): to temporarily
//! > store events during the handoff period."
//!
//! Both are FIFO event buffers; the distinction matters for protocol
//! bookkeeping (a broker keeps at most one PQ chain element per client plus
//! at most one TQ per in-flight handoff), so the queue carries its kind and a
//! unique [`PqId`] used by the distributed PQ-list of Section 4.3.

use std::collections::VecDeque;
use std::fmt;

use crate::address::{BrokerId, ClientId};
use crate::event::Event;

/// Whether a queue is persistent or temporary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Long-lived storage for a disconnected client.
    Persistent,
    /// Short-lived capture of in-transit events during a handoff.
    Temporary,
}

/// Identity of a queue inside the distributed PQ-list: the broker holding it
/// plus a per-client monotonically increasing sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PqId {
    /// The broker that owns the queue.
    pub broker: BrokerId,
    /// The client the queue belongs to.
    pub client: ClientId,
    /// Creation sequence number (unique per client).
    pub seq: u32,
}

impl fmt::Display for PqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PQ{}@{}/{}", self.seq, self.broker, self.client)
    }
}

/// A FIFO buffer of events for one client.
#[derive(Debug, Clone)]
pub struct EventQueue {
    /// Identity of the queue (used by the PQ-list).
    pub id: PqId,
    /// Persistent or temporary.
    pub kind: QueueKind,
    events: VecDeque<Event>,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new(id: PqId, kind: QueueKind) -> Self {
        EventQueue {
            id,
            kind,
            events: VecDeque::new(),
        }
    }

    /// Append an event.
    pub fn push(&mut self, event: Event) {
        self.events.push_back(event);
    }

    /// Remove and return the oldest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.events.pop_front()
    }

    /// Peek at the oldest event.
    pub fn front(&self) -> Option<&Event> {
        self.events.front()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drain all events in FIFO order.
    pub fn drain(&mut self) -> Vec<Event> {
        self.events.drain(..).collect()
    }

    /// Iterate without consuming.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Append all events of another queue (used when concatenating a TQ onto
    /// a PQ, Section 4.2: "it just appends the in-transit events [...] to the
    /// end of PQ1").
    pub fn append(&mut self, other: &mut EventQueue) {
        self.events.append(&mut other.events);
    }

    /// Merge a batch of events into this queue, dropping events already
    /// present (by id), then re-sort the whole queue by
    /// `(publisher, per-publisher sequence)` groups while keeping global
    /// publication-time order. This is the merge step of the *sub-unsub*
    /// baseline ("merge the events in the two queues, delete the duplicated
    /// events, sort them into correct order").
    pub fn merge_dedup_sorted(&mut self, incoming: Vec<Event>) {
        let mut all: Vec<Event> = self.events.drain(..).collect();
        for e in incoming {
            if !all.iter().any(|x| x.id == e.id) {
                all.push(e);
            }
        }
        // Publication time is a total order consistent with per-publisher
        // sequence numbers (a publisher publishes one event at a time), so
        // sorting by it restores publisher order; ties broken by id for
        // determinism.
        all.sort_by_key(|e| (e.published_at, e.id));
        self.events = all.into();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventBuilder;
    use mhh_simnet::SimTime;

    fn pq_id(seq: u32) -> PqId {
        PqId {
            broker: BrokerId(1),
            client: ClientId(2),
            seq,
        }
    }

    fn ev(id: u64, publisher: u32, seq: u64, at_ms: u64) -> Event {
        EventBuilder::new()
            .attr("group", 1i64)
            .build(id, ClientId(publisher), seq)
            .stamped(SimTime::from_millis(at_ms))
    }

    #[test]
    fn fifo_order() {
        let mut q = EventQueue::new(pq_id(0), QueueKind::Persistent);
        q.push(ev(1, 0, 0, 1));
        q.push(ev(2, 0, 1, 2));
        q.push(ev(3, 0, 2, 3));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().id.0, 1);
        assert_eq!(q.front().unwrap().id.0, 2);
        assert_eq!(
            q.drain().iter().map(|e| e.id.0).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn append_concatenates_in_order() {
        let mut pq = EventQueue::new(pq_id(0), QueueKind::Persistent);
        let mut tq = EventQueue::new(pq_id(1), QueueKind::Temporary);
        pq.push(ev(1, 0, 0, 1));
        tq.push(ev(2, 0, 1, 2));
        tq.push(ev(3, 0, 2, 3));
        pq.append(&mut tq);
        assert!(tq.is_empty());
        assert_eq!(pq.iter().map(|e| e.id.0).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn merge_dedup_sorted_removes_duplicates_and_orders() {
        let mut q = EventQueue::new(pq_id(0), QueueKind::Persistent);
        q.push(ev(10, 0, 0, 100));
        q.push(ev(12, 0, 2, 300));
        // Incoming overlaps (id 12) and interleaves (id 11 at t=200).
        q.merge_dedup_sorted(vec![ev(12, 0, 2, 300), ev(11, 0, 1, 200), ev(13, 1, 0, 50)]);
        let ids: Vec<u64> = q.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![13, 10, 11, 12]);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn merge_preserves_per_publisher_order() {
        let mut q = EventQueue::new(pq_id(0), QueueKind::Persistent);
        q.push(ev(1, 7, 0, 10));
        q.push(ev(3, 7, 2, 30));
        q.merge_dedup_sorted(vec![ev(2, 7, 1, 20), ev(4, 7, 3, 40)]);
        let seqs: Vec<u64> = q
            .iter()
            .filter(|e| e.publisher == ClientId(7))
            .map(|e| e.seq)
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    #[test]
    fn pq_id_display() {
        assert_eq!(format!("{}", pq_id(4)), "PQ4@B1/C2");
    }
}
