//! The *sub-unsub* baseline protocol.
//!
//! Paper, Section 2: when a client reconnects at a new broker it re-issues
//! its subscription there while the old broker keeps the old subscription
//! (and keeps storing events). After a pre-defined period — long enough for
//! the new subscription to be known by every broker — the old subscription is
//! cancelled, the stored queue is transferred to the new broker, duplicates
//! are removed, events are sorted back into order and finally delivered.
//!
//! The two weaknesses the paper calls out fall straight out of this
//! structure: the client cannot receive anything until the *whole* handoff
//! completes (delay governed by the maximum broker-to-broker delivery time),
//! and when the client moves frequently the stored bulk is transferred again
//! and again between brokers.

use std::collections::{BTreeMap, BTreeSet};

use mhh_pubsub::broker::{BrokerCore, BrokerCtx, MobilityProtocol};
use mhh_pubsub::{
    BrokerId, ClientId, ConnectInfo, Event, EventQueue, Filter, Peer, ProtocolMessage, QueueKind,
};
use mhh_simnet::{SimDuration, TrafficClass};

/// Sub-unsub protocol messages.
#[derive(Debug, Clone)]
pub enum SuMsg {
    /// Self-timer: the safety interval after re-subscribing has elapsed.
    WaitTimer {
        /// The client whose handoff the timer belongs to.
        client: ClientId,
    },
    /// Ask the old broker to cancel the client's subscription and transfer
    /// its stored queue to the sender.
    FetchQueue {
        /// The client being handed off.
        client: ClientId,
        /// The client's filter (so the old broker can unsubscribe it).
        filter: Filter,
    },
    /// The stored queue (or a segment of it) transferred to the new broker
    /// as one network message.
    QueueTransfer {
        /// The client the events belong to.
        client: ClientId,
        /// The transferred events, oldest first.
        events: Vec<Event>,
    },
    /// The stored queue has been fully transferred.
    QueueTransferDone {
        /// The client being handed off.
        client: ClientId,
    },
    /// Flooded notice making the client's new subscription location (or the
    /// cancellation of the old one) known to **all** brokers — the protocol's
    /// defining requirement ("the system ensures that the client's
    /// subscription on the new broker is made known to all other brokers").
    LocationNotice {
        /// The client whose subscription state changed.
        client: ClientId,
        /// True when the notice announces the cancellation at the old broker.
        cancellation: bool,
    },
    /// The honest proclaimed-move (§4.1) equivalent for this protocol: the
    /// departure broker tells the *announced destination* to start the
    /// handoff right away — re-subscribe there, run the safety interval and
    /// fetch the stored queue while the client is still in transit. The
    /// protocol's rules are unchanged (subscribe first, wait, then cancel
    /// and shuttle); only the trigger moves from the client's reconnection
    /// to its departure, so the wait is paid during the disconnection gap.
    PreSubscribe {
        /// The client that proclaimed the move.
        client: ClientId,
        /// Its subscription (the destination has never seen it).
        filter: Filter,
        /// The departure broker holding the stored queue.
        old_broker: BrokerId,
    },
}

impl ProtocolMessage for SuMsg {
    fn kind(&self) -> &'static str {
        match self {
            SuMsg::WaitTimer { .. } => "su_wait_timer",
            SuMsg::FetchQueue { .. } => "su_fetch_queue",
            SuMsg::QueueTransfer { .. } => "su_queue_transfer",
            SuMsg::QueueTransferDone { .. } => "su_queue_done",
            SuMsg::LocationNotice { .. } => "su_location_notice",
            SuMsg::PreSubscribe { .. } => "su_pre_subscribe",
        }
    }
    fn traffic_class(&self) -> TrafficClass {
        match self {
            SuMsg::QueueTransfer { .. } => TrafficClass::MobilityTransfer,
            _ => TrafficClass::MobilityControl,
        }
    }
}

/// An in-progress handoff at the *new* broker.
#[derive(Debug, Clone)]
struct Handoff {
    old_broker: BrokerId,
    /// Events arriving at the new broker while the handoff runs.
    buffer: EventQueue,
    /// Events transferred from the old broker.
    incoming: Vec<Event>,
    /// Whether the client is still attached here.
    client_connected: bool,
}

/// Per-client state at one broker.
#[derive(Debug, Clone, Default)]
struct SuClient {
    filter: Filter,
    /// Ids of events already handed to the client from this broker. During
    /// the overlap window both the old and the new subscription are active,
    /// so the same event can reach the new broker along two tree paths; the
    /// edge broker removes such duplicates ("delete the duplicated events").
    delivered: BTreeSet<mhh_pubsub::EventId>,
    /// Stored events while the client is disconnected from this broker (this
    /// broker still holds its subscription).
    store: Option<EventQueue>,
    /// Handoff in progress with this broker as the destination.
    handoff: Option<Handoff>,
    /// A newer broker asked for the queue while our own handoff was still
    /// completing; served as soon as it does.
    pending_fetch: Option<BrokerId>,
    /// A proclaimed arrival was announced while our own inbound handoff was
    /// still completing; the next handoff (fetching from this broker) starts
    /// as soon as it does.
    pending_presub: Option<BrokerId>,
}

/// The sub-unsub protocol.
#[derive(Debug, Clone)]
pub struct SubUnsub {
    /// The safety interval between re-subscribing and unsubscribing: "the
    /// maximum time for message delivery between any two stations in the
    /// network" (paper, Section 5.1).
    wait: SimDuration,
    clients: BTreeMap<ClientId, SuClient>,
}

impl SubUnsub {
    /// Create the protocol with the given safety interval.
    pub fn new(wait: SimDuration) -> Self {
        SubUnsub {
            wait,
            clients: BTreeMap::new(),
        }
    }

    /// The configured safety interval.
    pub fn wait(&self) -> SimDuration {
        self.wait
    }

    fn entry(&mut self, client: ClientId, filter: &Filter) -> &mut SuClient {
        let e = self.clients.entry(client).or_default();
        if !filter.is_empty() {
            e.filter = filter.clone();
        }
        e
    }

    /// Flood a subscription-location notice over the overlay tree (to every
    /// broker except the one the notice came from, if any). On an acyclic
    /// overlay this visits each broker exactly once, i.e. it costs N-1
    /// messages per notice — the intrinsic price of the sub-unsub design.
    fn flood_notice(
        core: &BrokerCore,
        client: ClientId,
        cancellation: bool,
        from: Option<BrokerId>,
        ctx: &mut BrokerCtx<'_, SuMsg>,
    ) {
        for nb in core.neighbors() {
            if Some(nb) == from {
                continue;
            }
            ctx.send_protocol(
                nb,
                SuMsg::LocationNotice {
                    client,
                    cancellation,
                },
            );
        }
    }

    /// Deliver an event to the attached client unless this broker already
    /// delivered it (the duplicate-suppression step of the protocol).
    fn deliver_once(
        st: &mut SuClient,
        core: &mut BrokerCore,
        client: ClientId,
        event: Event,
        ctx: &mut BrokerCtx<'_, SuMsg>,
    ) {
        if st.delivered.insert(event.id) {
            core.deliver(client, event, ctx);
        }
    }

    /// Start a handoff with this broker as the destination: re-subscribe
    /// here (a mobility wave + flooded notice), open the handoff buffer and
    /// arm the safety timer. Shared by the reactive trigger (the client's
    /// reconnection) and the proclaimed trigger (a [`SuMsg::PreSubscribe`]
    /// from the departure broker).
    fn begin_handoff(
        st: &mut SuClient,
        core: &mut BrokerCore,
        client: ClientId,
        old_broker: BrokerId,
        wait: SimDuration,
        ctx: &mut BrokerCtx<'_, SuMsg>,
    ) {
        let filter = st.filter.clone();
        core.apply_subscribe(Peer::Client(client), filter, true, ctx);
        Self::flood_notice(core, client, false, None, ctx);
        st.handoff = Some(Handoff {
            old_broker,
            buffer: EventQueue::new(core.alloc_pq_id(client), QueueKind::Temporary),
            incoming: Vec::new(),
            client_connected: core.is_connected(client),
        });
        ctx.schedule_protocol(wait, SuMsg::WaitTimer { client });
    }

    /// Finish a handoff at the new broker: merge, dedupe, sort, deliver.
    fn complete_handoff(
        st: &mut SuClient,
        core: &mut BrokerCore,
        client: ClientId,
        wait: SimDuration,
        ctx: &mut BrokerCtx<'_, SuMsg>,
    ) {
        let Some(handoff) = st.handoff.take() else {
            return;
        };
        let mut merged = handoff.buffer;
        merged.merge_dedup_sorted(handoff.incoming);
        if handoff.client_connected && core.is_connected(client) {
            for ev in merged.drain() {
                Self::deliver_once(st, core, client, ev, ctx);
            }
        } else {
            // The client left again before the handoff finished: the merged
            // queue becomes this broker's stored queue, and it will be
            // shuttled onward when the next handoff asks for it — exactly the
            // frequent-moving weakness of this protocol.
            match st.store.as_mut() {
                Some(store) => store.merge_dedup_sorted(merged.drain()),
                None => st.store = Some(merged),
            }
        }
        if let Some(next_broker) = st.pending_fetch.take() {
            Self::serve_fetch(st, core, client, next_broker, ctx);
        }
        if let Some(old_broker) = st.pending_presub.take() {
            // A proclaimed arrival queued up behind the handoff that just
            // finished: chain straight into the next one.
            Self::begin_handoff(st, core, client, old_broker, wait, ctx);
        }
    }

    /// Serve a `FetchQueue`: unsubscribe the client here and stream the
    /// stored queue to the requesting broker.
    fn serve_fetch(
        st: &mut SuClient,
        core: &mut BrokerCore,
        client: ClientId,
        dest: BrokerId,
        ctx: &mut BrokerCtx<'_, SuMsg>,
    ) {
        if st.handoff.is_some() {
            // Our own inbound handoff has not finished; defer.
            st.pending_fetch = Some(dest);
            return;
        }
        let filter = st.filter.clone();
        core.apply_unsubscribe(Peer::Client(client), filter, true, ctx);
        Self::flood_notice(core, client, true, None, ctx);
        if let Some(mut store) = st.store.take() {
            let events = store.drain();
            if !events.is_empty() {
                ctx.send_protocol(dest, SuMsg::QueueTransfer { client, events });
            }
        }
        ctx.send_protocol(dest, SuMsg::QueueTransferDone { client });
    }
}

impl MobilityProtocol for SubUnsub {
    type Msg = SuMsg;

    fn name(&self) -> &'static str {
        "sub-unsub"
    }

    fn on_client_connect(
        &mut self,
        core: &mut BrokerCore,
        info: ConnectInfo,
        ctx: &mut BrokerCtx<'_, SuMsg>,
    ) {
        let client = info.client;
        let wait = self.wait;
        let st = self.entry(client, &info.filter);

        match info.last_broker {
            Some(last) if last != core.id => {
                // Reactive (silent) move: re-issue the subscription here (a
                // mobility-caused wave) and start the safety timer;
                // everything arriving meanwhile is buffered so it can be
                // merged with the old queue later.
                Self::begin_handoff(st, core, client, last, wait, ctx);
            }
            _ => {
                // Reconnected where the subscription already roots — either
                // a bounce back to the same broker or a *proclaimed* arrival
                // (the client's last-broker pointer was redirected here when
                // it departed, and the PreSubscribe-triggered handoff has
                // been running since then). Deliver whatever is ready.
                if let Some(handoff) = st.handoff.as_mut() {
                    // Handoff still in flight: mark the client present;
                    // completion will deliver.
                    handoff.client_connected = true;
                } else if let Some(mut store) = st.store.take() {
                    for ev in store.drain() {
                        Self::deliver_once(st, core, client, ev, ctx);
                    }
                }
            }
        }
    }

    fn on_client_disconnect(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        filter: Filter,
        proclaimed_dest: Option<BrokerId>,
        ctx: &mut BrokerCtx<'_, SuMsg>,
    ) {
        let st = self.entry(client, &filter);
        let filter = st.filter.clone();
        if let Some(handoff) = st.handoff.as_mut() {
            handoff.client_connected = false;
        } else if st.store.is_none() {
            st.store = Some(EventQueue::new(
                core.alloc_pq_id(client),
                QueueKind::Persistent,
            ));
        }
        // Proclaimed move: tell the announced destination to start the
        // handoff now, so the safety interval runs during the disconnection
        // gap instead of after the reconnection.
        if let Some(dest) = proclaimed_dest {
            if dest != core.id {
                ctx.send_protocol(
                    dest,
                    SuMsg::PreSubscribe {
                        client,
                        filter,
                        old_broker: core.id,
                    },
                );
            }
        }
    }

    fn on_protocol_msg(
        &mut self,
        core: &mut BrokerCore,
        from: BrokerId,
        msg: SuMsg,
        ctx: &mut BrokerCtx<'_, SuMsg>,
    ) {
        match msg {
            SuMsg::WaitTimer { client } => {
                let Some(st) = self.clients.get_mut(&client) else {
                    return;
                };
                let Some(handoff) = st.handoff.as_ref() else {
                    return;
                };
                let filter = st.filter.clone();
                ctx.send_protocol(handoff.old_broker, SuMsg::FetchQueue { client, filter });
            }
            SuMsg::FetchQueue { client, filter } => {
                let st = self.entry(client, &filter);
                Self::serve_fetch(st, core, client, from, ctx);
            }
            SuMsg::QueueTransfer { client, events } => {
                let st = self.entry(client, &Filter::match_all());
                if let Some(handoff) = st.handoff.as_mut() {
                    handoff.incoming.extend(events);
                } else if let Some(store) = st.store.as_mut() {
                    for event in events {
                        store.push(event);
                    }
                } else if core.is_connected(client) {
                    for event in events {
                        Self::deliver_once(st, core, client, event, ctx);
                    }
                }
            }
            SuMsg::QueueTransferDone { client } => {
                let wait = self.wait;
                let Some(st) = self.clients.get_mut(&client) else {
                    return;
                };
                Self::complete_handoff(st, core, client, wait, ctx);
            }
            SuMsg::PreSubscribe {
                client,
                filter,
                old_broker,
            } => {
                let wait = self.wait;
                let st = self.entry(client, &filter);
                if old_broker == core.id {
                    return;
                }
                if st.handoff.is_some() {
                    // Our own inbound handoff is still completing (the
                    // client is oscillating faster than handoffs finish);
                    // start the proclaimed one as soon as it does.
                    st.pending_presub = Some(old_broker);
                    return;
                }
                Self::begin_handoff(st, core, client, old_broker, wait, ctx);
            }
            SuMsg::LocationNotice {
                client,
                cancellation,
            } => {
                Self::flood_notice(core, client, cancellation, Some(from), ctx);
            }
        }
    }

    fn on_client_event(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        event: Event,
        _from: Peer,
        ctx: &mut BrokerCtx<'_, SuMsg>,
    ) {
        let connected = core.is_connected(client);
        let Some(st) = self.clients.get_mut(&client) else {
            if connected {
                core.deliver(client, event, ctx);
            }
            return;
        };
        if let Some(handoff) = st.handoff.as_mut() {
            handoff.buffer.push(event);
            return;
        }
        if let Some(store) = st.store.as_mut() {
            store.push(event);
            return;
        }
        if connected {
            Self::deliver_once(st, core, client, event, ctx);
        }
    }

    fn buffered_events(&self) -> Vec<(ClientId, Event)> {
        let mut out = Vec::new();
        for (c, st) in &self.clients {
            if let Some(store) = &st.store {
                out.extend(store.iter().cloned().map(|e| (*c, e)));
            }
            if let Some(h) = &st.handoff {
                out.extend(h.buffer.iter().cloned().map(|e| (*c, e)));
                out.extend(h.incoming.iter().cloned().map(|e| (*c, e)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhh_pubsub::delivery::{audit, SubscriberLog};
    use mhh_pubsub::event::EventBuilder;
    use mhh_pubsub::{ClientAction, ClientSpec, Deployment, DeploymentConfig, Op};
    use mhh_simnet::SimTime;

    fn filter(group: i64) -> Filter {
        Filter::single("group", Op::Eq, group)
    }

    fn build(side: usize, wait_ms: u64) -> Deployment<SubUnsub> {
        let clients = vec![
            ClientSpec {
                filter: filter(1),
                home: BrokerId(0),
                mobile: true,
                initially_attached: true,
            },
            ClientSpec {
                filter: filter(2),
                home: BrokerId(((side * side) / 2) as u32),
                mobile: false,
                initially_attached: true,
            },
            ClientSpec {
                filter: filter(1),
                home: BrokerId((side * side - 1) as u32),
                mobile: false,
                initially_attached: true,
            },
        ];
        let config = DeploymentConfig {
            grid_side: side,
            seed: 5,
            ..DeploymentConfig::default()
        };
        Deployment::build(&config, &clients, |_| {
            SubUnsub::new(SimDuration::from_millis(wait_ms))
        })
    }

    fn schedule_publishes(dep: &mut Deployment<SubUnsub>, count: u64) {
        for i in 0..count {
            let ev = EventBuilder::new()
                .attr("group", 1i64)
                .build(1000 + i, ClientId(1), i);
            dep.schedule_publish(SimTime::from_millis(10 + i * 100), ClientId(1), ev);
        }
    }

    fn audit_group1(dep: &Deployment<SubUnsub>) -> mhh_pubsub::DeliveryAudit {
        let published: Vec<Event> = dep.clients().flat_map(|c| c.published.clone()).collect();
        let buffered = dep.buffered_events();
        let f = filter(1);
        let logs: Vec<(ClientId, Vec<mhh_pubsub::DeliveryRecord>)> = dep
            .clients()
            .filter(|c| c.filter == f)
            .map(|c| (c.id, c.received.clone()))
            .collect();
        let subs: Vec<SubscriberLog<'_>> = logs
            .iter()
            .map(|(id, recs)| SubscriberLog {
                client: *id,
                filter: &f,
                deliveries: recs,
            })
            .collect();
        audit(&published, &subs, &buffered)
    }

    #[test]
    fn silent_move_is_reliable_but_slower_than_direct() {
        let mut dep = build(4, 400);
        schedule_publishes(&mut dep, 60);
        dep.schedule(
            SimTime::from_millis(1_500),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(3_000),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(15),
            },
        );
        dep.engine.run_to_completion();
        let a = audit_group1(&dep);
        assert!(a.is_reliable(), "audit: {a:?}");
        let mobile = dep.client(ClientId(0));
        assert_eq!(mobile.handoff_count(), 1);
        let delays = mobile.handoff_delays();
        assert_eq!(delays.len(), 1);
        // The client cannot be served before the safety interval elapses.
        assert!(
            delays[0] >= 400.0,
            "delay {delays:?} must exceed the wait interval"
        );
    }

    #[test]
    fn duplicates_from_overlapping_subscriptions_are_removed() {
        // During the overlap both the old and the new broker receive matching
        // events; after the merge the client still sees each exactly once.
        let mut dep = build(4, 600);
        schedule_publishes(&mut dep, 80);
        dep.schedule(
            SimTime::from_millis(2_000),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(2_200),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(10),
            },
        );
        dep.engine.run_to_completion();
        let a = audit_group1(&dep);
        assert_eq!(a.duplicates, 0, "audit: {a:?}");
        assert_eq!(a.lost, 0, "audit: {a:?}");
        assert_eq!(a.out_of_order, 0, "audit: {a:?}");
    }

    #[test]
    fn frequent_moving_stays_reliable() {
        let mut dep = build(4, 500);
        schedule_publishes(&mut dep, 120);
        let hops = [5u32, 14, 3, 9];
        let mut t = 800u64;
        for b in hops {
            dep.schedule(
                SimTime::from_millis(t),
                ClientId(0),
                ClientAction::Disconnect {
                    proclaimed_dest: None,
                },
            );
            t += 150;
            dep.schedule(
                SimTime::from_millis(t),
                ClientId(0),
                ClientAction::Reconnect {
                    broker: BrokerId(b),
                },
            );
            t += 250;
        }
        dep.engine.run_to_completion();
        let a = audit_group1(&dep);
        assert_eq!(a.lost, 0, "audit: {a:?}");
        assert_eq!(a.duplicates, 0, "audit: {a:?}");
        assert_eq!(a.out_of_order, 0, "audit: {a:?}");
    }

    #[test]
    fn proclaimed_move_is_reliable_and_beats_the_safety_interval() {
        // Reactive and proclaimed runs of the same move: the proclaimed one
        // pays the safety interval during the 1.5 s disconnection gap, so
        // its post-reconnect first-delivery gap drops below the interval.
        let wait_ms = 400u64;
        let run = |proclaimed: bool| {
            let mut dep = build(4, wait_ms);
            schedule_publishes(&mut dep, 60);
            dep.schedule(
                SimTime::from_millis(1_500),
                ClientId(0),
                ClientAction::Disconnect {
                    proclaimed_dest: proclaimed.then_some(BrokerId(15)),
                },
            );
            dep.schedule(
                SimTime::from_millis(3_000),
                ClientId(0),
                ClientAction::Reconnect {
                    broker: BrokerId(15),
                },
            );
            dep.engine.run_to_completion();
            dep
        };

        let dep = run(true);
        let a = audit_group1(&dep);
        assert!(a.is_reliable(), "proclaimed audit: {a:?}");
        let mobile = dep.client(ClientId(0));
        assert_eq!(mobile.handoff_count(), 1, "proclaimed move is a handoff");
        let delays = mobile.handoff_delays();
        assert_eq!(delays.len(), 1);
        assert!(
            delays[0] < wait_ms as f64,
            "proclaimed delay {delays:?} must undercut the safety interval"
        );
        assert!(
            dep.engine.stats().kind("su_pre_subscribe").messages > 0,
            "the departure broker must announce the destination"
        );

        let reactive = run(false);
        let reactive_delay = reactive.client(ClientId(0)).handoff_delays()[0];
        assert!(
            delays[0] < reactive_delay,
            "proclaimed {} ms must beat reactive {} ms",
            delays[0],
            reactive_delay
        );
    }

    #[test]
    fn proclaimed_oscillation_chains_handoffs_reliably() {
        // Move every 150/250 ms with a 500 ms safety interval: proclaimed
        // handoffs overlap and must queue behind each other (pending
        // pre-subscribe) without losing, duplicating or reordering events.
        let mut dep = build(4, 500);
        schedule_publishes(&mut dep, 120);
        let hops = [5u32, 14, 3, 9];
        let mut t = 800u64;
        for b in hops {
            dep.schedule(
                SimTime::from_millis(t),
                ClientId(0),
                ClientAction::Disconnect {
                    proclaimed_dest: Some(BrokerId(b)),
                },
            );
            t += 150;
            dep.schedule(
                SimTime::from_millis(t),
                ClientId(0),
                ClientAction::Reconnect {
                    broker: BrokerId(b),
                },
            );
            t += 250;
        }
        dep.engine.run_to_completion();
        let a = audit_group1(&dep);
        assert_eq!(a.lost, 0, "audit: {a:?}");
        assert_eq!(a.duplicates, 0, "audit: {a:?}");
        assert_eq!(a.out_of_order, 0, "audit: {a:?}");
        assert_eq!(dep.client(ClientId(0)).handoff_count(), 4);
    }

    #[test]
    fn resubscription_wave_is_counted_as_mobility_overhead() {
        let mut dep = build(3, 300);
        schedule_publishes(&mut dep, 10);
        dep.schedule(
            SimTime::from_millis(200),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(400),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(8),
            },
        );
        dep.engine.run_to_completion();
        let stats = dep.engine.stats();
        assert!(stats.mobility_hops() > 0);
        assert!(
            stats.kind("sub_propagate").messages > 0 || stats.kind("su_fetch_queue").messages > 0
        );
    }
}
