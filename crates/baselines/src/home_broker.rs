//! The *home-broker* baseline protocol.
//!
//! Paper, Section 2: every client is assigned a home broker which holds its
//! subscription permanently (the Mobile-IP idea applied to pub/sub). When the
//! client attaches to a foreign broker, that broker registers the client's
//! current location with the home broker; the home broker forwards stored and
//! future events to the foreign broker (triangle routing). The protocol is
//! fast — a handoff is one registration round trip — but:
//!
//! * it is **not reliable**: events already in transit from the home broker
//!   to a foreign broker the client has just left are dropped, and
//! * all events for roaming clients detour through the home broker, so the
//!   traffic overhead grows with the network size.

use std::collections::BTreeMap;

use mhh_pubsub::broker::{BrokerCore, BrokerCtx, MobilityProtocol};
use mhh_pubsub::{
    BrokerId, ClientId, ConnectInfo, Event, EventQueue, Filter, Peer, ProtocolMessage, QueueKind,
};
use mhh_simnet::TrafficClass;

/// Home-broker protocol messages.
#[derive(Debug, Clone)]
pub enum HbMsg {
    /// A foreign broker tells the home broker where the client now is.
    Register {
        /// The roaming client.
        client: ClientId,
        /// The foreign broker it attached to.
        location: BrokerId,
    },
    /// A foreign broker tells the home broker the client detached.
    Deregister {
        /// The roaming client.
        client: ClientId,
        /// The foreign broker it detached from.
        location: BrokerId,
    },
    /// An event forwarded from the home broker to the client's current
    /// foreign broker (triangle routing).
    ForwardEvent {
        /// The roaming client.
        client: ClientId,
        /// The forwarded event.
        event: Event,
    },
    /// The honest proclaimed-move (§4.1) equivalent for this protocol: the
    /// departure broker relays the announced destination to the home broker,
    /// which re-targets its forwarding *before* the client arrives. Replaces
    /// the `Deregister` of a silent departure.
    HandoffAhead {
        /// The roaming client.
        client: ClientId,
        /// The destination broker the client proclaimed.
        location: BrokerId,
    },
    /// The home broker tells the announced destination to expect the client:
    /// events forwarded ahead of the client's arrival are buffered there
    /// instead of dropped. Sent on the same FIFO path as the forwards that
    /// follow it, so no new loss window opens.
    Expect {
        /// The roaming client about to arrive.
        client: ClientId,
    },
}

impl ProtocolMessage for HbMsg {
    fn kind(&self) -> &'static str {
        match self {
            HbMsg::Register { .. } => "hb_register",
            HbMsg::Deregister { .. } => "hb_deregister",
            HbMsg::ForwardEvent { .. } => "hb_forward",
            HbMsg::HandoffAhead { .. } => "hb_handoff_ahead",
            HbMsg::Expect { .. } => "hb_expect",
        }
    }
    fn traffic_class(&self) -> TrafficClass {
        match self {
            HbMsg::ForwardEvent { .. } => TrafficClass::MobilityTransfer,
            HbMsg::Register { .. }
            | HbMsg::Deregister { .. }
            | HbMsg::HandoffAhead { .. }
            | HbMsg::Expect { .. } => TrafficClass::MobilityControl,
        }
    }
}

/// Home-broker-side state for one client homed at this broker.
#[derive(Debug, Clone)]
struct HomeRecord {
    /// Where the client currently is (None: disconnected or at home).
    location: Option<BrokerId>,
    /// Events stored while the client has no registered location and is not
    /// attached at home.
    store: EventQueue,
}

/// The home-broker protocol.
#[derive(Debug, Clone, Default)]
pub struct HomeBroker {
    /// Clients homed at this broker.
    homed: BTreeMap<ClientId, HomeRecord>,
    /// Roaming clients currently attached to this (foreign) broker, with
    /// their home broker — needed to address the deregistration on detach.
    foreign: BTreeMap<ClientId, BrokerId>,
    /// Clients proclaimed to arrive here but not yet attached: events
    /// forwarded ahead of them are buffered in these queues and delivered
    /// on attachment.
    expected: BTreeMap<ClientId, EventQueue>,
}

impl HomeBroker {
    /// Create the protocol instance for one broker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current registered location of a homed client (tests and metrics).
    pub fn location_of(&self, client: ClientId) -> Option<BrokerId> {
        self.homed.get(&client).and_then(|r| r.location)
    }

    fn home_record(&mut self, core: &mut BrokerCore, client: ClientId) -> &mut HomeRecord {
        self.homed.entry(client).or_insert_with(|| HomeRecord {
            location: None,
            store: EventQueue::new(core.alloc_pq_id(client), QueueKind::Persistent),
        })
    }
}

impl MobilityProtocol for HomeBroker {
    type Msg = HbMsg;

    fn name(&self) -> &'static str {
        "home-broker"
    }

    fn on_client_connect(
        &mut self,
        core: &mut BrokerCore,
        info: ConnectInfo,
        ctx: &mut BrokerCtx<'_, HbMsg>,
    ) {
        let client = info.client;
        // A proclaimed arrival: deliver whatever was forwarded ahead of the
        // client first (it is the oldest backlog), then proceed normally.
        if let Some(mut q) = self.expected.remove(&client) {
            for ev in q.drain() {
                core.deliver(client, ev, ctx);
            }
        }
        if info.home_broker == core.id {
            // The client came home: deliver anything stored and stop
            // forwarding.
            let rec = self.home_record(core, client);
            rec.location = None;
            let stored: Vec<Event> = rec.store.drain();
            for ev in stored {
                core.deliver(client, ev, ctx);
            }
        } else {
            // Foreign broker: remember the home and register the new
            // location there.
            self.foreign.insert(client, info.home_broker);
            ctx.send_protocol(
                info.home_broker,
                HbMsg::Register {
                    client,
                    location: core.id,
                },
            );
        }
    }

    fn on_client_disconnect(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        _filter: Filter,
        proclaimed_dest: Option<BrokerId>,
        ctx: &mut BrokerCtx<'_, HbMsg>,
    ) {
        // A proclaimed destination other than this broker re-targets the
        // forwarding ahead of the client; a silent move (or a degenerate
        // proclamation back to this broker) takes the reactive path.
        let proclaimed = proclaimed_dest.filter(|d| *d != core.id);
        if let Some(home) = self.foreign.remove(&client) {
            match proclaimed {
                Some(dest) => {
                    // Detached from a foreign broker announcing the next
                    // one: the home broker starts forwarding there before
                    // the client arrives. Events already in flight toward
                    // *this* broker are still dropped on arrival — the
                    // protocol's inherent loss window is unchanged.
                    ctx.send_protocol(
                        home,
                        HbMsg::HandoffAhead {
                            client,
                            location: dest,
                        },
                    );
                }
                None => {
                    // Silent detach: stop the forwarding.
                    ctx.send_protocol(
                        home,
                        HbMsg::Deregister {
                            client,
                            location: core.id,
                        },
                    );
                }
            }
        } else if let Some(dest) = proclaimed {
            // Proclaimed departure from the client's own home broker: expect
            // it at the destination, then forward from here on (the Expect
            // precedes every forward on the same FIFO path).
            ctx.send_protocol(dest, HbMsg::Expect { client });
            let rec = self.home_record(core, client);
            rec.location = Some(dest);
            let stored: Vec<Event> = rec.store.drain();
            for ev in stored {
                ctx.send_protocol(dest, HbMsg::ForwardEvent { client, event: ev });
            }
        } else if let Some(rec) = self.homed.get_mut(&client) {
            // Disconnected while at home: keep storing locally.
            rec.location = None;
        } else {
            // Disconnected at home before ever roaming: create the store.
            let _ = self.home_record(core, client);
        }
    }

    fn on_protocol_msg(
        &mut self,
        core: &mut BrokerCore,
        _from: BrokerId,
        msg: HbMsg,
        ctx: &mut BrokerCtx<'_, HbMsg>,
    ) {
        match msg {
            HbMsg::Register { client, location } => {
                let rec = self.home_record(core, client);
                rec.location = Some(location);
                let stored: Vec<Event> = rec.store.drain();
                for ev in stored {
                    ctx.send_protocol(location, HbMsg::ForwardEvent { client, event: ev });
                }
            }
            HbMsg::Deregister { client, location } => {
                if let Some(rec) = self.homed.get_mut(&client) {
                    // Ignore stale deregistrations from a broker the client
                    // already left (it re-registered elsewhere meanwhile).
                    if rec.location == Some(location) {
                        rec.location = None;
                    }
                }
            }
            HbMsg::ForwardEvent { client, event } => {
                // A forwarded event arriving at a foreign broker: deliver if
                // the client is here, buffer if it was proclaimed to arrive,
                // otherwise it is lost (the paper's reliability gap).
                if core.is_connected(client) {
                    core.deliver(client, event, ctx);
                } else if let Some(q) = self.expected.get_mut(&client) {
                    q.push(event);
                }
            }
            HbMsg::HandoffAhead { client, location } => {
                if location == core.id {
                    // The client proclaimed it is coming home: keep storing
                    // here until it arrives (connect-at-home delivers).
                    let rec = self.home_record(core, client);
                    rec.location = None;
                } else {
                    // Expect first, forwards after, on the same FIFO path.
                    ctx.send_protocol(location, HbMsg::Expect { client });
                    let rec = self.home_record(core, client);
                    rec.location = Some(location);
                    let stored: Vec<Event> = rec.store.drain();
                    for ev in stored {
                        ctx.send_protocol(location, HbMsg::ForwardEvent { client, event: ev });
                    }
                }
            }
            HbMsg::Expect { client } => {
                // Open the arrival buffer unless the client already beat the
                // announcement here.
                if !core.is_connected(client) && !self.expected.contains_key(&client) {
                    self.expected.insert(
                        client,
                        EventQueue::new(core.alloc_pq_id(client), QueueKind::Persistent),
                    );
                }
            }
        }
    }

    fn on_client_event(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        event: Event,
        _from: Peer,
        ctx: &mut BrokerCtx<'_, HbMsg>,
    ) {
        // Events for a client only ever route to its home broker (the
        // subscription root never moves under this protocol).
        let connected_here = core.is_connected(client);
        let rec = self.home_record(core, client);
        match rec.location {
            Some(foreign) => {
                ctx.send_protocol(foreign, HbMsg::ForwardEvent { client, event });
            }
            None => {
                if connected_here {
                    core.deliver(client, event, ctx);
                } else {
                    rec.store.push(event);
                }
            }
        }
    }

    fn buffered_events(&self) -> Vec<(ClientId, Event)> {
        self.homed
            .iter()
            .flat_map(|(c, rec)| rec.store.iter().cloned().map(move |e| (*c, e)))
            .chain(
                self.expected
                    .iter()
                    .flat_map(|(c, q)| q.iter().cloned().map(move |e| (*c, e))),
            )
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhh_pubsub::delivery::{audit, SubscriberLog};
    use mhh_pubsub::event::EventBuilder;
    use mhh_pubsub::{ClientAction, ClientSpec, Deployment, DeploymentConfig, Op};
    use mhh_simnet::{SimTime, TrafficClass};

    fn filter(group: i64) -> Filter {
        Filter::single("group", Op::Eq, group)
    }

    fn build(side: usize) -> Deployment<HomeBroker> {
        let clients = vec![
            ClientSpec {
                filter: filter(1),
                home: BrokerId(0),
                mobile: true,
                initially_attached: true,
            },
            ClientSpec {
                filter: filter(2),
                home: BrokerId(((side * side) / 2) as u32),
                mobile: false,
                initially_attached: true,
            },
            ClientSpec {
                filter: filter(1),
                home: BrokerId((side * side - 1) as u32),
                mobile: false,
                initially_attached: true,
            },
        ];
        let config = DeploymentConfig {
            grid_side: side,
            seed: 5,
            ..DeploymentConfig::default()
        };
        Deployment::build(&config, &clients, |_| HomeBroker::new())
    }

    fn schedule_publishes(dep: &mut Deployment<HomeBroker>, count: u64, every_ms: u64) {
        for i in 0..count {
            let ev = EventBuilder::new()
                .attr("group", 1i64)
                .build(1000 + i, ClientId(1), i);
            dep.schedule_publish(SimTime::from_millis(10 + i * every_ms), ClientId(1), ev);
        }
    }

    fn audit_group1(dep: &Deployment<HomeBroker>) -> mhh_pubsub::DeliveryAudit {
        let published: Vec<Event> = dep.clients().flat_map(|c| c.published.clone()).collect();
        let buffered = dep.buffered_events();
        let f = filter(1);
        let logs: Vec<(ClientId, Vec<mhh_pubsub::DeliveryRecord>)> = dep
            .clients()
            .filter(|c| c.filter == f)
            .map(|c| (c.id, c.received.clone()))
            .collect();
        let subs: Vec<SubscriberLog<'_>> = logs
            .iter()
            .map(|(id, recs)| SubscriberLog {
                client: *id,
                filter: &f,
                deliveries: recs,
            })
            .collect();
        audit(&published, &subs, &buffered)
    }

    #[test]
    fn roaming_client_receives_events_via_home_broker() {
        let mut dep = build(4);
        schedule_publishes(&mut dep, 40, 100);
        dep.schedule(
            SimTime::from_millis(500),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(1_000),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(15),
            },
        );
        dep.engine.run_to_completion();
        let mobile = dep.client(ClientId(0));
        assert!(
            mobile.received.len() >= 35,
            "most events delivered: {}",
            mobile.received.len()
        );
        assert_eq!(mobile.handoff_count(), 1);
        assert!(!mobile.handoff_delays().is_empty());
        // The home broker learned the foreign location and triangle-routed
        // events there.
        let stats = dep.engine.stats();
        assert!(stats.kind("hb_register").messages >= 1);
        assert!(stats.kind("hb_forward").messages > 0);
        assert!(stats.class(TrafficClass::MobilityTransfer).hops > 0);
    }

    #[test]
    fn events_stored_while_disconnected_are_forwarded_on_reconnect() {
        let mut dep = build(4);
        dep.schedule(
            SimTime::from_millis(5),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        schedule_publishes(&mut dep, 20, 100);
        dep.schedule(
            SimTime::from_millis(5_000),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(12),
            },
        );
        dep.engine.run_to_completion();
        let a = audit_group1(&dep);
        assert_eq!(
            a.lost, 0,
            "nothing in flight when the client is parked: {a:?}"
        );
        let mobile = dep.client(ClientId(0));
        assert_eq!(mobile.received.len(), 20);
    }

    #[test]
    fn in_transit_events_are_lost_when_the_client_moves_away() {
        // The client leaves the foreign broker the moment events are being
        // forwarded to it: those events are dropped.
        let mut dep = build(5);
        // A burst of events published while the client sits at a far foreign
        // broker.
        dep.schedule(
            SimTime::from_millis(5),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(100),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(24),
            },
        );
        schedule_publishes(&mut dep, 50, 20);
        // Leave right in the middle of the burst, then come back home much
        // later.
        dep.schedule(
            SimTime::from_millis(600),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(2_000),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(0),
            },
        );
        dep.engine.run_to_completion();
        let a = audit_group1(&dep);
        assert!(
            a.lost > 0,
            "home-broker should lose in-transit events: {a:?}"
        );
        // The stationary subscriber is unaffected.
        let stationary = dep.client(ClientId(2));
        assert_eq!(stationary.received.len(), 50);
    }

    #[test]
    fn proclaimed_move_buffers_ahead_and_cuts_the_first_delivery_gap() {
        // Same move reactive vs proclaimed: the proclaimed run forwards the
        // stored backlog to the announced destination during the gap, so the
        // client is served immediately on arrival (no register round trip).
        let run = |proclaimed: bool| {
            let mut dep = build(4);
            dep.schedule(
                SimTime::from_millis(5),
                ClientId(0),
                ClientAction::Disconnect {
                    proclaimed_dest: proclaimed.then_some(BrokerId(15)),
                },
            );
            schedule_publishes(&mut dep, 20, 50);
            dep.schedule(
                SimTime::from_millis(5_000),
                ClientId(0),
                ClientAction::Reconnect {
                    broker: BrokerId(15),
                },
            );
            dep.engine.run_to_completion();
            dep
        };

        let dep = run(true);
        let a = audit_group1(&dep);
        assert_eq!(a.lost, 0, "parked burst, nothing in flight: {a:?}");
        assert_eq!(a.duplicates, 0, "{a:?}");
        assert_eq!(a.out_of_order, 0, "{a:?}");
        let mobile = dep.client(ClientId(0));
        assert_eq!(mobile.received.len(), 20, "whole backlog delivered");
        let stats = dep.engine.stats();
        assert!(stats.kind("hb_expect").messages >= 1);
        let proclaimed_delay = mobile.handoff_delays()[0];

        let reactive_delay = run(false).client(ClientId(0)).handoff_delays()[0];
        assert!(
            proclaimed_delay < reactive_delay,
            "proclaimed {proclaimed_delay} ms must beat reactive {reactive_delay} ms"
        );
    }

    #[test]
    fn proclaimed_move_from_foreign_broker_retargets_forwarding() {
        let mut dep = build(4);
        // Roam to broker 9 first, then proclaim the move to broker 15.
        dep.schedule(
            SimTime::from_millis(5),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(100),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(9),
            },
        );
        dep.schedule(
            SimTime::from_millis(1_000),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: Some(BrokerId(15)),
            },
        );
        // Publish during the gap: events go home, forward to 15, buffer.
        schedule_publishes(&mut dep, 10, 100);
        dep.schedule(
            SimTime::from_millis(4_000),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(15),
            },
        );
        dep.engine.run_to_completion();
        let stats = dep.engine.stats();
        assert!(stats.kind("hb_handoff_ahead").messages >= 1);
        let a = audit_group1(&dep);
        assert_eq!(a.duplicates, 0, "{a:?}");
        assert_eq!(a.out_of_order, 0, "{a:?}");
        // Events published squarely inside the gap must all arrive.
        let mobile = dep.client(ClientId(0));
        assert!(
            mobile.received.len() >= 8,
            "gap backlog delivered via the expect buffer: {}",
            mobile.received.len()
        );
    }

    #[test]
    fn returning_home_stops_triangle_routing() {
        let mut dep = build(4);
        dep.schedule(
            SimTime::from_millis(5),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(100),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(9),
            },
        );
        dep.schedule(
            SimTime::from_millis(2_000),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(3_000),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(0),
            },
        );
        schedule_publishes(&mut dep, 30, 200);
        dep.engine.run_to_completion();
        let home = dep.broker(BrokerId(0));
        assert_eq!(home.proto.location_of(ClientId(0)), None);
        let a = audit_group1(&dep);
        assert_eq!(a.duplicates, 0);
        assert_eq!(a.out_of_order, 0);
    }
}
