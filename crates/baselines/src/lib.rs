//! # mhh-baselines — baseline mobility-management protocols
//!
//! The two comparison protocols of the MHH paper's evaluation (Section 2 and
//! Section 5), re-implemented on the same `mhh-pubsub` broker substrate so
//! all three protocols run on identical workloads:
//!
//! * [`sub_unsub::SubUnsub`] — the widely-used protocol of
//!   Burcea et al. / Caporuscio et al.: on reconnection the client re-issues
//!   its subscription at the new broker, the system waits long enough for the
//!   new subscription to be known everywhere, then cancels the old
//!   subscription and transfers the stored queue, merging / deduplicating /
//!   sorting before delivery. Reliable but slow (the client waits for the
//!   whole handoff) and expensive under frequent movement (the stored bulk is
//!   shuttled between brokers).
//! * [`home_broker::HomeBroker`] — the Mobile-IP-style protocol: a fixed home
//!   broker holds the subscription forever and forwards events to wherever
//!   the client currently is. Fast handoff, but triangle routing inflates
//!   traffic with network size, and events in transit to a foreign broker the
//!   client just left are lost.
//!
//! Plus one protocol from outside the paper, used by the failure panel:
//!
//! * [`psvr::Psvr`] — a self-stabilizing protocol over a virtual broker
//!   ring (adapted from Siegemund & Turau, arXiv 1609.06841): soft-state
//!   subscription leases, ring-sweep handoffs, no dedicated recovery
//!   dialogue — convergence from arbitrary state is the design itself.
//!
//! **Recovery behaviour under injected faults:** `SubUnsub` and
//! `HomeBroker` rely entirely on the shared repair layer of `mhh-pubsub`
//! (crash detours, partition tunnels, checkpoint/restore with filter
//! resync) and the default no-op
//! [`MobilityProtocol::on_restart`](mhh_pubsub::broker::MobilityProtocol::on_restart):
//! their protocol state is plain soft routing data that the resync
//! re-announces, so no protocol-specific recovery dialogue exists — losses
//! during an outage window are the baseline's honest cost. MHH
//! (`mhh-core`) adds explicit retry/abort recovery; PSVR recovers by
//! construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod home_broker;
pub mod psvr;
pub mod sub_unsub;

pub use home_broker::{HbMsg, HomeBroker};
pub use psvr::{Psvr, PsvrMsg};
pub use sub_unsub::{SuMsg, SubUnsub};
