//! The *PSVR* protocol: self-stabilizing pub/sub mobility over a virtual
//! ring (adapted from Siegemund & Turau, "A Self-Stabilizing Publish/
//! Subscribe Middleware for Wireless Sensor Networks", arXiv 1609.06841).
//!
//! PSVR takes the opposite stance from MHH: instead of a carefully
//! choreographed handoff whose every message matters, it keeps **soft
//! state** that converges back to a legal configuration from *any* starting
//! point, which makes the protocol natively fault tolerant:
//!
//! * The brokers form a **virtual ring** in broker-id order (successor of
//!   `i` is `(i + 1) mod n`), independent of the overlay tree. The ring
//!   needs no routing state, so it survives arbitrary corruption.
//! * When a client (re)connects, the new broker roots the subscription
//!   locally and launches a **stabilization sweep** — a
//!   [`PsvrMsg::Handoff`] walking the whole ring. Every broker the sweep
//!   visits removes its stale root for the client (propagating the
//!   unsubscription) and loads any parked events onto the sweep; the final
//!   hop ships the collected backlog to the new root as a
//!   [`PsvrMsg::Transfer`]. No broker needs to know where the client was:
//!   the sweep visits everyone, so *whatever* stale state exists, it heals.
//! * Subscription roots are **leases**, refreshed while the client is
//!   attached. A disconnected client's root survives between one and two
//!   lease periods (mark-and-sweep on a periodic [`PsvrMsg::Tick`]), then
//!   expires: the subscription is withdrawn and the parked backlog is
//!   discarded. Bounded storage is the price of self-stabilization, and the
//!   delivery audit reports the discarded events as loss — honestly, like
//!   the home-broker baseline's in-transit losses.
//! * After a crash+restart ([`MobilityProtocol::on_restart`]) the broker
//!   re-floods every locally rooted subscription (mobility-grade, bypassing
//!   the covering optimisation) and re-arms its lease timer. Divergence
//!   that built up while it was down is repaired by the ordinary sweep and
//!   lease machinery — no dedicated recovery dialogue exists, which is
//!   exactly the self-stabilization claim.
//!
//! Compared in the failure panel against MHH (explicit retry/abort
//! recovery) and the two paper baselines (checkpoint/resync recovery from
//! the shared repair layer).

use std::collections::BTreeMap;

use mhh_pubsub::broker::{BrokerCore, BrokerCtx, MobilityProtocol};
use mhh_pubsub::{
    BrokerId, ClientId, ConnectInfo, Event, EventQueue, Filter, Peer, ProtocolMessage, QueueKind,
};
use mhh_simnet::{SimDuration, TrafficClass};

/// A disconnected root is expired once it has sat through this many lease
/// ticks without a refresh (mark-and-sweep: real lifetime is between one
/// and two tick intervals).
const EXPIRE_TICKS: u32 = 2;

/// PSVR protocol messages.
#[derive(Debug, Clone)]
pub enum PsvrMsg {
    /// The stabilization sweep launched by a (re)connect, walking the
    /// virtual ring once. Carries the parked events collected from stale
    /// roots along the way.
    Handoff {
        /// The client whose subscription moved.
        client: ClientId,
        /// The broker the subscription now roots at (the sweep's origin).
        root: BrokerId,
        /// Remaining ring hops after this one; the receiver seeing `0`
        /// closes the sweep by shipping the collected events to `root`.
        ttl: u32,
        /// Parked events collected from stale roots visited so far, oldest
        /// first per origin broker.
        events: Vec<Event>,
    },
    /// The collected backlog of a completed sweep, sent directly (over the
    /// overlay) to the new root.
    Transfer {
        /// The client the events belong to.
        client: ClientId,
        /// The collected events.
        events: Vec<Event>,
    },
    /// Self-scheduled lease timer (never transported on a link): ages
    /// disconnected roots and expires the stale ones.
    Tick,
}

impl ProtocolMessage for PsvrMsg {
    fn kind(&self) -> &'static str {
        match self {
            PsvrMsg::Handoff { .. } => "psvr_handoff",
            PsvrMsg::Transfer { .. } => "psvr_transfer",
            PsvrMsg::Tick => "psvr_tick",
        }
    }

    fn traffic_class(&self) -> TrafficClass {
        match self {
            PsvrMsg::Handoff { events, .. } if !events.is_empty() => TrafficClass::MobilityTransfer,
            PsvrMsg::Transfer { .. } => TrafficClass::MobilityTransfer,
            PsvrMsg::Handoff { .. } | PsvrMsg::Tick => TrafficClass::MobilityControl,
        }
    }
}

/// One locally rooted subscription (a lease).
#[derive(Debug, Clone)]
struct RootRecord {
    /// The client's filter as this root last learned it.
    filter: Filter,
    /// Events parked while the client is disconnected — and, while the
    /// stabilization sweep is in flight, events held back so the sweep's
    /// older backlog can be delivered first.
    parked: EventQueue,
    /// Whether the client is currently attached here.
    connected: bool,
    /// A sweep is in flight: hold deliveries until its [`PsvrMsg::Transfer`]
    /// arrives (or a lease tick gives up waiting — the transfer may have
    /// fallen into an outage).
    stabilizing: bool,
    /// Lease ticks this root has sat through disconnected and unrefreshed.
    idle_ticks: u32,
    /// Per-publisher next-expected sequence number. During the overlap
    /// window of a move both the old and the new root receive copies of the
    /// same event; the watermark suppresses the second copy (and any
    /// straggler older than something already delivered), trading
    /// duplicates and inversions for honest, audited loss.
    seen: BTreeMap<ClientId, u64>,
}

impl RootRecord {
    fn fresh(filter: Filter, parked: EventQueue) -> Self {
        RootRecord {
            filter,
            parked,
            connected: false,
            stabilizing: false,
            idle_ticks: 0,
            seen: BTreeMap::new(),
        }
    }

    /// Deliver through the per-publisher watermark: drop copies and
    /// stragglers the client has effectively moved past.
    fn deliver_checked(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        ev: Event,
        ctx: &mut BrokerCtx<'_, PsvrMsg>,
    ) {
        let next = self.seen.entry(ev.publisher).or_insert(0);
        if ev.seq < *next {
            return;
        }
        *next = ev.seq + 1;
        core.deliver(client, ev, ctx);
    }

    /// Go (back) to live delivery: flush everything held, in order.
    fn go_live(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        ctx: &mut BrokerCtx<'_, PsvrMsg>,
    ) {
        self.stabilizing = false;
        let held: Vec<Event> = self.parked.drain();
        for ev in held {
            self.deliver_checked(core, client, ev, ctx);
        }
    }
}

/// The PSVR protocol instance of one broker.
#[derive(Debug, Clone)]
pub struct Psvr {
    /// Number of brokers on the virtual ring.
    ring_len: u32,
    /// Lease tick interval (roots expire after [`EXPIRE_TICKS`] idle ticks,
    /// so the real soft-state lifetime is one to two intervals).
    lease: SimDuration,
    /// Subscriptions currently rooted at this broker.
    roots: BTreeMap<ClientId, RootRecord>,
    /// Whether a lease tick is currently scheduled.
    ticking: bool,
}

impl Psvr {
    /// Create the protocol instance for one broker of a ring of `ring_len`
    /// brokers with the given lease interval.
    pub fn new(ring_len: u32, lease: SimDuration) -> Self {
        Psvr {
            ring_len,
            lease,
            roots: BTreeMap::new(),
            ticking: false,
        }
    }

    /// Whether this broker currently roots the client's subscription
    /// (tests and metrics).
    pub fn is_root_of(&self, client: ClientId) -> bool {
        self.roots.contains_key(&client)
    }

    /// Number of subscriptions rooted here.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    fn successor(&self, of: BrokerId) -> BrokerId {
        BrokerId((of.0 + 1) % self.ring_len)
    }

    fn arm_tick(&mut self, ctx: &mut BrokerCtx<'_, PsvrMsg>) {
        // Only disconnected roots age and only stabilizing roots wait for a
        // timeout, so the timer runs only while one of those exists —
        // otherwise an attached, settled client would keep the simulation
        // alive with refresh ticks forever.
        let aging = self.roots.values().any(|r| !r.connected || r.stabilizing);
        if !self.ticking && aging {
            self.ticking = true;
            ctx.schedule_protocol(self.lease, PsvrMsg::Tick);
        }
    }
}

impl MobilityProtocol for Psvr {
    type Msg = PsvrMsg;

    fn name(&self) -> &'static str {
        "PSVR"
    }

    fn on_client_connect(
        &mut self,
        core: &mut BrokerCore,
        info: ConnectInfo,
        ctx: &mut BrokerCtx<'_, PsvrMsg>,
    ) {
        let client = info.client;
        // Root the subscription here. Mobility-grade propagation: the new
        // root must be known everywhere even where a covering filter
        // already suppressed ordinary propagation.
        core.apply_subscribe(Peer::Client(client), info.filter.clone(), true, ctx);
        let parked = EventQueue::new(core.alloc_pq_id(client), QueueKind::Persistent);
        let rec = self
            .roots
            .entry(client)
            .or_insert_with(|| RootRecord::fresh(info.filter.clone(), parked));
        rec.filter = info.filter.clone();
        rec.connected = true;
        rec.idle_ticks = 0;
        // Launch the stabilization sweep around the ring: collect whatever
        // the old roots parked and retire their subscriptions, wherever
        // they are. Until its transfer comes back, deliveries are held so
        // the swept (older) backlog goes first.
        if self.ring_len > 1 {
            rec.stabilizing = true;
            ctx.send_protocol(
                self.successor(core.id),
                PsvrMsg::Handoff {
                    client,
                    root: core.id,
                    ttl: self.ring_len - 2,
                    events: Vec::new(),
                },
            );
        } else {
            rec.go_live(core, client, ctx);
        }
        self.arm_tick(ctx);
    }

    fn on_client_disconnect(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        filter: Filter,
        _proclaimed_dest: Option<BrokerId>,
        ctx: &mut BrokerCtx<'_, PsvrMsg>,
    ) {
        // Keep the root as a lease; newly arriving events park here until
        // the client resurfaces somewhere or the lease expires. A
        // proclaimed destination is ignored: PSVR stabilizes reactively.
        let parked = EventQueue::new(core.alloc_pq_id(client), QueueKind::Persistent);
        let rec = self
            .roots
            .entry(client)
            .or_insert_with(|| RootRecord::fresh(filter.clone(), parked));
        if !filter.is_empty() {
            rec.filter = filter;
        }
        rec.connected = false;
        rec.idle_ticks = 0;
        self.arm_tick(ctx);
    }

    fn on_protocol_msg(
        &mut self,
        core: &mut BrokerCore,
        _from: BrokerId,
        msg: PsvrMsg,
        ctx: &mut BrokerCtx<'_, PsvrMsg>,
    ) {
        match msg {
            PsvrMsg::Handoff {
                client,
                root,
                ttl,
                mut events,
            } => {
                // A stale root here is retired: its parked backlog rides the
                // sweep, its subscription is withdrawn. A *live* attachment
                // always wins — a slow sweep from a previous move must not
                // tear down the root the client currently uses.
                let live = self
                    .roots
                    .get(&client)
                    .map(|r| r.connected)
                    .unwrap_or(false);
                if !live && root != core.id {
                    if let Some(mut rec) = self.roots.remove(&client) {
                        events.extend(rec.parked.drain());
                        core.apply_unsubscribe(Peer::Client(client), rec.filter, true, ctx);
                    }
                }
                if ttl == 0 {
                    // Always close the sweep, even empty-handed: the root
                    // holds deliveries until this transfer arrives.
                    ctx.send_protocol(root, PsvrMsg::Transfer { client, events });
                } else {
                    ctx.send_protocol(
                        self.successor(core.id),
                        PsvrMsg::Handoff {
                            client,
                            root,
                            ttl: ttl - 1,
                            events,
                        },
                    );
                }
            }

            PsvrMsg::Transfer { client, events } => {
                // The collected backlog arriving at the new root: it is
                // older than anything held here, so it goes to the client
                // first, then the held events, then live delivery resumes.
                // A disconnected root parks everything instead.
                match self.roots.get_mut(&client) {
                    Some(rec) if rec.connected => {
                        for ev in events {
                            rec.deliver_checked(core, client, ev, ctx);
                        }
                        rec.go_live(core, client, ctx);
                    }
                    Some(rec) => {
                        rec.stabilizing = false;
                        let held: Vec<Event> = rec.parked.drain();
                        for ev in events.into_iter().chain(held) {
                            rec.parked.push(ev);
                        }
                    }
                    None => {
                        // The root expired (or a crash wiped it) while the
                        // sweep was in flight; with nowhere to root the
                        // backlog it is discarded, surfacing as audited
                        // loss.
                    }
                }
            }

            PsvrMsg::Tick => {
                // Mark-and-sweep lease aging: disconnected roots accumulate
                // idle ticks; beyond the allowance the subscription is
                // withdrawn and the parked backlog discarded (audited as
                // loss). A root still waiting for its sweep transfer after a
                // whole lease period gives up on it (the transfer fell into
                // an outage) and goes live with what it has — the
                // self-stabilizing answer to a lost message. Connected,
                // settled roots refresh implicitly.
                let mut expired: Vec<(ClientId, Filter)> = Vec::new();
                let mut give_up: Vec<ClientId> = Vec::new();
                for (&client, rec) in self.roots.iter_mut() {
                    if rec.connected {
                        if rec.stabilizing {
                            rec.idle_ticks += 1;
                            if rec.idle_ticks >= 1 {
                                give_up.push(client);
                            }
                        } else {
                            rec.idle_ticks = 0;
                        }
                    } else {
                        rec.idle_ticks += 1;
                        if rec.idle_ticks >= EXPIRE_TICKS {
                            expired.push((client, rec.filter.clone()));
                        }
                    }
                }
                for client in give_up {
                    if let Some(rec) = self.roots.get_mut(&client) {
                        rec.idle_ticks = 0;
                        rec.go_live(core, client, ctx);
                    }
                }
                for (client, filter) in expired {
                    self.roots.remove(&client);
                    core.apply_unsubscribe(Peer::Client(client), filter, true, ctx);
                }
                self.ticking = false;
                self.arm_tick(ctx);
            }
        }
    }

    fn on_client_event(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        event: Event,
        _from: Peer,
        ctx: &mut BrokerCtx<'_, PsvrMsg>,
    ) {
        let connected = core.is_connected(client);
        match self.roots.get_mut(&client) {
            Some(rec) if (rec.connected || connected) && !rec.stabilizing => {
                rec.deliver_checked(core, client, event, ctx)
            }
            // Disconnected — or holding for the sweep so its older backlog
            // can be delivered first.
            Some(rec) => rec.parked.push(event),
            // No root: the event matched a not-yet-withdrawn stale entry.
            // Deliver if the client happens to be attached; otherwise it is
            // lost and the audit says so.
            None if connected => {
                core.deliver(client, event, ctx);
            }
            None => {}
        }
    }

    fn on_restart(&mut self, core: &mut BrokerCore, ctx: &mut BrokerCtx<'_, PsvrMsg>) {
        // Self-stabilizing recovery: no dedicated dialogue. Re-flood every
        // locally rooted subscription (the outage may have eaten
        // propagations or grown detours the healed overlay no longer
        // matches) and re-arm the lease timer the crash destroyed. Stale
        // state elsewhere is left to the ordinary sweep + lease machinery.
        let filters: Vec<(ClientId, Filter)> = self
            .roots
            .iter()
            .map(|(c, r)| (*c, r.filter.clone()))
            .collect();
        for (client, filter) in filters {
            core.apply_subscribe(Peer::Client(client), filter, true, ctx);
        }
        self.ticking = false;
        self.arm_tick(ctx);
    }

    fn buffered_events(&self) -> Vec<(ClientId, Event)> {
        self.roots
            .iter()
            .flat_map(|(c, rec)| rec.parked.iter().cloned().map(move |e| (*c, e)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhh_pubsub::delivery::{audit, SubscriberLog};
    use mhh_pubsub::event::EventBuilder;
    use mhh_pubsub::{ClientAction, ClientSpec, Deployment, DeploymentConfig, Op};
    use mhh_simnet::SimTime;

    const LEASE: SimDuration = SimDuration::from_millis(10_000);

    fn filter(group: i64) -> Filter {
        Filter::single("group", Op::Eq, group)
    }

    fn build(side: usize) -> Deployment<Psvr> {
        let ring = (side * side) as u32;
        let clients = vec![
            ClientSpec {
                filter: filter(1),
                home: BrokerId(0),
                mobile: true,
                initially_attached: true,
            },
            ClientSpec {
                filter: filter(2),
                home: BrokerId(((side * side) / 2) as u32),
                mobile: false,
                initially_attached: true,
            },
            ClientSpec {
                filter: filter(1),
                home: BrokerId((side * side - 1) as u32),
                mobile: false,
                initially_attached: true,
            },
        ];
        let config = DeploymentConfig {
            grid_side: side,
            seed: 5,
            ..DeploymentConfig::default()
        };
        Deployment::build(&config, &clients, |_| Psvr::new(ring, LEASE))
    }

    fn schedule_publishes(dep: &mut Deployment<Psvr>, count: u64, every_ms: u64) {
        for i in 0..count {
            let ev = EventBuilder::new()
                .attr("group", 1i64)
                .build(1000 + i, ClientId(1), i);
            dep.schedule_publish(SimTime::from_millis(10 + i * every_ms), ClientId(1), ev);
        }
    }

    fn audit_group1(dep: &Deployment<Psvr>) -> mhh_pubsub::DeliveryAudit {
        let published: Vec<Event> = dep.clients().flat_map(|c| c.published.clone()).collect();
        let buffered = dep.buffered_events();
        let f = filter(1);
        let logs: Vec<(ClientId, Vec<mhh_pubsub::DeliveryRecord>)> = dep
            .clients()
            .filter(|c| c.filter == f)
            .map(|c| (c.id, c.received.clone()))
            .collect();
        let subs: Vec<SubscriberLog<'_>> = logs
            .iter()
            .map(|(id, recs)| SubscriberLog {
                client: *id,
                filter: &f,
                deliveries: recs,
            })
            .collect();
        audit(&published, &subs, &buffered)
    }

    #[test]
    fn sweep_collects_parked_backlog_after_a_move() {
        let mut dep = build(4);
        // Disconnect mid-stream, publish into the gap, reconnect far away:
        // the gap backlog parks at broker 0 (the old root) and the sweep of
        // the reconnect at broker 15 must fetch it.
        dep.schedule(
            SimTime::from_millis(500),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        schedule_publishes(&mut dep, 30, 100);
        dep.schedule(
            SimTime::from_millis(5_000),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(15),
            },
        );
        dep.engine.run_to_completion();
        let a = audit_group1(&dep);
        assert_eq!(a.lost, 0, "sweep must recover the parked backlog: {a:?}");
        assert_eq!(a.duplicates, 0, "{a:?}");
        let mobile = dep.client(ClientId(0));
        assert_eq!(mobile.received.len(), 30);
        let stats = dep.engine.stats();
        assert!(stats.kind("psvr_handoff").messages as usize >= 15);
        assert!(stats.kind("psvr_transfer").messages >= 1);
    }

    #[test]
    fn sweep_retires_the_stale_root() {
        let mut dep = build(3);
        dep.schedule(
            SimTime::from_millis(100),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(1_000),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(8),
            },
        );
        dep.engine.run_to_completion();
        assert!(
            !dep.broker(BrokerId(0)).proto.is_root_of(ClientId(0)),
            "old root must be swept away"
        );
        assert!(dep.broker(BrokerId(8)).proto.is_root_of(ClientId(0)));
    }

    #[test]
    fn lease_expiry_discards_the_parked_backlog_as_audited_loss() {
        let mut dep = build(3);
        // Disconnect before the first publish so the whole burst parks,
        // then let several lease periods pass with no reconnect: the root
        // expires and the backlog goes. The stationary subscriber keeps
        // receiving everything.
        dep.schedule(
            SimTime::from_millis(5),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        schedule_publishes(&mut dep, 10, 50);
        dep.engine.run_to_completion();
        assert!(
            !dep.broker(BrokerId(0)).proto.is_root_of(ClientId(0)),
            "lease must expire"
        );
        let a = audit_group1(&dep);
        assert_eq!(a.lost, 10, "expired backlog is honest loss: {a:?}");
        let stationary = dep.client(ClientId(2));
        assert_eq!(stationary.received.len(), 10);
    }

    #[test]
    fn rapid_bounce_keeps_the_live_root() {
        // A slow sweep from the first move must not tear down the root of
        // the second move (live-attachment guard).
        let mut dep = build(4);
        dep.schedule(
            SimTime::from_millis(100),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(200),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(15),
            },
        );
        dep.schedule(
            SimTime::from_millis(300),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(400),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(5),
            },
        );
        schedule_publishes(&mut dep, 20, 100);
        dep.engine.run_to_completion();
        assert!(dep.broker(BrokerId(5)).proto.is_root_of(ClientId(0)));
        let a = audit_group1(&dep);
        assert_eq!(a.duplicates, 0, "{a:?}");
        let mobile = dep.client(ClientId(0));
        assert!(
            mobile.received.len() >= 18,
            "bounced client still served: {}",
            mobile.received.len()
        );
    }
}
