//! Per-broker, per-client MHH state.
//!
//! At any moment a broker can play several roles for one client at once
//! (hold parked PQ-list elements from an old visit, sit on the path of the
//! client's current migration, and so on), so the state is a struct of
//! optional role components rather than a single phase enum.

use std::collections::{BTreeMap, VecDeque};

use mhh_pubsub::{BrokerId, ClientId, Event, EventQueue, Filter, PqId, QueueKind};

/// This broker is the client's current subscription root ("anchor").
#[derive(Debug, Clone, Default)]
pub struct AnchorState {
    /// The client's distributed PQ-list: ordered references (oldest first) to
    /// every queue that still holds undelivered events for the client. Local
    /// elements live in [`MhhClient::local`]; remote ones on other brokers.
    pub list: Vec<PqId>,
    /// The queue currently collecting newly arriving events while the client
    /// is disconnected (always the last list element). `None` while the
    /// client is connected and fully caught up.
    pub open: Option<PqId>,
}

/// This broker sits on a migration path and captures in-transit events in a
/// temporary queue.
#[derive(Debug, Clone)]
pub struct TqState {
    /// The temporary queue.
    pub queue: EventQueue,
    /// The next broker on the path toward the destination.
    pub next: BrokerId,
    /// The migration destination.
    pub dest: BrokerId,
    /// Whether the next hop's `sub_migration_ack` has arrived. The capture
    /// window may only close after it: FIFO guarantees every old-direction
    /// in-transit event from the next hop precedes the ack, so flushing
    /// earlier would strand stragglers. Under constant latency the ack
    /// always beats the `deliver_TQ` chain; under link jitter the chain can
    /// arrive first and must wait (see `deliver_pending`).
    pub acked: bool,
    /// A `deliver_TQ` that arrived before the ack, parked until the capture
    /// window can close (the destination it carried).
    pub deliver_pending: Option<BrokerId>,
}

/// This broker is the origin of an outbound migration and is waiting for the
/// first-hop acknowledgement before it starts event migration.
#[derive(Debug, Clone)]
pub struct OutboundState {
    /// The migration destination (where the client now is, or where it
    /// proclaimed it would go).
    pub dest: BrokerId,
    /// The first hop of the overlay path toward the destination.
    pub first_hop: BrokerId,
    /// The client's filter.
    pub filter: Filter,
    /// How many times the `sub_migration` has been (re-)sent without an
    /// acknowledgement. Only advances when the protocol runs with recovery
    /// enabled (see `Mhh::with_recovery`); stale watchdog timers carry the
    /// attempt they were armed for and are ignored when this has moved on.
    pub attempt: u32,
}

/// Batched streaming of this broker's locally stored PQ-list elements toward
/// a migration destination (the origin side of event migration). Streaming
/// happens in small paced batches so that a `stop_event_migration` from the
/// destination can halt it and leave the remaining bulk parked here
/// (Section 4.3).
#[derive(Debug, Clone)]
pub struct StreamState {
    /// Where the events are being streamed to.
    pub dest: BrokerId,
    /// First hop of the overlay path (target of the `deliver_TQ` chain).
    pub first_hop: BrokerId,
    /// PQ-list elements not yet fully streamed; the front element may be
    /// partially drained.
    pub list: std::collections::VecDeque<PqId>,
    /// Set when the destination asked us to stop.
    pub stopped: bool,
}

/// This broker is the destination of an inbound migration.
#[derive(Debug, Clone)]
pub struct DestState {
    /// The broker the migration started from.
    pub origin: BrokerId,
    /// Whether the client is currently attached here (false for a proclaimed
    /// move whose client has not arrived yet, or after an abort).
    pub client_connected: bool,
    /// Whether the handoff was aborted by the client disconnecting again
    /// before event migration finished (Section 4.3).
    pub aborted: bool,
    /// Set once the hop-by-hop `sub_migration` reached this broker.
    pub got_sub_migration: bool,
    /// Set once the `deliver_TQ` chain reached this broker.
    pub tq_done: bool,
    /// The remaining PQ-list elements to drain (None until the manifest
    /// arrives).
    pub remaining: Option<VecDeque<PqId>>,
    /// The element currently being drained, if any.
    pub pulling: Option<PqId>,
    /// PQ-list events received while the client was not deliverable
    /// (parked on completion).
    pub imm: EventQueue,
    /// TQ-stage events received (delivered after all PQ-list events).
    pub tq_buf: EventQueue,
    /// Newly arriving events routed here after the subscription flipped
    /// (delivered last).
    pub new_q: Option<EventQueue>,
    /// The client's filter.
    pub filter: Filter,
}

impl DestState {
    /// Fresh destination state.
    pub fn new(
        origin: BrokerId,
        filter: Filter,
        client_connected: bool,
        imm: EventQueue,
        tq_buf: EventQueue,
    ) -> Self {
        DestState {
            origin,
            client_connected,
            aborted: false,
            got_sub_migration: false,
            tq_done: false,
            remaining: None,
            pulling: None,
            imm,
            tq_buf,
            new_q: None,
            filter,
        }
    }

    /// Has every PQ-list element been drained (or abandoned by an abort)?
    pub fn pq_done(&self) -> bool {
        if self.pulling.is_some() {
            return false;
        }
        match &self.remaining {
            None => false,
            Some(r) => r.is_empty() || self.aborted,
        }
    }

    /// Is the whole event migration finished (so the destination can close
    /// the handoff)?
    pub fn finished(&self) -> bool {
        self.got_sub_migration && self.tq_done && self.pq_done()
    }
}

/// All MHH state one broker keeps for one client.
#[derive(Debug, Clone, Default)]
pub struct MhhClient {
    /// The client's filter as this broker last learned it.
    pub filter: Filter,
    /// Queues physically stored at this broker, keyed by their PQ-id sequence
    /// number.
    pub local: BTreeMap<u32, EventQueue>,
    /// Set when this broker is the client's subscription root.
    pub anchor: Option<AnchorState>,
    /// Set when this broker captures in-transit events on a migration path.
    pub tq: Option<TqState>,
    /// Set while this broker waits for the first-hop ack of an outbound
    /// migration.
    pub outbound: Option<OutboundState>,
    /// Set while this broker streams its stored queues toward a migration
    /// destination.
    pub stream: Option<StreamState>,
    /// Set while an inbound migration is in progress.
    pub dest: Option<DestState>,
    /// A handoff request that arrived while this broker was still finishing
    /// an inbound migration for the same client; processed when it completes.
    pub pending_handoff: Option<BrokerId>,
    /// A `stop_event_migration` arrived before event streaming had started
    /// (the destination aborted very quickly); honoured as soon as streaming
    /// would begin.
    pub stop_requested: bool,
}

impl MhhClient {
    /// Create state for a client with the given filter.
    pub fn new(filter: Filter) -> Self {
        MhhClient {
            filter,
            ..Default::default()
        }
    }

    /// Store a queue locally.
    pub fn park(&mut self, queue: EventQueue) {
        self.local.insert(queue.id.seq, queue);
    }

    /// Take a locally stored queue by id.
    pub fn take_local(&mut self, pq: PqId) -> Option<EventQueue> {
        self.local.remove(&pq.seq)
    }

    /// Every event currently buffered at this broker for the client, in any
    /// role (used by the delivery audit and by tests).
    pub fn buffered(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for q in self.local.values() {
            out.extend(q.iter().cloned());
        }
        if let Some(tq) = &self.tq {
            out.extend(tq.queue.iter().cloned());
        }
        if let Some(dest) = &self.dest {
            out.extend(dest.imm.iter().cloned());
            out.extend(dest.tq_buf.iter().cloned());
            if let Some(q) = &dest.new_q {
                out.extend(q.iter().cloned());
            }
        }
        out
    }

    /// Modeled wire bytes of every event buffered at this broker for the
    /// client — the same walk as [`buffered`](Self::buffered) without
    /// cloning. Zero when payload modeling is off. Feeds the broker
    /// memory-high-water accounting.
    pub fn buffered_bytes(&self) -> u64 {
        let mut total: u64 = 0;
        for q in self.local.values() {
            total += q.iter().map(|e| e.wire_size() as u64).sum::<u64>();
        }
        if let Some(tq) = &self.tq {
            total += tq.queue.iter().map(|e| e.wire_size() as u64).sum::<u64>();
        }
        if let Some(dest) = &self.dest {
            total += dest.imm.iter().map(|e| e.wire_size() as u64).sum::<u64>();
            total += dest
                .tq_buf
                .iter()
                .map(|e| e.wire_size() as u64)
                .sum::<u64>();
            if let Some(q) = &dest.new_q {
                total += q.iter().map(|e| e.wire_size() as u64).sum::<u64>();
            }
        }
        total
    }

    /// Whether this broker holds no state for the client anymore and the
    /// entry can be dropped.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty()
            && self.anchor.is_none()
            && self.tq.is_none()
            && self.outbound.is_none()
            && self.stream.is_none()
            && self.dest.is_none()
            && self.pending_handoff.is_none()
    }
}

/// Convenience constructor for an empty queue.
pub fn empty_queue(id: PqId, kind: QueueKind) -> EventQueue {
    EventQueue::new(id, kind)
}

/// Convenience: a placeholder PQ id (used for destination-side buffers whose
/// identity only matters if they end up parked).
pub fn scratch_pq(broker: BrokerId, client: ClientId, seq: u32) -> PqId {
    PqId {
        broker,
        client,
        seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhh_pubsub::event::EventBuilder;

    fn q(seq: u32) -> EventQueue {
        EventQueue::new(
            PqId {
                broker: BrokerId(0),
                client: ClientId(0),
                seq,
            },
            QueueKind::Persistent,
        )
    }

    #[test]
    fn park_and_take_round_trip() {
        let mut c = MhhClient::new(Filter::match_all());
        c.park(q(3));
        assert!(!c.is_empty());
        let taken = c.take_local(PqId {
            broker: BrokerId(0),
            client: ClientId(0),
            seq: 3,
        });
        assert!(taken.is_some());
        assert!(c
            .take_local(scratch_pq(BrokerId(0), ClientId(0), 3))
            .is_none());
    }

    #[test]
    fn buffered_collects_all_roles() {
        let mut c = MhhClient::new(Filter::match_all());
        let mut pq = q(0);
        pq.push(EventBuilder::new().attr("a", 1i64).build(1, ClientId(9), 0));
        c.park(pq);
        let mut tq = q(1);
        tq.push(EventBuilder::new().attr("a", 1i64).build(2, ClientId(9), 1));
        c.tq = Some(TqState {
            queue: tq,
            next: BrokerId(1),
            dest: BrokerId(2),
            acked: false,
            deliver_pending: None,
        });
        let mut dest = DestState::new(BrokerId(3), Filter::match_all(), true, q(2), q(3));
        dest.imm
            .push(EventBuilder::new().attr("a", 1i64).build(3, ClientId(9), 2));
        c.dest = Some(dest);
        let buffered = c.buffered();
        assert_eq!(buffered.len(), 3);
    }

    #[test]
    fn dest_state_completion_logic() {
        let mut d = DestState::new(BrokerId(0), Filter::match_all(), true, q(0), q(1));
        assert!(!d.finished());
        d.got_sub_migration = true;
        d.tq_done = true;
        assert!(!d.pq_done(), "no manifest yet");
        d.remaining = Some(VecDeque::new());
        assert!(d.finished());
        // Pulling an element blocks completion.
        d.pulling = Some(scratch_pq(BrokerId(1), ClientId(0), 0));
        assert!(!d.finished());
        d.pulling = None;
        // Abort with non-empty remaining still counts as done (elements stay
        // parked where they are).
        d.remaining = Some(VecDeque::from(vec![scratch_pq(
            BrokerId(1),
            ClientId(0),
            1,
        )]));
        assert!(!d.pq_done());
        d.aborted = true;
        assert!(d.pq_done());
    }

    #[test]
    fn is_empty_reflects_roles() {
        let mut c = MhhClient::new(Filter::match_all());
        assert!(c.is_empty());
        c.anchor = Some(AnchorState::default());
        assert!(!c.is_empty());
        c.anchor = None;
        c.pending_handoff = Some(BrokerId(1));
        assert!(!c.is_empty());
    }
}
