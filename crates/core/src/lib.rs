//! # mhh-core — the MHH multi-hop handoff protocol
//!
//! This crate implements the paper's contribution: the **multi-hop handoff
//! (MHH)** mobility-management protocol for content-based publish/subscribe
//! systems (Wang, Cao, Li, Wu — ICPP 2007), on top of the broker substrate of
//! `mhh-pubsub`.
//!
//! ## Protocol summary
//!
//! A handoff is split into two concurrent tasks:
//!
//! 1. **Subscription migration** (Section 4.1/4.2): when a client that was
//!    rooted at broker `Bo` reconnects at broker `Bn`, `Bn` sends a
//!    `handoff_request` to `Bo`, and the subscription is migrated *hop by
//!    hop* along the overlay path `Bo → B1 → … → Bn`. Each broker on the
//!    path re-points its filter-table entries, marks the client entry with an
//!    *accept-only-from* label, captures in-transit events in a temporary
//!    queue (TQ), acknowledges the previous hop (which, thanks to per-link
//!    FIFO, flushes the link), and forwards the migration to the next hop.
//! 2. **Event migration**: the origin's stored persistent queue (PQ) and the
//!    TQs captured along the path are transferred to `Bn` and delivered to
//!    the client in an order that preserves per-publisher ordering and
//!    exactly-once delivery.
//!
//! For **frequently moving clients** (Section 4.3) the protocol maintains a
//! *distributed linked list of persistent queues* (the PQ-list): if the
//! client disconnects again before event migration finishes, the remaining
//! queues stay where they are and only their *references* travel with the
//! subscription root, so the bulk of undelivered events is never shuttled
//! around repeatedly.
//!
//! ## Implementation notes (deviations documented in DESIGN.md)
//!
//! * Event migration is *pull-based*: the origin streams the queue elements
//!   it holds locally and hands the destination a manifest of the remaining
//!   (possibly remote) PQ-list elements; the destination drains them one at a
//!   time, which serialises arrivals and preserves ordering without global
//!   coordination. Aborting a handoff simply stops issuing further drain
//!   requests, which plays the role of the paper's `stop_event_migration`.
//! * Temporary queues are always drained to the migration destination (the
//!   paper redirects them to the origin when a handoff is aborted); both
//!   choices preserve correctness, and TQs are small by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod messages;
pub mod protocol;
pub mod state;

pub use messages::{MhhMsg, TransferStage};
pub use protocol::Mhh;
pub use state::{AnchorState, DestState, MhhClient, OutboundState, StreamState, TqState};

#[cfg(test)]
mod tests;
