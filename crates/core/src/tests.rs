//! End-to-end tests of the MHH protocol on small broker grids.
//!
//! Each test builds a complete simulated deployment ([`Deployment<Mhh>`]),
//! injects a publish/mobility timeline, runs it to completion and checks the
//! paper's delivery guarantees (exactly-once, per-publisher order, no loss)
//! plus structural properties of the handoff.

use mhh_pubsub::delivery::{audit, SubscriberLog};
use mhh_pubsub::event::EventBuilder;
use mhh_pubsub::{
    BrokerId, ClientAction, ClientId, ClientSpec, Deployment, DeploymentConfig, Event, Filter, Op,
    Peer,
};
use mhh_simnet::{SimTime, TrafficClass};

use crate::protocol::Mhh;

const GROUP_WATCHED: i64 = 1;
const GROUP_OTHER: i64 = 2;

fn filter(group: i64) -> Filter {
    Filter::single("group", Op::Eq, group)
}

fn event(id: u64, publisher: ClientId, seq: u64, group: i64) -> Event {
    EventBuilder::new()
        .attr("group", group)
        .attr("price", id as f64)
        .build(id, publisher, seq)
}

/// Build a deployment on a `side`×`side` grid with:
/// * client 0 — the mobile subscriber under test (subscribes to group 1),
/// * client 1 — a stationary publisher (subscribes to group 2, publishes group 1),
/// * client 2 — a stationary subscriber to group 1 (control for collateral damage).
fn build(side: usize) -> Deployment<Mhh> {
    let brokers = side * side;
    let clients = vec![
        ClientSpec {
            filter: filter(GROUP_WATCHED),
            home: BrokerId(0),
            mobile: true,
            initially_attached: true,
        },
        ClientSpec {
            filter: filter(GROUP_OTHER),
            home: BrokerId((brokers / 2) as u32),
            mobile: false,
            initially_attached: true,
        },
        ClientSpec {
            filter: filter(GROUP_WATCHED),
            home: BrokerId((brokers - 1) as u32),
            mobile: false,
            initially_attached: true,
        },
    ];
    let config = DeploymentConfig {
        grid_side: side,
        seed: 42,
        ..DeploymentConfig::default()
    };
    Deployment::build(&config, &clients, |_| Mhh::new())
}

/// Schedule `count` publishes of group-1 events from client 1, one every
/// `every_ms`, starting at `start_ms`.
fn schedule_publishes(dep: &mut Deployment<Mhh>, start_ms: u64, every_ms: u64, count: u64) {
    for i in 0..count {
        let at = SimTime::from_millis(start_ms + i * every_ms);
        dep.schedule_publish(
            at,
            ClientId(1),
            event(1000 + i, ClientId(1), i, GROUP_WATCHED),
        );
    }
}

/// Run to completion and audit deliveries of the group-1 subscribers.
fn run_and_audit(mut dep: Deployment<Mhh>) -> (Deployment<Mhh>, mhh_pubsub::DeliveryAudit) {
    dep.engine.run_to_completion();
    let published: Vec<Event> = dep.clients().flat_map(|c| c.published.clone()).collect();
    let buffered = dep.buffered_events();
    let f = filter(GROUP_WATCHED);
    let logs: Vec<(ClientId, Vec<mhh_pubsub::DeliveryRecord>)> = dep
        .clients()
        .filter(|c| c.filter == f)
        .map(|c| (c.id, c.received.clone()))
        .collect();
    let subscriber_logs: Vec<SubscriberLog<'_>> = logs
        .iter()
        .map(|(id, recs)| SubscriberLog {
            client: *id,
            filter: &f,
            deliveries: recs,
        })
        .collect();
    let result = audit(&published, &subscriber_logs, &buffered);
    (dep, result)
}

#[test]
fn stationary_clients_receive_everything() {
    let mut dep = build(3);
    schedule_publishes(&mut dep, 10, 200, 20);
    let (dep, audit) = run_and_audit(dep);
    assert!(audit.is_reliable(), "audit: {audit:?}");
    assert_eq!(audit.expected, 40, "two subscribers × 20 events");
    assert_eq!(audit.delivered, 40);
    assert_eq!(dep.engine.stats().mobility_hops(), 0);
}

#[test]
fn silent_move_is_exactly_once_and_ordered() {
    let mut dep = build(4);
    schedule_publishes(&mut dep, 10, 100, 60);
    // Client 0 disconnects at 1.5 s, reconnects at the far corner at 3 s.
    dep.schedule(
        SimTime::from_millis(1_500),
        ClientId(0),
        ClientAction::Disconnect {
            proclaimed_dest: None,
        },
    );
    dep.schedule(
        SimTime::from_millis(3_000),
        ClientId(0),
        ClientAction::Reconnect {
            broker: BrokerId(15),
        },
    );
    let (dep, audit) = run_and_audit(dep);
    assert!(audit.is_reliable(), "audit: {audit:?}");
    assert_eq!(audit.lost, 0);
    assert_eq!(
        audit.pending, 0,
        "client reconnected, nothing should stay parked"
    );
    // The mobile client saw a real handoff with a measured delay.
    let mobile = dep.client(ClientId(0));
    assert_eq!(mobile.handoff_count(), 1);
    let delays = mobile.handoff_delays();
    assert_eq!(delays.len(), 1);
    assert!(delays[0] > 0.0 && delays[0] < 2_000.0, "delay {delays:?}");
    // Handoff generated mobility traffic (control + transferred events).
    let stats = dep.engine.stats();
    assert!(stats.class(TrafficClass::MobilityControl).hops > 0);
    assert!(stats.class(TrafficClass::MobilityTransfer).hops > 0);
}

#[test]
fn events_during_disconnection_are_stored_then_delivered_in_order() {
    let mut dep = build(4);
    // All publishes happen while client 0 is away.
    dep.schedule(
        SimTime::from_millis(5),
        ClientId(0),
        ClientAction::Disconnect {
            proclaimed_dest: None,
        },
    );
    schedule_publishes(&mut dep, 100, 50, 30);
    dep.schedule(
        SimTime::from_millis(5_000),
        ClientId(0),
        ClientAction::Reconnect {
            broker: BrokerId(10),
        },
    );
    let (dep, audit) = run_and_audit(dep);
    assert!(audit.is_reliable(), "audit: {audit:?}");
    let mobile = dep.client(ClientId(0));
    assert_eq!(mobile.received.len(), 30, "all stored events delivered");
    // Order: per-publisher sequence strictly increasing.
    let seqs: Vec<u64> = mobile.received.iter().map(|r| r.seq).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_eq!(seqs, sorted);
}

#[test]
fn proclaimed_move_delivers_everything() {
    let mut dep = build(4);
    schedule_publishes(&mut dep, 10, 100, 50);
    dep.schedule(
        SimTime::from_millis(2_000),
        ClientId(0),
        ClientAction::Disconnect {
            proclaimed_dest: Some(BrokerId(12)),
        },
    );
    dep.schedule(
        SimTime::from_millis(4_000),
        ClientId(0),
        ClientAction::Reconnect {
            broker: BrokerId(12),
        },
    );
    let (dep, audit) = run_and_audit(dep);
    assert!(audit.is_reliable(), "audit: {audit:?}");
    assert_eq!(audit.pending, 0);
    let mobile = dep.client(ClientId(0));
    assert_eq!(mobile.received.len(), 50);
}

#[test]
fn reconnect_at_same_broker_needs_no_handoff() {
    let mut dep = build(3);
    schedule_publishes(&mut dep, 10, 100, 20);
    dep.schedule(
        SimTime::from_millis(500),
        ClientId(0),
        ClientAction::Disconnect {
            proclaimed_dest: None,
        },
    );
    dep.schedule(
        SimTime::from_millis(1_500),
        ClientId(0),
        ClientAction::Reconnect {
            broker: BrokerId(0),
        },
    );
    let (dep, audit) = run_and_audit(dep);
    assert!(audit.is_reliable(), "audit: {audit:?}");
    let mobile = dep.client(ClientId(0));
    assert_eq!(mobile.handoff_count(), 0);
    assert_eq!(mobile.received.len(), 20);
    // No handoff request was ever sent.
    assert_eq!(dep.engine.stats().kind("handoff_request").messages, 0);
}

#[test]
fn frequent_moving_keeps_exactly_once_delivery() {
    let mut dep = build(4);
    schedule_publishes(&mut dep, 10, 40, 200);
    // The client hops across four brokers with very short connection periods,
    // tight enough that handoffs overlap (40–160 ms between moves while a
    // single handoff takes several link round trips).
    let hops = [5u32, 15, 2, 10, 7, 0];
    let mut t = 500u64;
    for (i, b) in hops.iter().enumerate() {
        dep.schedule(
            SimTime::from_millis(t),
            ClientId(0),
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        t += 40 + (i as u64 * 20) % 120;
        dep.schedule(
            SimTime::from_millis(t),
            ClientId(0),
            ClientAction::Reconnect {
                broker: BrokerId(*b),
            },
        );
        t += 60 + (i as u64 * 37) % 160;
    }
    let (dep, audit) = run_and_audit(dep);
    assert_eq!(audit.lost, 0, "audit: {audit:?}");
    assert_eq!(audit.duplicates, 0, "audit: {audit:?}");
    assert_eq!(audit.out_of_order, 0, "audit: {audit:?}");
    let mobile = dep.client(ClientId(0));
    assert!(mobile.handoff_count() >= 5);
}

#[test]
fn client_disconnected_at_end_has_pending_not_lost_events() {
    let mut dep = build(3);
    dep.schedule(
        SimTime::from_millis(5),
        ClientId(0),
        ClientAction::Disconnect {
            proclaimed_dest: None,
        },
    );
    schedule_publishes(&mut dep, 100, 100, 10);
    // The client never comes back.
    let (dep, audit) = run_and_audit(dep);
    assert_eq!(audit.lost, 0, "audit: {audit:?}");
    assert_eq!(audit.pending, 10, "stored events are pending, not lost");
    assert!(audit.is_reliable());
    // They are stored at the client's last broker.
    let origin = dep.broker(BrokerId(0));
    let state = origin.proto.client_state(ClientId(0)).expect("state kept");
    assert_eq!(state.buffered().len(), 10);
}

#[test]
fn concurrent_mobility_of_same_filter_clients_does_not_disturb_others() {
    // Two mobile subscribers sharing the group-1 filter plus one stationary
    // group-1 subscriber; both mobiles move at overlapping times.
    let clients = vec![
        ClientSpec {
            filter: filter(GROUP_WATCHED),
            home: BrokerId(0),
            mobile: true,
            initially_attached: true,
        },
        ClientSpec {
            filter: filter(GROUP_OTHER),
            home: BrokerId(7),
            mobile: false,
            initially_attached: true,
        },
        ClientSpec {
            filter: filter(GROUP_WATCHED),
            home: BrokerId(15),
            mobile: false,
            initially_attached: true,
        },
        ClientSpec {
            filter: filter(GROUP_WATCHED),
            home: BrokerId(3),
            mobile: true,
            initially_attached: true,
        },
    ];
    let config = DeploymentConfig {
        grid_side: 4,
        seed: 9,
        ..DeploymentConfig::default()
    };
    let mut dep: Deployment<Mhh> = Deployment::build(&config, &clients, |_| Mhh::new());
    for i in 0..120u64 {
        dep.schedule_publish(
            SimTime::from_millis(10 + i * 60),
            ClientId(1),
            event(5000 + i, ClientId(1), i, GROUP_WATCHED),
        );
    }
    for (cid, disc, reco, target) in [
        (ClientId(0), 1_000u64, 1_400u64, BrokerId(12)),
        (ClientId(3), 1_100, 1_600, BrokerId(8)),
        (ClientId(0), 3_000, 3_300, BrokerId(5)),
        (ClientId(3), 3_100, 3_500, BrokerId(14)),
    ] {
        dep.schedule(
            SimTime::from_millis(disc),
            cid,
            ClientAction::Disconnect {
                proclaimed_dest: None,
            },
        );
        dep.schedule(
            SimTime::from_millis(reco),
            cid,
            ClientAction::Reconnect { broker: target },
        );
    }
    dep.engine.run_to_completion();

    let published: Vec<Event> = dep.clients().flat_map(|c| c.published.clone()).collect();
    let buffered = dep.buffered_events();
    let f = filter(GROUP_WATCHED);
    let logs: Vec<(ClientId, Vec<mhh_pubsub::DeliveryRecord>)> = dep
        .clients()
        .filter(|c| c.filter == f)
        .map(|c| (c.id, c.received.clone()))
        .collect();
    let subscriber_logs: Vec<SubscriberLog<'_>> = logs
        .iter()
        .map(|(id, recs)| SubscriberLog {
            client: *id,
            filter: &f,
            deliveries: recs,
        })
        .collect();
    let result = audit(&published, &subscriber_logs, &buffered);
    assert!(result.is_reliable(), "audit: {result:?}");
    // The stationary subscriber got every event with no interference.
    let stationary = dep.client(ClientId(2));
    assert_eq!(stationary.received.len(), 120);
}

#[test]
fn handoff_rewires_filter_tables_toward_new_broker() {
    let mut dep = build(4);
    schedule_publishes(&mut dep, 10, 100, 10);
    dep.schedule(
        SimTime::from_millis(300),
        ClientId(0),
        ClientAction::Disconnect {
            proclaimed_dest: None,
        },
    );
    dep.schedule(
        SimTime::from_millis(800),
        ClientId(0),
        ClientAction::Reconnect {
            broker: BrokerId(15),
        },
    );
    let (dep, audit) = run_and_audit(dep);
    assert!(audit.is_reliable(), "audit: {audit:?}");
    // The origin broker no longer has a client entry for client 0; the new
    // broker does.
    let f = filter(GROUP_WATCHED);
    assert!(!dep
        .broker(BrokerId(0))
        .core
        .filters
        .contains(Peer::Client(ClientId(0)), &f));
    assert!(dep
        .broker(BrokerId(15))
        .core
        .filters
        .contains(Peer::Client(ClientId(0)), &f));
    // And no broker keeps a temporary-queue role for the client.
    for b in dep.brokers() {
        if let Some(st) = b.proto.client_state(ClientId(0)) {
            assert!(st.tq.is_none(), "broker {} kept a TQ", b.core.id);
            assert!(st.dest.is_none(), "broker {} kept dest state", b.core.id);
            assert!(
                st.outbound.is_none(),
                "broker {} kept outbound state",
                b.core.id
            );
        }
    }
}

#[test]
fn handoff_delay_scales_with_distance_not_network_diameter() {
    // Handoff between adjacent brokers must be faster than a handoff across
    // the whole grid.
    let mut near = build(5);
    schedule_publishes(&mut near, 10, 50, 100);
    near.schedule(
        SimTime::from_millis(1_000),
        ClientId(0),
        ClientAction::Disconnect {
            proclaimed_dest: None,
        },
    );
    near.schedule(
        SimTime::from_millis(1_500),
        ClientId(0),
        ClientAction::Reconnect {
            broker: BrokerId(1),
        },
    );
    let (near, near_audit) = run_and_audit(near);
    assert!(near_audit.is_reliable());

    let mut far = build(5);
    schedule_publishes(&mut far, 10, 50, 100);
    far.schedule(
        SimTime::from_millis(1_000),
        ClientId(0),
        ClientAction::Disconnect {
            proclaimed_dest: None,
        },
    );
    far.schedule(
        SimTime::from_millis(1_500),
        ClientId(0),
        ClientAction::Reconnect {
            broker: BrokerId(24),
        },
    );
    let (far, far_audit) = run_and_audit(far);
    assert!(far_audit.is_reliable());

    let near_delay = near.client(ClientId(0)).handoff_delays()[0];
    let far_delay = far.client(ClientId(0)).handoff_delays()[0];
    assert!(
        near_delay < far_delay,
        "adjacent handoff ({near_delay} ms) should beat cross-grid handoff ({far_delay} ms)"
    );
}
