//! MHH protocol messages.
//!
//! These are the messages of Section 4 of the paper (`handoff_request`,
//! `sub_migration`, `sub_migration_ack`, `deliver_TQ`) plus the event- and
//! queue-transfer messages that realise event migration and the distributed
//! PQ-list of Section 4.3.

use mhh_pubsub::{BrokerId, ClientId, Event, Filter, PqId, ProtocolMessage};
use mhh_simnet::TrafficClass;

/// Whether a transferred event belongs to the PQ-list portion of event
/// migration or to a temporary queue captured along the migration path.
/// The destination delivers all PQ-list events first, then the TQ events,
/// then newly-arrived events, which preserves per-publisher order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferStage {
    /// An event from a persistent queue (the stored backlog).
    PqList,
    /// An event captured in a temporary queue during the handoff.
    Tq,
}

/// The MHH message set.
#[derive(Debug, Clone)]
pub enum MhhMsg {
    /// Sent by the new broker to the client's last-visited broker to start a
    /// silent-move handoff (Section 4.2).
    HandoffRequest {
        /// The reconnecting client.
        client: ClientId,
        /// The broker the client now connects to.
        new_broker: BrokerId,
        /// The client's filter (so a broker with no state can still proceed).
        filter: Filter,
    },
    /// Hop-by-hop subscription migration (Section 4.1).
    SubMigration {
        /// The migrating client.
        client: ClientId,
        /// The client's filter.
        filter: Filter,
        /// The migration destination broker.
        dest: BrokerId,
        /// The broker the migration started from.
        origin: BrokerId,
        /// True when the sender no longer needs this filter for any other
        /// subscriber, so the receiver may delete its entry for the sender
        /// (the "cancel the filter" indication of Section 4.1).
        cancel_prev: bool,
    },
    /// Acknowledgement flowing back toward the origin; by FIFO it pushes all
    /// in-transit events on the link ahead of it.
    SubMigrationAck {
        /// The migrating client.
        client: ClientId,
    },
    /// Ask the next broker on the path to forward its temporary queue to the
    /// destination and propagate the request onward.
    DeliverTq {
        /// The migrating client.
        client: ClientId,
        /// Where the TQ contents must be sent.
        dest: BrokerId,
    },
    /// A batch of migrated events (moved as one network message, like a
    /// queue-segment transfer).
    PqTransfer {
        /// The client the events belong to.
        client: ClientId,
        /// The events being moved, oldest first.
        events: Vec<Event>,
        /// PQ-list or TQ portion.
        stage: TransferStage,
    },
    /// The ordered list of PQ-list elements that remain to be drained, sent
    /// by the origin to the destination after it has streamed its own leading
    /// elements (the distributed linked list of Section 4.3).
    Manifest {
        /// The client the list belongs to.
        client: ClientId,
        /// Remaining queue references, oldest first.
        remaining: Vec<PqId>,
    },
    /// Ask a broker holding a parked PQ-list element to stream it to the
    /// requesting destination.
    DrainRequest {
        /// The client the queue belongs to.
        client: ClientId,
        /// Which queue to stream.
        pq: PqId,
    },
    /// All events of the requested queue have been streamed.
    DrainComplete {
        /// The client the queue belongs to.
        client: ClientId,
        /// The queue that finished draining.
        pq: PqId,
    },
    /// Self-scheduled timer at the origin pacing the batched streaming of its
    /// stored queue (never transported on a link).
    StreamTick {
        /// The client whose queue is being streamed.
        client: ClientId,
    },
    /// Sent by the destination to the origin when the client disconnects
    /// again before event migration finished (Section 4.3): the origin stops
    /// streaming and leaves the rest of its queue parked as a PQ-list
    /// element.
    StopEventMigration {
        /// The client whose migration is aborted.
        client: ClientId,
    },
    /// Self-scheduled watchdog at the origin of an outbound migration (never
    /// transported on a link). Armed only when the protocol runs with
    /// recovery enabled: if the first hop's `sub_migration_ack` has not
    /// arrived when it fires (the hop crashed or the message fell into an
    /// outage window), the `sub_migration` is re-sent, and after a bounded
    /// number of attempts the migration is abandoned so the subscription
    /// root keeps collecting events here instead of stalling forever.
    MigrationRetry {
        /// The client whose outbound migration is being watched.
        client: ClientId,
        /// The attempt this watchdog was armed for; stale timers from an
        /// earlier attempt are ignored.
        attempt: u32,
    },
}

impl ProtocolMessage for MhhMsg {
    fn kind(&self) -> &'static str {
        match self {
            MhhMsg::HandoffRequest { .. } => "handoff_request",
            MhhMsg::SubMigration { .. } => "sub_migration",
            MhhMsg::SubMigrationAck { .. } => "sub_migration_ack",
            MhhMsg::DeliverTq { .. } => "deliver_tq",
            MhhMsg::PqTransfer { .. } => "pq_transfer",
            MhhMsg::Manifest { .. } => "pq_manifest",
            MhhMsg::DrainRequest { .. } => "drain_request",
            MhhMsg::DrainComplete { .. } => "drain_complete",
            MhhMsg::StreamTick { .. } => "stream_tick",
            MhhMsg::StopEventMigration { .. } => "stop_event_migration",
            MhhMsg::MigrationRetry { .. } => "migration_retry",
        }
    }

    fn traffic_class(&self) -> TrafficClass {
        match self {
            MhhMsg::PqTransfer { .. } => TrafficClass::MobilityTransfer,
            _ => TrafficClass::MobilityControl,
        }
    }

    fn wire_bytes(&self) -> u32 {
        match self {
            MhhMsg::PqTransfer { events, .. } => events.iter().map(Event::wire_size).sum(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_messages_count_as_transfers_and_controls() {
        let t = MhhMsg::PqTransfer {
            client: ClientId(0),
            events: vec![mhh_pubsub::event::EventBuilder::new()
                .attr("group", 1i64)
                .build(1, ClientId(1), 0)],
            stage: TransferStage::PqList,
        };
        assert_eq!(t.traffic_class(), TrafficClass::MobilityTransfer);
        assert_eq!(t.kind(), "pq_transfer");

        let c = MhhMsg::HandoffRequest {
            client: ClientId(0),
            new_broker: BrokerId(1),
            filter: Filter::match_all(),
        };
        assert_eq!(c.traffic_class(), TrafficClass::MobilityControl);
        assert_eq!(c.kind(), "handoff_request");
        let d = MhhMsg::DeliverTq {
            client: ClientId(0),
            dest: BrokerId(2),
        };
        assert_eq!(d.traffic_class(), TrafficClass::MobilityControl);
    }
}
