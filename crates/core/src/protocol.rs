//! The MHH protocol logic: an implementation of
//! [`MobilityProtocol`] driving the handoff state machines of Section 4 of
//! the paper.

use std::collections::{BTreeMap, VecDeque};

use mhh_pubsub::broker::{BrokerCore, BrokerCtx, MobilityProtocol};
use mhh_pubsub::{
    BrokerId, ClientId, ConnectInfo, Event, EventQueue, Filter, Peer, PqId, QueueKind,
};

use mhh_simnet::SimDuration;

use crate::messages::{MhhMsg, TransferStage};
use crate::state::{AnchorState, DestState, MhhClient, OutboundState, StreamState, TqState};

/// Number of stored events the origin streams per pacing tick during event
/// migration (one batched transfer message per tick). Pacing keeps the
/// migration stoppable (Section 4.3) without adding measurable delay for the
/// first events.
const STREAM_BATCH: usize = 32;

/// Interval between streaming batches at the origin.
const STREAM_TICK: SimDuration = SimDuration::from_millis(20);

/// How many times an un-acked `sub_migration` is re-sent (recovery mode
/// only) before the origin gives up and keeps the subscription rooted here.
const MAX_MIGRATION_RETRIES: u32 = 3;

/// Per-broker MHH protocol state: one [`MhhClient`] record per client this
/// broker currently plays a role for.
#[derive(Debug, Default, Clone)]
pub struct Mhh {
    clients: BTreeMap<ClientId, MhhClient>,
    /// Watchdog interval for un-acked outbound migrations. `None` (the
    /// default, [`Mhh::new`]) disables recovery entirely: no timers are
    /// armed and no retransmissions happen, so fault-free runs are
    /// bit-identical to the pre-recovery protocol. Fault-injected runs
    /// construct the protocol with [`Mhh::with_recovery`] instead.
    retry: Option<SimDuration>,
}

type Ctx<'a> = BrokerCtx<'a, MhhMsg>;

impl Mhh {
    /// Create an empty protocol instance (one per broker).
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a protocol instance with crash recovery enabled: outbound
    /// migrations are watched by a retry timer of the given interval
    /// (re-sent a bounded number of times, then abandoned so the
    /// origin keeps anchoring the subscription), and
    /// [`MobilityProtocol::on_restart`] re-arms timers and in-flight
    /// exchanges lost in a crash.
    pub fn with_recovery(retry: SimDuration) -> Self {
        Mhh {
            clients: BTreeMap::new(),
            retry: Some(retry),
        }
    }

    /// Access the per-client state (primarily for tests and invariant
    /// checks).
    pub fn client_state(&self, client: ClientId) -> Option<&MhhClient> {
        self.clients.get(&client)
    }

    /// Number of clients this broker currently tracks.
    pub fn tracked_clients(&self) -> usize {
        self.clients.len()
    }

    fn entry(&mut self, client: ClientId, filter: &Filter) -> &mut MhhClient {
        self.clients
            .entry(client)
            .or_insert_with(|| MhhClient::new(filter.clone()))
    }

    fn entry_unknown(&mut self, client: ClientId) -> &mut MhhClient {
        self.clients
            .entry(client)
            .or_insert_with(|| MhhClient::new(Filter::match_all()))
    }
}

/// Does this broker still need events matching `filter` for any peer other
/// than the excluded ones? Used to decide the `cancel_prev` flag of
/// `sub_migration` (the "whether the sender will cancel the filter"
/// indication of Section 4.1). Deliberately liberal: any related filter
/// (covering in either direction) counts as "still needed", so entries are
/// never deleted while some other subscriber could still depend on them.
fn filter_needed_excluding(core: &BrokerCore, filter: &Filter, excluded: &[Peer]) -> bool {
    core.filters.entries().any(|e| {
        !excluded.contains(&e.peer) && (e.filter.covers(filter) || filter.covers(&e.filter))
    })
}

/// Start an outbound subscription migration from this broker toward `dest`
/// (this broker is the origin `Bo`).
fn start_outbound(
    st: &mut MhhClient,
    core: &mut BrokerCore,
    client: ClientId,
    dest: BrokerId,
    retry: Option<SimDuration>,
    ctx: &mut Ctx<'_>,
) {
    if dest == core.id {
        return;
    }
    let filter = st.filter.clone();
    let first_hop = core.next_hop_to(dest);
    // Step 1 (paper 4.1): the first hop becomes interested in the filter.
    core.filters.add(Peer::Broker(first_hop), filter.clone());
    // Step 2: only accept events for the client that arrive from the first
    // hop (in-transit events still flowing back along the old path).
    core.filters
        .set_label(Peer::Client(client), &filter, Some(Peer::Broker(first_hop)));
    // Step 3: notify the next broker on the path.
    let cancel_prev = !filter_needed_excluding(
        core,
        &filter,
        &[Peer::Broker(first_hop), Peer::Client(client)],
    );
    ctx.send_protocol(
        first_hop,
        MhhMsg::SubMigration {
            client,
            filter: filter.clone(),
            dest,
            origin: core.id,
            cancel_prev,
        },
    );
    st.outbound = Some(OutboundState {
        dest,
        first_hop,
        filter,
        attempt: 0,
    });
    if let Some(interval) = retry {
        ctx.schedule_protocol(interval, MhhMsg::MigrationRetry { client, attempt: 0 });
    }
}

/// Stream up to one batch of locally stored PQ-list events toward the
/// migration destination. Returns after scheduling a pacing tick when more
/// local events remain; otherwise closes the streaming phase by sending the
/// manifest of the remaining (remote or stopped) elements plus the
/// `deliver_TQ` chain trigger.
fn stream_batch(st: &mut MhhClient, core: &mut BrokerCore, client: ClientId, ctx: &mut Ctx<'_>) {
    let Some(stream) = st.stream.as_mut() else {
        return;
    };
    let dest = stream.dest;
    let mut batch: Vec<Event> = Vec::new();
    if !stream.stopped {
        while batch.len() < STREAM_BATCH {
            let Some(&head) = stream.list.front() else {
                break;
            };
            if head.broker != core.id {
                break;
            }
            let Some(queue) = st.local.get_mut(&head.seq) else {
                stream.list.pop_front();
                continue;
            };
            match queue.pop() {
                Some(ev) => batch.push(ev),
                None => {
                    st.local.remove(&head.seq);
                    stream.list.pop_front();
                }
            }
        }
    }
    if !batch.is_empty() {
        ctx.send_protocol(
            dest,
            MhhMsg::PqTransfer {
                client,
                events: batch,
                stage: TransferStage::PqList,
            },
        );
    }
    let more_local = !stream.stopped
        && stream
            .list
            .front()
            .map(|head| head.broker == core.id)
            .unwrap_or(false);
    if more_local {
        ctx.schedule_protocol(STREAM_TICK, MhhMsg::StreamTick { client });
        return;
    }
    // Done (or stopped): hand the remaining list to the destination and kick
    // off the temporary-queue chain.
    let stream = st.stream.take().expect("stream state present");
    ctx.send_protocol(
        stream.dest,
        MhhMsg::Manifest {
            client,
            remaining: stream.list.into_iter().collect(),
        },
    );
    ctx.send_protocol(
        stream.first_hop,
        MhhMsg::DeliverTq {
            client,
            dest: stream.dest,
        },
    );
}

/// Close a path broker's capture window: ship the TQ contents to the
/// migration destination and pass the `deliver_TQ` chain on to the next
/// hop. Only called once the next hop's `sub_migration_ack` has arrived
/// (every old-direction in-transit event precedes the ack, per-link FIFO),
/// so the queue is complete.
fn flush_tq(st: &mut MhhClient, _core: &mut BrokerCore, client: ClientId, ctx: &mut Ctx<'_>) {
    let Some(mut tq) = st.tq.take() else { return };
    let dest = tq.dest;
    let events = tq.queue.drain();
    if !events.is_empty() {
        ctx.send_protocol(
            dest,
            MhhMsg::PqTransfer {
                client,
                events,
                stage: TransferStage::Tq,
            },
        );
    }
    ctx.send_protocol(tq.next, MhhMsg::DeliverTq { client, dest });
}

/// Drain the next PQ-list element at a destination broker. Local elements
/// are delivered (or parked) immediately; the first remote element triggers a
/// `drain_request` and the walk pauses until `drain_complete` arrives.
fn pull_next(st: &mut MhhClient, core: &mut BrokerCore, client: ClientId, ctx: &mut Ctx<'_>) {
    loop {
        let next_elem = {
            let Some(d) = st.dest.as_mut() else { return };
            if d.aborted || d.pulling.is_some() {
                return;
            }
            let Some(rem) = d.remaining.as_mut() else {
                return;
            };
            match rem.pop_front() {
                None => return,
                Some(e) => e,
            }
        };
        if next_elem.broker == core.id {
            let events: Vec<Event> = st
                .take_local(next_elem)
                .map(|mut q| q.drain())
                .unwrap_or_default();
            let d = st.dest.as_mut().expect("dest state present");
            for ev in events {
                if d.client_connected && !d.aborted {
                    core.deliver(client, ev, ctx);
                } else {
                    d.imm.push(ev);
                }
            }
            continue;
        } else {
            let d = st.dest.as_mut().expect("dest state present");
            d.pulling = Some(next_elem);
            ctx.send_protocol(
                next_elem.broker,
                MhhMsg::DrainRequest {
                    client,
                    pq: next_elem,
                },
            );
            return;
        }
    }
}

/// Close a finished inbound migration: either hand everything to the
/// connected client (normal completion) or park the queues and become the
/// client's new anchor (aborted handoff / proclaimed move whose client has
/// not arrived yet).
fn finalize_dest(
    st: &mut MhhClient,
    core: &mut BrokerCore,
    client: ClientId,
    retry: Option<SimDuration>,
    ctx: &mut Ctx<'_>,
) {
    let Some(d) = st.dest.take() else { return };
    let mut d = d;
    if d.client_connected && !d.aborted {
        // Deliver any buffered immigrant events (only non-empty when the
        // client arrived after they did), then the TQ captures, then the
        // events that arrived over the new route — exactly the PQ-list order.
        for ev in d.imm.drain() {
            core.deliver(client, ev, ctx);
        }
        for ev in d.tq_buf.drain() {
            core.deliver(client, ev, ctx);
        }
        if let Some(mut q) = d.new_q.take() {
            for ev in q.drain() {
                core.deliver(client, ev, ctx);
            }
        }
        st.anchor = Some(AnchorState::default());
        // Any deferred handoff request is stale if the client is attached
        // right here again.
        st.pending_handoff = None;
    } else {
        // Build the new distributed PQ-list: events already migrated here,
        // then the elements left where they were, then the TQ captures, then
        // the queue that keeps collecting newly arriving events.
        let mut list = Vec::new();
        if !d.imm.is_empty() {
            list.push(d.imm.id);
            st.park(d.imm);
        }
        if let Some(rem) = d.remaining.take() {
            list.extend(rem);
        }
        if !d.tq_buf.is_empty() {
            list.push(d.tq_buf.id);
            st.park(d.tq_buf);
        }
        let new_q = d
            .new_q
            .take()
            .unwrap_or_else(|| EventQueue::new(core.alloc_pq_id(client), QueueKind::Persistent));
        let open_id = new_q.id;
        list.push(open_id);
        st.park(new_q);
        st.anchor = Some(AnchorState {
            list,
            open: Some(open_id),
        });
        if let Some(next_broker) = st.pending_handoff.take() {
            start_outbound(st, core, client, next_broker, retry, ctx);
        }
    }
}

/// The client reconnected at the broker that is already its anchor (or it is
/// its very first attachment): deliver everything stored locally (and pull
/// any remote PQ-list elements) in order, then go live.
fn handle_local_resume(
    st: &mut MhhClient,
    core: &mut BrokerCore,
    client: ClientId,
    retry: Option<SimDuration>,
    ctx: &mut Ctx<'_>,
) {
    let anchor = st.anchor.take().unwrap_or_default();
    if anchor.list.is_empty() {
        st.anchor = Some(AnchorState::default());
        return;
    }
    // Reuse the destination-drain machinery with this broker as both origin
    // and destination: no subscription migration and no TQ chain are needed.
    let imm = EventQueue::new(core.alloc_pq_id(client), QueueKind::Persistent);
    let tq_buf = EventQueue::new(core.alloc_pq_id(client), QueueKind::Temporary);
    let mut d = DestState::new(core.id, st.filter.clone(), true, imm, tq_buf);
    d.got_sub_migration = true;
    d.tq_done = true;
    d.remaining = Some(VecDeque::from(anchor.list));
    d.new_q = Some(EventQueue::new(
        core.alloc_pq_id(client),
        QueueKind::Persistent,
    ));
    st.dest = Some(d);
    pull_next(st, core, client, ctx);
    if st.dest.as_ref().map(|d| d.finished()).unwrap_or(false) {
        finalize_dest(st, core, client, retry, ctx);
    }
}

impl MobilityProtocol for Mhh {
    type Msg = MhhMsg;

    fn name(&self) -> &'static str {
        "MHH"
    }

    fn on_client_connect(&mut self, core: &mut BrokerCore, info: ConnectInfo, ctx: &mut Ctx<'_>) {
        let retry = self.retry;
        let client = info.client;
        let st = self.entry(client, &info.filter);
        st.filter = info.filter.clone();

        // Case 1: an inbound migration for this client is still in progress
        // here (the client bounced back, or a proclaimed-move client arrived).
        if st.dest.is_some() {
            {
                let d = st.dest.as_mut().expect("checked above");
                d.client_connected = true;
                d.aborted = false;
                let backlog: Vec<Event> = d.imm.drain();
                for ev in backlog {
                    core.deliver(client, ev, ctx);
                }
            }
            pull_next(st, core, client, ctx);
            if st.dest.as_ref().map(|d| d.finished()).unwrap_or(false) {
                finalize_dest(st, core, client, retry, ctx);
            }
            return;
        }

        match info.last_broker {
            // Case 2: reconnect at the same broker (or first attachment):
            // everything the client needs is already rooted here.
            None => {
                core.apply_subscribe(Peer::Client(client), info.filter.clone(), false, ctx);
                handle_local_resume(st, core, client, retry, ctx);
            }
            Some(last) if last == core.id => {
                handle_local_resume(st, core, client, retry, ctx);
            }
            // Case 3: silent move — ask the last-visited broker to start the
            // multi-hop handoff (Section 4.2).
            Some(origin) => {
                let imm = EventQueue::new(core.alloc_pq_id(client), QueueKind::Persistent);
                let tq_buf = EventQueue::new(core.alloc_pq_id(client), QueueKind::Temporary);
                st.dest = Some(DestState::new(
                    origin,
                    info.filter.clone(),
                    true,
                    imm,
                    tq_buf,
                ));
                ctx.send_protocol(
                    origin,
                    MhhMsg::HandoffRequest {
                        client,
                        new_broker: core.id,
                        filter: info.filter.clone(),
                    },
                );
            }
        }
    }

    fn on_client_disconnect(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        filter: Filter,
        proclaimed_dest: Option<BrokerId>,
        ctx: &mut Ctx<'_>,
    ) {
        let retry = self.retry;
        let st = self.entry(client, &filter);
        if !filter.is_empty() {
            st.filter = filter;
        }

        // Disconnecting in the middle of an inbound migration: abort it
        // (frequent moving, Section 4.3). The queues that have not been
        // drained yet stay where they are, and the origin is told to stop
        // streaming its stored queue.
        if let Some(d) = st.dest.as_mut() {
            d.client_connected = false;
            d.aborted = true;
            let origin = d.origin;
            let finished = d.finished();
            // A proclaimed departure names where the client goes next; keep
            // it so the finalized queues migrate there instead of stranding
            // in an anchor the overlay no longer routes to.
            if let Some(next) = proclaimed_dest {
                if next != core.id {
                    st.pending_handoff = Some(next);
                }
            }
            if origin != core.id {
                ctx.send_protocol(origin, MhhMsg::StopEventMigration { client });
            }
            if finished {
                finalize_dest(st, core, client, retry, ctx);
            }
            return;
        }

        // Normal disconnection of a live client: open a persistent queue for
        // the events that keep arriving (the PQ of Section 4.2).
        let pq_id = core.alloc_pq_id(client);
        let queue = EventQueue::new(pq_id, QueueKind::Persistent);
        st.park(queue);
        let anchor = st.anchor.get_or_insert_with(AnchorState::default);
        anchor.list.push(pq_id);
        anchor.open = Some(pq_id);

        // Proclaimed move: begin migrating toward the announced destination
        // right away (Section 4.1).
        if let Some(dest) = proclaimed_dest {
            if dest != core.id {
                start_outbound(st, core, client, dest, retry, ctx);
            }
        }
    }

    fn on_protocol_msg(
        &mut self,
        core: &mut BrokerCore,
        from: BrokerId,
        msg: MhhMsg,
        ctx: &mut Ctx<'_>,
    ) {
        let retry = self.retry;
        match msg {
            MhhMsg::HandoffRequest {
                client,
                new_broker,
                filter,
            } => {
                let st = self.entry(client, &filter);
                st.filter = filter.clone();
                if new_broker == core.id {
                    return;
                }
                if st.dest.is_some() {
                    // We are still catching up on an inbound migration for
                    // this client; serve the new request when it completes.
                    st.pending_handoff = Some(new_broker);
                    return;
                }
                if let Some(ob) = st.outbound.as_ref() {
                    // Pure origin: the root is already moving to `ob.dest`
                    // and nothing here ever finalizes, so a parked request
                    // would rot. Let the new root serve it instead.
                    ctx.send_protocol(
                        ob.dest,
                        MhhMsg::HandoffRequest {
                            client,
                            new_broker,
                            filter,
                        },
                    );
                    return;
                }
                if st.anchor.is_none() {
                    st.anchor = Some(AnchorState::default());
                }
                start_outbound(st, core, client, new_broker, retry, ctx);
            }

            MhhMsg::SubMigration {
                client,
                filter,
                dest,
                origin,
                cancel_prev,
            } => {
                let st = self.entry(client, &filter);
                st.filter = filter.clone();
                if cancel_prev {
                    // The sender no longer needs the filter — unless *we*
                    // re-established that very entry as the route of a newer
                    // migration for the same client (crossing migrations: a
                    // proclaimed move and the handoff triggered by the
                    // misproclaimed reconnect can travel the same link in
                    // opposite roles). Removing it then black-holes the
                    // filter until an unrelated migration repairs the path.
                    let route_of_newer =
                        st.outbound.as_ref().is_some_and(|ob| ob.first_hop == from)
                            || st.tq.as_ref().is_some_and(|tq| tq.next == from);
                    if !route_of_newer {
                        core.filters.remove(Peer::Broker(from), &filter);
                    }
                }
                if core.id == dest {
                    // Destination broker: the subscription now roots here.
                    // The entry may already exist with a stale capture-window
                    // label (this broker was a path broker of an earlier
                    // migration); the root entry must accept events from any
                    // direction — unless we have *already* started migrating
                    // the root onward (outbound in flight), in which case the
                    // entry is the capture window of that newer migration.
                    core.filters.add(Peer::Client(client), filter.clone());
                    let label = st.outbound.as_ref().map(|ob| Peer::Broker(ob.first_hop));
                    core.filters.set_label(Peer::Client(client), &filter, label);
                    let connected = core.is_connected(client);
                    if st.dest.is_none() {
                        let imm = EventQueue::new(core.alloc_pq_id(client), QueueKind::Persistent);
                        let tq_buf =
                            EventQueue::new(core.alloc_pq_id(client), QueueKind::Temporary);
                        st.dest = Some(DestState::new(
                            origin,
                            filter.clone(),
                            connected,
                            imm,
                            tq_buf,
                        ));
                    }
                    let d = st.dest.as_mut().expect("destination state present");
                    d.got_sub_migration = true;
                    d.filter = filter.clone();
                    if d.new_q.is_none() {
                        d.new_q = Some(EventQueue::new(
                            core.alloc_pq_id(client),
                            QueueKind::Persistent,
                        ));
                    }
                    ctx.send_protocol(from, MhhMsg::SubMigrationAck { client });
                    if st.dest.as_ref().map(|d| d.finished()).unwrap_or(false) {
                        finalize_dest(st, core, client, retry, ctx);
                    }
                } else {
                    // Broker on the path: re-point the overlay entries,
                    // capture in-transit events, acknowledge and forward.
                    let next = core.next_hop_to(dest);
                    core.filters.add(Peer::Broker(next), filter.clone());
                    let inserted = core.filters.add(Peer::Client(client), filter.clone());
                    if inserted || !core.is_connected(client) {
                        // Point the capture window at the next hop, refreshing
                        // a stale label from an earlier migration through this
                        // broker. A live root entry (client connected here,
                        // racing migration passing through) keeps accepting
                        // events from every direction instead.
                        core.filters.set_label(
                            Peer::Client(client),
                            &filter,
                            Some(Peer::Broker(next)),
                        );
                    }
                    // Recovery mode only: a retransmitted sub_migration for a
                    // window we already hold (the ack was lost in an outage)
                    // must not overwrite the temporary queue — the captured
                    // events would vanish. Keep it and just re-acknowledge.
                    let duplicate = retry.is_some()
                        && st
                            .tq
                            .as_ref()
                            .is_some_and(|tq| tq.next == next && tq.dest == dest);
                    if !duplicate {
                        st.tq = Some(TqState {
                            queue: EventQueue::new(core.alloc_pq_id(client), QueueKind::Temporary),
                            next,
                            dest,
                            acked: false,
                            deliver_pending: None,
                        });
                    }
                    ctx.send_protocol(from, MhhMsg::SubMigrationAck { client });
                    let cancel = !filter_needed_excluding(
                        core,
                        &filter,
                        &[Peer::Broker(next), Peer::Client(client)],
                    );
                    ctx.send_protocol(
                        next,
                        MhhMsg::SubMigration {
                            client,
                            filter,
                            dest,
                            origin,
                            cancel_prev: cancel,
                        },
                    );
                }
            }

            MhhMsg::SubMigrationAck { client } => {
                let st = self.entry_unknown(client);
                let filter = st.filter.clone();
                // All in-transit events from the acking neighbor have been
                // flushed into our queue (FIFO), so stop accepting events for
                // the client here — but only close the capture window this
                // ack belongs to. An unlabeled entry is the client's *root*
                // (a newer crossing migration re-rooted the subscription
                // here); a different label belongs to a newer window. Either
                // way a stale ack must not tear it down.
                if core.filters.label_of(Peer::Client(client), &filter) == Some(Peer::Broker(from))
                {
                    core.filters.remove(Peer::Client(client), &filter);
                }
                // Path broker: the capture window is now safely closed — but
                // only an ack from *this* TQ's next hop closes it (a broker
                // can be origin of an older migration and path broker of a
                // newer one for the same client at once; the older ack must
                // not close the newer window). If the deliver_TQ chain
                // outran the ack (possible under link jitter), it parked
                // itself — resume it now.
                if let Some(tq) = st.tq.as_mut() {
                    if from == tq.next {
                        tq.acked = true;
                        if tq.deliver_pending.take().is_some() {
                            flush_tq(st, core, client, ctx);
                        }
                    }
                }
                if let Some(ob) = st.outbound.take() {
                    // Crossing migrations: an inbound migration for the same
                    // client is still landing here while the root has already
                    // been handed onward. Its queues would strand in a local
                    // anchor nothing routes to any more — re-migrate them to
                    // where the root went once the inbound leg finalizes.
                    if st.dest.is_some() && st.pending_handoff.is_none() {
                        st.pending_handoff = Some(ob.dest);
                    }
                    // We are the origin: start event migration. The leading
                    // locally-held PQ-list elements are streamed in paced
                    // batches (so a stop_event_migration can halt them); once
                    // local streaming ends the rest of the list is handed to
                    // the destination and the TQ chain is kicked off.
                    let anchor = st.anchor.take().unwrap_or_default();
                    let list: VecDeque<PqId> = anchor.list.into();
                    let stopped = std::mem::take(&mut st.stop_requested);
                    st.stream = Some(StreamState {
                        dest: ob.dest,
                        first_hop: ob.first_hop,
                        list,
                        stopped,
                    });
                    stream_batch(st, core, client, ctx);
                }
                // Path brokers do nothing here: their TQ is complete and will
                // be flushed by the deliver_TQ chain.
            }

            MhhMsg::DeliverTq { client, dest } => {
                let st = self.entry_unknown(client);
                if core.id == dest {
                    if st.dest.is_some() {
                        {
                            let d = st.dest.as_mut().expect("checked above");
                            d.tq_done = true;
                        }
                        if st.dest.as_ref().map(|d| d.finished()).unwrap_or(false) {
                            finalize_dest(st, core, client, retry, ctx);
                        }
                    }
                } else if st.tq.as_ref().is_some_and(|tq| tq.dest == dest) {
                    // (A deliver_TQ whose dest differs belongs to an older
                    // migration whose TQ was overwritten; it falls through to
                    // the chain-forwarding arm so *its* chain stays alive
                    // instead of hijacking the newer TQ.)
                    let tq = st.tq.as_mut().expect("checked above");
                    if !tq.acked {
                        // The chain outran the next hop's ack (link jitter):
                        // old-direction events from the next hop may still be
                        // in flight, and FIFO only guarantees they precede
                        // the *ack*. Park the chain until it arrives — the
                        // capture window must not close early, or the
                        // stragglers would be dropped as stale (the exact
                        // loss the FIFO-under-jitter property test caught).
                        tq.deliver_pending = Some(dest);
                    } else {
                        flush_tq(st, core, client, ctx);
                    }
                } else {
                    // No TQ here (nothing was captured); keep the chain going.
                    let next = core.next_hop_to(dest);
                    ctx.send_protocol(next, MhhMsg::DeliverTq { client, dest });
                }
            }

            MhhMsg::PqTransfer {
                client,
                events,
                stage,
            } => {
                let connected = core.is_connected(client);
                let st = self.entry_unknown(client);
                if st.dest.is_none() {
                    let imm = EventQueue::new(core.alloc_pq_id(client), QueueKind::Persistent);
                    let tq_buf = EventQueue::new(core.alloc_pq_id(client), QueueKind::Temporary);
                    let filter = st.filter.clone();
                    st.dest = Some(DestState::new(from, filter, connected, imm, tq_buf));
                }
                let d = st.dest.as_mut().expect("destination state present");
                for event in events {
                    match stage {
                        TransferStage::PqList => {
                            if d.client_connected && !d.aborted {
                                core.deliver(client, event, ctx);
                            } else {
                                d.imm.push(event);
                            }
                        }
                        TransferStage::Tq => d.tq_buf.push(event),
                    }
                }
            }

            MhhMsg::Manifest { client, remaining } => {
                let st = self.entry_unknown(client);
                if let Some(d) = st.dest.as_mut() {
                    d.remaining = Some(remaining.into());
                } else {
                    let connected = core.is_connected(client);
                    let imm = EventQueue::new(core.alloc_pq_id(client), QueueKind::Persistent);
                    let tq_buf = EventQueue::new(core.alloc_pq_id(client), QueueKind::Temporary);
                    let filter = st.filter.clone();
                    let mut d = DestState::new(from, filter, connected, imm, tq_buf);
                    d.remaining = Some(remaining.into());
                    st.dest = Some(d);
                }
                pull_next(st, core, client, ctx);
                if st.dest.as_ref().map(|d| d.finished()).unwrap_or(false) {
                    finalize_dest(st, core, client, retry, ctx);
                }
            }

            MhhMsg::DrainRequest { client, pq } => {
                let st = self.entry_unknown(client);
                if let Some(mut q) = st.take_local(pq) {
                    let events = q.drain();
                    if !events.is_empty() {
                        ctx.send_protocol(
                            from,
                            MhhMsg::PqTransfer {
                                client,
                                events,
                                stage: TransferStage::PqList,
                            },
                        );
                    }
                }
                ctx.send_protocol(from, MhhMsg::DrainComplete { client, pq });
            }

            MhhMsg::StreamTick { client } => {
                let st = self.entry_unknown(client);
                stream_batch(st, core, client, ctx);
            }

            MhhMsg::StopEventMigration { client } => {
                // The destination aborted the handoff; leave whatever has not
                // been streamed yet parked here as PQ-list elements.
                let st = self.entry_unknown(client);
                match st.stream.as_mut() {
                    Some(stream) => stream.stopped = true,
                    // The stop outran the first-hop acknowledgement: remember
                    // it so streaming never starts.
                    None if st.outbound.is_some() => st.stop_requested = true,
                    None => {}
                }
                stream_batch(st, core, client, ctx);
            }

            MhhMsg::DrainComplete { client, pq } => {
                let st = self.entry_unknown(client);
                if let Some(d) = st.dest.as_mut() {
                    if d.pulling == Some(pq) {
                        d.pulling = None;
                    }
                }
                pull_next(st, core, client, ctx);
                if st.dest.as_ref().map(|d| d.finished()).unwrap_or(false) {
                    finalize_dest(st, core, client, retry, ctx);
                }
            }

            MhhMsg::MigrationRetry { client, attempt } => {
                // Watchdog for an un-acked outbound migration (recovery mode
                // only — never armed otherwise). If the ack arrived in the
                // meantime the outbound state is gone and the timer is moot;
                // a timer from a superseded attempt is ignored too.
                let Some(interval) = retry else { return };
                let st = self.entry_unknown(client);
                let Some(ob) = st.outbound.as_mut() else {
                    return;
                };
                if ob.attempt != attempt {
                    return;
                }
                if attempt + 1 >= MAX_MIGRATION_RETRIES {
                    // Give up: the first hop (or the path beyond it) stayed
                    // unreachable across every attempt. Keep the subscription
                    // rooted here — clearing the accept-only-from label lets
                    // events flow into the local anchor again, and the
                    // client's next reconnect triggers a fresh handoff from
                    // this broker. The first-hop filter entry is left in
                    // place: at worst it forwards copies toward a region the
                    // fault schedule is already dropping, and removing it
                    // could sever an unrelated subscriber with the same
                    // filter.
                    let filter = ob.filter.clone();
                    st.outbound = None;
                    st.stream = None;
                    core.filters.set_label(Peer::Client(client), &filter, None);
                    if st.anchor.is_none() {
                        st.anchor = Some(AnchorState::default());
                    }
                    return;
                }
                ob.attempt = attempt + 1;
                let next_attempt = ob.attempt;
                let (first_hop, dest, filter) = (ob.first_hop, ob.dest, ob.filter.clone());
                // Re-send without cancel_prev: the first attempt already
                // decided whether the previous-path entry should go.
                ctx.send_protocol(
                    first_hop,
                    MhhMsg::SubMigration {
                        client,
                        filter,
                        dest,
                        origin: core.id,
                        cancel_prev: false,
                    },
                );
                ctx.schedule_protocol(
                    interval,
                    MhhMsg::MigrationRetry {
                        client,
                        attempt: next_attempt,
                    },
                );
            }
        }
    }

    fn on_client_event(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        event: Event,
        _from: Peer,
        ctx: &mut Ctx<'_>,
    ) {
        let connected = core.is_connected(client);
        let Some(st) = self.clients.get_mut(&client) else {
            // No protocol state: the client is simply attached and live.
            if connected {
                core.deliver(client, event, ctx);
            }
            return;
        };
        if let Some(d) = st.dest.as_mut() {
            // Newly arriving event at a migration destination: buffered until
            // event migration finishes so older migrated events go first.
            match d.new_q.as_mut() {
                Some(q) => q.push(event),
                None => {
                    let mut q = EventQueue::new(core.alloc_pq_id(client), QueueKind::Persistent);
                    q.push(event);
                    d.new_q = Some(q);
                }
            }
            return;
        }
        if let Some(tq) = st.tq.as_mut() {
            // In-transit event captured on a migration path (the
            // accept-only-from label guarantees it came from the right
            // neighbor).
            tq.queue.push(event);
            return;
        }
        if let Some(anchor) = st.anchor.as_ref() {
            if let Some(open) = anchor.open {
                if let Some(q) = st.local.get_mut(&open.seq) {
                    q.push(event);
                    return;
                }
            }
            if connected {
                core.deliver(client, event, ctx);
                return;
            }
            // Anchor exists but no open queue and the client is away: open
            // one defensively rather than dropping the event.
            let pq_id = core.alloc_pq_id(client);
            let mut q = EventQueue::new(pq_id, QueueKind::Persistent);
            q.push(event);
            let anchor = st.anchor.as_mut().expect("anchor present");
            anchor.list.push(pq_id);
            anchor.open = Some(pq_id);
            st.park(q);
            return;
        }
        if connected {
            core.deliver(client, event, ctx);
        }
        // Otherwise the event matched a stale entry; dropping it here would
        // surface as loss in the delivery audit, which is the correct way to
        // expose a protocol bug.
    }

    fn on_restart(&mut self, core: &mut BrokerCore, ctx: &mut Ctx<'_>) {
        // A crash loses every pending timer and every in-flight message to or
        // from this broker; the durable part (filter table, connections,
        // protocol state) came back via the checkpoint. Re-arm whatever was
        // driven by the lost messages so no handoff stalls forever.
        let retry = self.retry;
        for (&client, st) in self.clients.iter_mut() {
            // The pacing timer of an event-migration stream died with us.
            if st.stream.is_some() {
                ctx.schedule_protocol(STREAM_TICK, MhhMsg::StreamTick { client });
            }
            // An outbound migration may have lost its sub_migration (sent
            // just before the crash) or the returning ack: re-send and start
            // a fresh watchdog generation. The path brokers treat the
            // retransmission as a duplicate of a window they already hold.
            if let Some(ob) = st.outbound.as_mut() {
                ob.attempt = 0;
                let first_hop = ob.first_hop;
                let dest = ob.dest;
                let filter = ob.filter.clone();
                ctx.send_protocol(
                    first_hop,
                    MhhMsg::SubMigration {
                        client,
                        filter,
                        dest,
                        origin: core.id,
                        cancel_prev: false,
                    },
                );
                if let Some(interval) = retry {
                    ctx.schedule_protocol(interval, MhhMsg::MigrationRetry { client, attempt: 0 });
                }
            }
            // A destination mid-drain may have lost the drain_request (or the
            // reply): ask again. A double drain is harmless — the holder
            // answers an already-drained queue with just drain_complete.
            if let Some(d) = st.dest.as_ref() {
                if let Some(pq) = d.pulling {
                    ctx.send_protocol(pq.broker, MhhMsg::DrainRequest { client, pq });
                }
            }
        }
    }

    fn buffered_events(&self) -> Vec<(ClientId, Event)> {
        self.clients
            .iter()
            .flat_map(|(c, st)| st.buffered().into_iter().map(move |e| (*c, e)))
            .collect()
    }

    fn buffered_bytes(&self) -> u64 {
        self.clients.values().map(MhhClient::buffered_bytes).sum()
    }
}
