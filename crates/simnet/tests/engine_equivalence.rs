//! Differential determinism tests: the overhauled engine (pooled 4-ary
//! event list, dense/sharded link clocks, scratch outbox, interned stats)
//! against the pre-overhaul [`ReferenceEngine`] (`BinaryHeap` + `HashMap` +
//! per-delivery allocation) on identical seeded workloads.
//!
//! The property: for any seeded scenario — including jittered, asymmetric
//! fabrics where the channel-clock clamp actually fires — both engines must
//! produce the *identical* delivery sequence (time, source, destination,
//! payload, in order) and identical traffic totals. The heap order
//! `(at, seq)` is total, so this is not "equivalent up to ties": it is
//! byte-for-byte equality, the same guarantee the pre-refactor goldens pin
//! end to end.

use std::sync::Arc;

use mhh_simnet::fabric::{JitteredFabric, LinkModel, UniformFabric};
use mhh_simnet::random::DetRng;
use mhh_simnet::stats::{ClassCounter, Message, TrafficClass};
use mhh_simnet::{
    Context, Engine, Envelope, Fabric, Node, NodeId, ReferenceEngine, SimDuration, SimTime,
};

/// A payload with a TTL so random cascades always terminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Chatter {
    tag: u64,
    ttl: u8,
}

impl Message for Chatter {
    fn traffic_class(&self) -> TrafficClass {
        // Spread across classes so the per-class array is exercised.
        match self.tag % 4 {
            0 => TrafficClass::EventRouting,
            1 => TrafficClass::MobilityControl,
            2 => TrafficClass::ClientControl,
            _ => TrafficClass::MobilityTransfer,
        }
    }
    fn kind(&self) -> &'static str {
        // Several distinct kinds so the interner sees real variety.
        match self.tag % 5 {
            0 => "chatter_a",
            1 => "chatter_b",
            2 => "chatter_c",
            3 => "chatter_d",
            _ => "chatter_e",
        }
    }
}

/// A node that reacts to every delivery with a deterministic (seeded) burst
/// of sends and timers. Its RNG advances once per delivery, so as long as
/// the two engines deliver the same sequence, the nodes stay in lockstep —
/// and the moment delivery order diverges, everything downstream diverges
/// loudly.
#[derive(Clone)]
struct Gossip {
    rng: DetRng,
    n: u32,
    log: Vec<(SimTime, NodeId, u64, u8)>,
}

impl Node<Chatter> for Gossip {
    fn on_message(&mut self, env: Envelope<Chatter>, ctx: &mut Context<Chatter>) {
        self.log
            .push((ctx.now(), env.from, env.msg.tag, env.msg.ttl));
        if env.msg.ttl == 0 {
            return;
        }
        let fanout = self.rng.next_below(4);
        for _ in 0..fanout {
            let to = NodeId(self.rng.next_below(self.n as u64) as u32);
            let tag = self.rng.next_u64();
            if to == ctx.self_id() {
                ctx.schedule(
                    SimDuration::from_micros(1 + self.rng.next_below(5_000)),
                    Chatter {
                        tag,
                        ttl: env.msg.ttl - 1,
                    },
                );
            } else {
                ctx.send(
                    to,
                    Chatter {
                        tag,
                        ttl: env.msg.ttl - 1,
                    },
                );
            }
        }
    }
}

fn make_nodes(n: u32, seed: u64) -> Vec<Gossip> {
    let mut root = DetRng::new(seed);
    (0..n)
        .map(|i| Gossip {
            rng: root.fork(i as u64 + 1),
            n,
            log: Vec::new(),
        })
        .collect()
}

fn fabric_for(seed: u64, jittered: bool) -> Arc<dyn Fabric> {
    if jittered {
        Arc::new(JitteredFabric::new(
            UniformFabric::new(SimDuration::from_millis(3)),
            LinkModel {
                seed,
                jitter: SimDuration::from_millis(40),
                asymmetry: 0.4,
                degraded: Vec::new(),
            },
        ))
    } else {
        Arc::new(UniformFabric::new(SimDuration::from_millis(3)))
    }
}

/// Inject the same seeded kick-off messages into both engines.
fn inject(seed: u64, n: u32, mut kick: impl FnMut(SimTime, NodeId, Chatter)) {
    let mut rng = DetRng::new(seed ^ 0x1113);
    for i in 0..24 {
        let at = SimTime::from_micros(rng.next_below(2_000));
        let to = NodeId(rng.next_below(n as u64) as u32);
        kick(
            at,
            to,
            Chatter {
                tag: rng.next_u64().wrapping_add(i),
                ttl: 6,
            },
        );
    }
}

fn collect_kinds(stats: &mhh_simnet::TrafficStats) -> Vec<(String, ClassCounter)> {
    stats.kinds().map(|(k, c)| (k.to_string(), c)).collect()
}

/// Run the same scenario through both engines, return (logs, stats summary).
fn compare_engines(seed: u64, n: u32, jittered: bool, horizons: &[SimTime]) {
    let nodes = make_nodes(n, seed);

    let mut new_eng = Engine::new(nodes.clone(), fabric_for(seed, jittered));
    inject(seed, n, |at, to, msg| {
        new_eng.schedule_external(at, to, msg)
    });
    let mut old_eng = ReferenceEngine::new(nodes, fabric_for(seed, jittered));
    inject(seed, n, |at, to, msg| {
        old_eng.schedule_external(at, to, msg)
    });

    // Interleave horizon-bounded runs (exercising the restructured
    // single-pop `run_until`) with a final drain.
    for &h in horizons {
        new_eng.run_until(h);
        old_eng.run_until(h);
        assert_eq!(new_eng.now(), old_eng.now(), "seed {seed}: clocks diverged");
        assert_eq!(new_eng.deliveries(), old_eng.deliveries(), "seed {seed}");
    }
    new_eng.run_to_completion();
    old_eng.run_to_completion();

    assert_eq!(new_eng.deliveries(), old_eng.deliveries(), "seed {seed}");
    assert_eq!(new_eng.now(), old_eng.now(), "seed {seed}");

    let new_stats = new_eng.stats();
    let old_stats = old_eng.stats(); // owned: legacy internals convert out
    assert_eq!(new_stats.total_messages(), old_stats.total_messages());
    assert_eq!(new_stats.total_hops(), old_stats.total_hops());
    assert_eq!(new_stats.mobility_hops(), old_stats.mobility_hops());
    assert_eq!(collect_kinds(new_stats), collect_kinds(&old_stats));
    assert_eq!(
        format!("{new_stats:?}"),
        format!("{old_stats:?}"),
        "seed {seed}: stats rendering diverged"
    );

    for i in 0..n {
        let a = &new_eng.node(NodeId(i)).log;
        let b = &old_eng.node(NodeId(i)).log;
        assert_eq!(a, b, "seed {seed}: node {i} saw a different sequence");
    }
}

#[test]
fn constant_latency_scenarios_match_the_reference_engine() {
    for seed in 0..6u64 {
        compare_engines(
            seed,
            12,
            false,
            &[SimTime::from_millis(5), SimTime::from_millis(20)],
        );
    }
}

#[test]
fn jittered_scenarios_match_the_reference_engine() {
    // Jitter makes the channel-clock clamp fire, which is exactly where a
    // representation bug in LinkClocks would reorder deliveries.
    for seed in 0..6u64 {
        compare_engines(
            seed,
            12,
            true,
            &[SimTime::from_millis(10), SimTime::from_millis(50)],
        );
    }
}

/// Above `DENSE_NODE_LIMIT` the engine switches to the sharded clock table;
/// the delivery sequence must not notice. (The node count is what selects
/// the representation, so this runs a genuinely sharded engine.)
#[test]
fn sharded_clock_engine_matches_the_reference_engine() {
    let n = (mhh_simnet::clocks::DENSE_NODE_LIMIT + 5) as u32;
    for seed in 0..2u64 {
        compare_engines(seed, n, true, &[SimTime::from_millis(15)]);
    }
}

/// `run_until` on the new engine must behave exactly like peek-then-step:
/// stopping at every horizon leaves the same pending count and clock as one
/// uninterrupted run.
#[test]
fn run_until_in_small_increments_equals_one_drain() {
    let seed = 99u64;
    let n = 10u32;
    let nodes = make_nodes(n, seed);
    let mut stepped = Engine::new(nodes.clone(), fabric_for(seed, true));
    inject(seed, n, |at, to, msg| {
        stepped.schedule_external(at, to, msg)
    });
    let mut drained = Engine::new(nodes, fabric_for(seed, true));
    inject(seed, n, |at, to, msg| {
        drained.schedule_external(at, to, msg)
    });

    let mut h = SimTime::ZERO;
    loop {
        h += SimDuration::from_millis(2);
        match stepped.run_until(h) {
            mhh_simnet::RunOutcome::Drained => break,
            _ => continue,
        }
    }
    drained.run_to_completion();
    assert_eq!(stepped.deliveries(), drained.deliveries());
    assert_eq!(stepped.now(), drained.now());
    for i in 0..n {
        assert_eq!(
            stepped.node(NodeId(i)).log,
            drained.node(NodeId(i)).log,
            "node {i}"
        );
    }
}
