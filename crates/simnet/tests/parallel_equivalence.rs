//! Differential byte-identity tests: the sharded windowed [`ParallelEngine`]
//! against the serial [`Engine`] on identical seeded workloads.
//!
//! The property is strict equality, not statistical agreement: for every
//! cell of seeds × fabrics × worker counts × fault plans, the parallel run
//! must reproduce the serial run's per-node delivery logs (time, source,
//! payload, in order), delivery count, final clock, rendered traffic
//! statistics, and fault drop log. The serial total order `(at, seq)` is
//! reconstructed exactly at each window barrier, so any divergence —
//! lookahead clipped too loosely, a handoff mis-keyed, a provisional
//! sequence renumbered out of order — fails loudly here.

use std::sync::Arc;

use mhh_simnet::fabric::{GridFabric, JitteredFabric, LinkModel, UniformFabric};
use mhh_simnet::random::DetRng;
use mhh_simnet::stats::{Message, TrafficClass};
use mhh_simnet::topology::Network;
use mhh_simnet::{
    Context, DropRecord, Engine, Envelope, Fabric, FaultSchedule, Node, NodeId, ParallelEngine,
    Partition, RunOutcome, SimDuration, SimTime,
};

/// A payload with a TTL so random cascades always terminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Chatter {
    tag: u64,
    ttl: u8,
}

impl Message for Chatter {
    fn traffic_class(&self) -> TrafficClass {
        match self.tag % 4 {
            0 => TrafficClass::EventRouting,
            1 => TrafficClass::MobilityControl,
            2 => TrafficClass::ClientControl,
            _ => TrafficClass::MobilityTransfer,
        }
    }
    fn kind(&self) -> &'static str {
        match self.tag % 5 {
            0 => "chatter_a",
            1 => "chatter_b",
            2 => "chatter_c",
            3 => "chatter_d",
            _ => "chatter_e",
        }
    }
}

/// A node that reacts to every delivery with a deterministic (seeded)
/// burst of sends and timers. Its RNG advances once per delivery, so the
/// instant delivery order diverges between backends, everything downstream
/// diverges loudly.
#[derive(Clone)]
struct Gossip {
    rng: DetRng,
    n: u32,
    log: Vec<(SimTime, NodeId, u64, u8)>,
}

impl Node<Chatter> for Gossip {
    fn on_message(&mut self, env: Envelope<Chatter>, ctx: &mut Context<Chatter>) {
        self.log
            .push((ctx.now(), env.from, env.msg.tag, env.msg.ttl));
        if env.msg.ttl == 0 {
            return;
        }
        let fanout = self.rng.next_below(4);
        for _ in 0..fanout {
            let to = NodeId(self.rng.next_below(self.n as u64) as u32);
            let tag = self.rng.next_u64();
            let msg = Chatter {
                tag,
                ttl: env.msg.ttl - 1,
            };
            if to == ctx.self_id() {
                ctx.schedule(
                    SimDuration::from_micros(1 + self.rng.next_below(5_000)),
                    msg,
                );
            } else {
                ctx.send(to, msg);
            }
        }
    }
}

fn make_nodes(n: u32, seed: u64) -> Vec<Gossip> {
    let mut root = DetRng::new(seed);
    (0..n)
        .map(|i| Gossip {
            rng: root.fork(i as u64 + 1),
            n,
            log: Vec::new(),
        })
        .collect()
}

/// The fabric dimension of the property grid.
#[derive(Clone, Copy, Debug)]
enum FabricKind {
    Constant,
    Jittered,
    Grid,
}

/// The grid scenario's broker network: a 4×4 grid, 16 brokers; nodes
/// 16..n are clients homed round-robin.
const GRID_SIDE: usize = 4;
const GRID_BROKERS: usize = GRID_SIDE * GRID_SIDE;

fn fabric_for(kind: FabricKind, seed: u64) -> Arc<dyn Fabric> {
    match kind {
        FabricKind::Constant => Arc::new(UniformFabric::new(SimDuration::from_millis(3))),
        FabricKind::Jittered => Arc::new(JitteredFabric::new(
            UniformFabric::new(SimDuration::from_millis(3)),
            LinkModel {
                seed,
                jitter: SimDuration::from_millis(25),
                asymmetry: 0.4,
                degraded: Vec::new(),
            },
        )),
        FabricKind::Grid => Arc::new(GridFabric::new(
            Arc::new(Network::grid(GRID_SIDE, seed)),
            SimDuration::from_millis(2),
            SimDuration::from_millis(5),
        )),
    }
}

fn partition_for(kind: FabricKind, n: usize, workers: usize, seed: u64) -> Partition {
    match kind {
        // The deployment-style partition: contiguous broker blocks,
        // clients following their home broker's shard.
        FabricKind::Grid => {
            let network = Network::grid(GRID_SIDE, seed);
            let homes: Vec<usize> = (0..n - GRID_BROKERS).map(|i| i % GRID_BROKERS).collect();
            Partition::broker_blocks(&network, &homes, workers)
        }
        _ => Partition::contiguous(n, workers),
    }
}

fn faults_for(faulted: bool, seed: u64, n: usize) -> Option<Arc<FaultSchedule>> {
    faulted.then(|| {
        // Storm windows concentrated inside the cascade's active period
        // (~40ms), so the fault path genuinely fires.
        Arc::new(FaultSchedule::crash_storm(
            seed ^ 0xFA17,
            n,
            12,
            SimTime::from_millis(40),
            SimDuration::from_millis(15),
        ))
    })
}

/// Everything the oracle compares, byte for byte.
type Fingerprint = (
    Vec<Vec<(SimTime, NodeId, u64, u8)>>,
    u64,
    SimTime,
    String,
    Vec<DropRecord>,
);

fn inject(seed: u64, n: u32, mut kick: impl FnMut(SimTime, NodeId, Chatter)) {
    let mut rng = DetRng::new(seed ^ 0x1113);
    for i in 0..24 {
        let at = SimTime::from_micros(rng.next_below(2_000));
        let to = NodeId(rng.next_below(n as u64) as u32);
        kick(
            at,
            to,
            Chatter {
                tag: rng.next_u64().wrapping_add(i),
                ttl: 6,
            },
        );
    }
}

fn run_serial(kind: FabricKind, seed: u64, n: u32, faulted: bool) -> Fingerprint {
    let mut eng = Engine::new(make_nodes(n, seed), fabric_for(kind, seed));
    if let Some(schedule) = faults_for(faulted, seed, n as usize) {
        eng.set_faults(schedule);
    }
    inject(seed, n, |at, to, msg| eng.schedule_external(at, to, msg));
    assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
    let deliveries = eng.deliveries();
    let drops = eng.drops().to_vec();
    let stats = format!("{:?}", eng.stats());
    let (nodes, _, now) = eng.into_parts();
    (
        nodes.into_iter().map(|nd| nd.log).collect(),
        deliveries,
        now,
        stats,
        drops,
    )
}

fn run_parallel(kind: FabricKind, seed: u64, n: u32, faulted: bool, workers: usize) -> Fingerprint {
    let part = partition_for(kind, n as usize, workers, seed);
    let mut eng = ParallelEngine::new(make_nodes(n, seed), fabric_for(kind, seed), &part);
    if let Some(schedule) = faults_for(faulted, seed, n as usize) {
        eng.set_faults(schedule);
    }
    inject(seed, n, |at, to, msg| eng.schedule_external(at, to, msg));
    assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
    let deliveries = eng.deliveries();
    let drops = eng.drops().to_vec();
    let stats = format!("{:?}", eng.stats());
    let (nodes, _, now) = eng.into_parts();
    (
        nodes.into_iter().map(|nd| nd.log).collect(),
        deliveries,
        now,
        stats,
        drops,
    )
}

/// The full property grid: every cell must agree byte for byte. One
/// serial fingerprint anchors each (fabric, seed, fault) row; the worker
/// dimension reuses it.
fn sweep_cells(kind: FabricKind, n: u32, seeds: std::ops::Range<u64>) {
    let mut total_drops = 0usize;
    for seed in seeds {
        for faulted in [false, true] {
            let serial = run_serial(kind, seed, n, faulted);
            if faulted {
                total_drops += serial.4.len();
            }
            for workers in [1usize, 2, 4, 8] {
                let parallel = run_parallel(kind, seed, n, faulted, workers);
                assert_eq!(
                    serial, parallel,
                    "{kind:?}/seed {seed}/faulted {faulted}/{workers} workers diverged"
                );
            }
        }
    }
    assert!(
        total_drops > 0,
        "{kind:?}: no seed's crash storm dropped anything — the faulted cells tested nothing"
    );
}

#[test]
fn constant_latency_cells_match_serial() {
    sweep_cells(FabricKind::Constant, 24, 0..4);
}

#[test]
fn jittered_cells_match_serial() {
    // Jitter exercises the FIFO clamp and the link-send-index sampling —
    // exactly where a partition-dependent jitter key would diverge.
    sweep_cells(FabricKind::Jittered, 24, 0..4);
}

#[test]
fn grid_topology_cells_match_serial() {
    // Grid fabric + broker-block partition: multi-hop wired latencies,
    // wireless client links, clients co-sharded with their home brokers.
    sweep_cells(FabricKind::Grid, (GRID_BROKERS + 8) as u32, 0..4);
}

/// A one-shard partition must be *exactly* the serial engine — the
/// degenerate case runs the same windowed code path with whole-horizon
/// windows, and nothing else.
#[test]
fn degenerate_partition_is_serial() {
    for kind in [FabricKind::Constant, FabricKind::Jittered] {
        let serial = run_serial(kind, 7, 16, true);
        let single = {
            let part = Partition::single(16);
            let mut eng = ParallelEngine::new(make_nodes(16, 7), fabric_for(kind, 7), &part);
            assert_eq!(eng.shard_count(), 1);
            if let Some(schedule) = faults_for(true, 7, 16) {
                eng.set_faults(schedule);
            }
            inject(7, 16, |at, to, msg| eng.schedule_external(at, to, msg));
            assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
            let deliveries = eng.deliveries();
            let drops = eng.drops().to_vec();
            let stats = format!("{:?}", eng.stats());
            let (nodes, _, now) = eng.into_parts();
            (
                nodes.into_iter().map(|nd| nd.log).collect::<Vec<_>>(),
                deliveries,
                now,
                stats,
                drops,
            )
        };
        assert_eq!(serial, single, "{kind:?} degenerate partition diverged");
    }
}

/// Horizon-interleaved driving (the deployment runner's pattern) must
/// stay byte-identical too: `run_until` / `run_strictly_before` /
/// reserved timeline injection all cross window-clipping code paths.
#[test]
fn interleaved_timeline_driving_matches_serial() {
    let n = 20u32;
    let timeline: Vec<(SimTime, NodeId, Chatter)> = {
        let mut rng = DetRng::new(0x7171);
        let mut at = SimTime::ZERO;
        (0..30)
            .map(|i| {
                at += SimDuration::from_micros(500 + rng.next_below(4_000));
                (
                    at,
                    NodeId(rng.next_below(n as u64) as u32),
                    Chatter {
                        tag: rng.next_u64().wrapping_add(i),
                        ttl: 5,
                    },
                )
            })
            .collect()
    };
    let serial = {
        let mut eng = Engine::new(make_nodes(n, 3), fabric_for(FabricKind::Jittered, 3));
        eng.reserve_external_seqs(timeline.len() as u64);
        assert_eq!(
            eng.run_timeline(timeline.iter().cloned()),
            RunOutcome::Drained
        );
        let deliveries = eng.deliveries();
        let (nodes, stats, now) = eng.into_parts();
        (
            nodes.into_iter().map(|nd| nd.log).collect::<Vec<_>>(),
            deliveries,
            now,
            format!("{stats:?}"),
        )
    };
    for workers in [2usize, 4, 8] {
        let part = Partition::contiguous(n as usize, workers);
        let mut eng =
            ParallelEngine::new(make_nodes(n, 3), fabric_for(FabricKind::Jittered, 3), &part);
        eng.reserve_external_seqs(timeline.len() as u64);
        assert_eq!(
            eng.run_timeline(timeline.iter().cloned()),
            RunOutcome::Drained
        );
        let deliveries = eng.deliveries();
        let (nodes, stats, now) = eng.into_parts();
        let parallel = (
            nodes.into_iter().map(|nd| nd.log).collect::<Vec<_>>(),
            deliveries,
            now,
            format!("{stats:?}"),
        );
        assert_eq!(serial, parallel, "{workers} workers diverged");
    }
}
