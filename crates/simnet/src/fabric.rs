//! Latency and hop models ("fabrics").
//!
//! The engine asks a [`Fabric`] for the [`LinkCost`] — latency *and* hop
//! count in one call — of every message it transports. Three implementations
//! are provided:
//!
//! * [`GridFabric`] — the paper's environment generalized to any
//!   [`Network`]: brokers exchange point-to-point messages along the
//!   shortest path in the physical graph (10 ms per wired hop by default),
//!   clients attach over 20 ms wireless links (one hop);
//! * [`UniformFabric`] — every message takes a fixed latency and one hop;
//!   used in unit tests where topology is irrelevant;
//! * [`JitteredFabric`] — wraps any fabric with a seeded per-message jitter,
//!   an optional per-direction asymmetry and timed link-degradation windows,
//!   for runs beyond the paper's constant-latency assumption.
//!
//! `link(from, to, at, seq)` is the engine's hot path: one virtual call per
//! message (the old `latency` + `hops` pair cost two — `micro_engine`
//! benches the difference). `at` and `seq` let stateless fabrics sample
//! per-message variation deterministically; constant fabrics ignore them,
//! which is what keeps zero-jitter runs byte-identical to the pre-refactor
//! engine.

use std::sync::Arc;

use crate::ids::NodeId;
use crate::time::{SimDuration, SimTime};
use crate::topology::Network;

/// The cost of carrying one message over one (from, to) pair: the unified
/// answer of the fabric fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkCost {
    /// Transport latency of this message.
    pub latency: SimDuration,
    /// Number of network hops traversed (for traffic accounting).
    pub hops: u32,
}

impl LinkCost {
    /// The free self-link (same node, zero latency, zero hops).
    pub const FREE: LinkCost = LinkCost {
        latency: SimDuration::ZERO,
        hops: 0,
    };
}

/// Computes per-message link costs.
pub trait Fabric: Send + Sync {
    /// Cost of one message from `from` to `to`, sent at `at` with the
    /// engine's send sequence number `seq`. Deterministic fabrics ignore
    /// `at`/`seq`; variable fabrics key their per-message sampling off them
    /// so runs stay replayable.
    fn link(&self, from: NodeId, to: NodeId, at: SimTime, seq: u64) -> LinkCost;

    /// Latency from `from` to `to` (convenience accessor over [`link`];
    /// for variable fabrics this is the cost of a hypothetical message at
    /// time zero).
    ///
    /// [`link`]: Fabric::link
    fn latency(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.link(from, to, SimTime::ZERO, 0).latency
    }

    /// Hop count from `from` to `to` (convenience accessor over [`link`]).
    ///
    /// [`link`]: Fabric::link
    fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        self.link(from, to, SimTime::ZERO, 0).hops
    }

    /// A hard **lower** bound on the latency of any message between two
    /// *distinct* nodes, over every `(at, seq)` the fabric can be asked
    /// about — the conservative lookahead of the parallel engine: a message
    /// emitted at time `t` can never be delivered to another node before
    /// `t + latency_floor()`, so all events inside a window of that width
    /// are causally independent across node partitions. Self-links
    /// (`from == to`, including engine timers) are exempt; they never cross
    /// a partition boundary.
    ///
    /// The default is [`SimDuration::ZERO`] — always sound, and understood
    /// by `ParallelEngine` as "no usable lookahead": it degrades to a
    /// single shard rather than risk a causality violation.
    fn latency_floor(&self) -> SimDuration {
        SimDuration::ZERO
    }
}

/// Fixed-latency fabric for unit tests: every message takes `latency` and
/// one hop.
#[derive(Debug, Clone)]
pub struct UniformFabric {
    /// Latency applied to every message.
    pub latency: SimDuration,
}

impl UniformFabric {
    /// Create a uniform fabric with the given per-message latency.
    pub fn new(latency: SimDuration) -> Self {
        UniformFabric { latency }
    }
}

impl Fabric for UniformFabric {
    fn link(&self, _from: NodeId, _to: NodeId, _at: SimTime, _seq: u64) -> LinkCost {
        LinkCost {
            latency: self.latency,
            hops: 1,
        }
    }

    fn latency_floor(&self) -> SimDuration {
        self.latency
    }
}

/// The paper's network model, over any [`Network`] shape.
///
/// Node ids `0..broker_count` are brokers placed on the topology; every id
/// at or above `broker_count` is a (possibly mobile) client reached over a
/// wireless link. Broker-to-broker messages travel the shortest path in the
/// wired graph: latency = graph distance × `wired_latency`, hops = graph
/// distance. Client links cost `wireless_latency` and one hop.
#[derive(Clone)]
pub struct GridFabric {
    network: Arc<Network>,
    broker_count: usize,
    wired_latency: SimDuration,
    wireless_latency: SimDuration,
}

impl GridFabric {
    /// Build a fabric with the paper's default latencies
    /// (10 ms wired, 20 ms wireless).
    pub fn paper_defaults(network: Arc<Network>) -> Self {
        Self::new(
            network,
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        )
    }

    /// Build a fabric with explicit latencies.
    pub fn new(network: Arc<Network>, wired: SimDuration, wireless: SimDuration) -> Self {
        let broker_count = network.broker_count();
        GridFabric {
            network,
            broker_count,
            wired_latency: wired,
            wireless_latency: wireless,
        }
    }

    fn is_broker(&self, id: NodeId) -> bool {
        id.index() < self.broker_count
    }

    /// The wired per-hop latency.
    pub fn wired_latency(&self) -> SimDuration {
        self.wired_latency
    }

    /// The wireless link latency.
    pub fn wireless_latency(&self) -> SimDuration {
        self.wireless_latency
    }

    /// The underlying broker network.
    pub fn network(&self) -> &Network {
        &self.network
    }
}

impl Fabric for GridFabric {
    fn link(&self, from: NodeId, to: NodeId, _at: SimTime, _seq: u64) -> LinkCost {
        if from == to {
            return LinkCost::FREE;
        }
        if self.is_broker(from) && self.is_broker(to) {
            let d = self.network.grid_distance(from.index(), to.index());
            LinkCost {
                latency: self.wired_latency.times(d as u64),
                hops: d,
            }
        } else {
            // client <-> broker (or, degenerately, client <-> client which the
            // pub/sub layer never does): one wireless link.
            LinkCost {
                latency: self.wireless_latency,
                hops: 1,
            }
        }
    }

    fn latency_floor(&self) -> SimDuration {
        // Distinct brokers are ≥ 1 graph hop apart (unreachable pairs report
        // u32::MAX hops, i.e. *more* latency), client links cost exactly one
        // wireless hop, so the cheaper of the two per-hop rates bounds every
        // cross-node message from below.
        self.wired_latency.min(self.wireless_latency)
    }
}

impl std::fmt::Debug for GridFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridFabric")
            .field("brokers", &self.broker_count)
            .field("wired_latency", &self.wired_latency)
            .field("wireless_latency", &self.wireless_latency)
            .finish()
    }
}

/// One timed degradation: while `start <= now < end`, every link's latency
/// is multiplied by `factor` (congestion, weather, partial outage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Latency multiplier applied during the window (≥ 1 slows links down).
    pub factor: f64,
}

/// Description of how link latencies vary around their base cost; the
/// parameter block of [`JitteredFabric`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    /// Seed of the per-message and per-direction sampling; every run is a
    /// pure function of it.
    pub seed: u64,
    /// Maximum per-message extra latency, sampled uniformly from
    /// `[0, jitter]` per `(from, to, seq)` — zero disables jitter.
    pub jitter: SimDuration,
    /// Per-direction asymmetry: each ordered pair gets a stable latency
    /// scale drawn uniformly from `[1, 1 + asymmetry]`, so `a→b` and `b→a`
    /// differ — zero keeps links symmetric.
    pub asymmetry: f64,
    /// Timed degradation windows, applied multiplicatively.
    pub degraded: Vec<DegradedWindow>,
}

impl LinkModel {
    /// The constant model: no jitter, no asymmetry, no degradation.
    pub fn constant(seed: u64) -> Self {
        LinkModel {
            seed,
            jitter: SimDuration::ZERO,
            asymmetry: 0.0,
            degraded: Vec::new(),
        }
    }

    /// True when the model never changes a base cost (wrapping a fabric
    /// with a constant model is a no-op).
    pub fn is_constant(&self) -> bool {
        self.jitter == SimDuration::ZERO && self.asymmetry <= 0.0 && self.degraded.is_empty()
    }

    /// A hard upper bound on what this model can turn `base` into — what a
    /// safety interval derived from the constant-latency maximum (the
    /// sub-unsub wait) must be stretched to under this model. Degradation
    /// windows compose **multiplicatively** when they overlap (that is how
    /// [`JitteredFabric::link`] applies them), so the bound folds their
    /// factors as a product, not a max — conservative for disjoint
    /// windows, exact for fully overlapping ones.
    pub fn worst_case(&self, base: SimDuration) -> SimDuration {
        let factor = (1.0 + self.asymmetry.max(0.0))
            * self
                .degraded
                .iter()
                .map(|w| w.factor.max(1.0))
                .product::<f64>();
        // [`JitteredFabric::link`] rounds to whole microseconds after the
        // asymmetry multiply and after every window multiply; one ceil over
        // the composite product can fall below that pipeline by up to half a
        // microsecond per stage, so budget a microsecond of slack each.
        let rounding_slack = SimDuration::from_micros(1 + self.degraded.len() as u64);
        SimDuration::from_micros((base.as_micros() as f64 * factor).ceil() as u64)
            + self.jitter
            + rounding_slack
    }

    /// [`worst_case`](Self::worst_case) for a **path of `hops` links**: a
    /// message forwarded hop-by-hop (overlay event routing) samples an
    /// independent jitter on *every* link, so the bound must budget one
    /// jitter allowance per hop — adding it once under-sizes any safety
    /// interval derived from it.
    pub fn worst_case_path(&self, base: SimDuration, hops: u64) -> SimDuration {
        let extra_hops = hops.saturating_sub(1);
        // One jitter allowance and one set of rounding slack per extra hop
        // (each link rounds its own stages).
        self.worst_case(base)
            + self.jitter.times(extra_hops)
            + SimDuration::from_micros(extra_hops * (1 + self.degraded.len() as u64))
    }

    /// Mix the model seed with a per-message key into one well-mixed word —
    /// the seed of every per-message / per-direction sample. One splitmix
    /// finalization ([`mix64`](crate::random)) instead of a full `DetRng`
    /// construction: this runs once or twice per delivered message on the
    /// engine's hot path.
    fn sample_key(&self, from: NodeId, to: NodeId, salt: u64) -> u64 {
        crate::random::mix64(
            self.seed
                ^ crate::ids::pack_pair(from, to).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ salt.wrapping_mul(0xA24B_AED4_963E_E407),
        )
    }
}

/// Map a mixed word to a uniform double in `[0, 1)` (same 53-bit mapping as
/// [`DetRng::next_f64`](crate::random::DetRng::next_f64)).
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map a mixed word to a uniform integer in `[0, bound)` (widening
/// multiply-shift, like [`DetRng::next_below`](crate::random::DetRng::next_below)).
fn below(word: u64, bound: u64) -> u64 {
    ((word as u128 * bound as u128) >> 64) as u64
}

/// Wraps any fabric with the variable-latency [`LinkModel`]: seeded
/// per-message jitter, optional per-direction asymmetry and timed
/// degradation windows. Hop counts are untouched — jitter models transport
/// delay, not routing. Purely stateless: every sample is a function of
/// `(model seed, from, to, seq, at)`, so runs replay exactly and the
/// engine's per-link channel clocks (see `engine`) keep delivery FIFO per
/// link even when a later message samples a smaller latency.
#[derive(Debug, Clone)]
pub struct JitteredFabric<F> {
    inner: F,
    model: LinkModel,
}

impl<F: Fabric> JitteredFabric<F> {
    /// Wrap `inner` with `model`.
    pub fn new(inner: F, model: LinkModel) -> Self {
        JitteredFabric { inner, model }
    }

    /// The wrapped fabric.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The link model in effect.
    pub fn model(&self) -> &LinkModel {
        &self.model
    }
}

impl<F: Fabric> Fabric for JitteredFabric<F> {
    fn link(&self, from: NodeId, to: NodeId, at: SimTime, seq: u64) -> LinkCost {
        let base = self.inner.link(from, to, at, seq);
        if from == to || self.model.is_constant() {
            return base;
        }
        let mut latency_us = base.latency.as_micros();
        if self.model.asymmetry > 0.0 {
            // Stable per ordered pair: both directions draw their own scale
            // (seq-independent salt, so the factor never varies per message).
            let f = 1.0 + unit_f64(self.model.sample_key(from, to, 0x4153)) * self.model.asymmetry;
            latency_us = (latency_us as f64 * f).round() as u64;
        }
        for w in &self.model.degraded {
            if at >= w.start && at < w.end {
                latency_us = (latency_us as f64 * w.factor.max(0.0)).round() as u64;
            }
        }
        let jitter_us = self.model.jitter.as_micros();
        if jitter_us > 0 {
            latency_us += below(self.model.sample_key(from, to, seq), jitter_us + 1);
        }
        LinkCost {
            latency: SimDuration::from_micros(latency_us.max(1)),
            hops: base.hops,
        }
    }

    fn latency_floor(&self) -> SimDuration {
        let inner = self.inner.latency_floor();
        if self.model.is_constant() || inner == SimDuration::ZERO {
            return inner;
        }
        // Asymmetry scales by ≥ 1 and jitter only adds, so neither lowers
        // the bound. Degradation windows are applied with `factor.max(0.0)`
        // in `link` — a factor *below* one speeds a link up — so fold the
        // product of every sub-unit factor in, budget one microsecond of
        // round-to-nearest slack per window, and rely on `link`'s final
        // `.max(1)` microsecond clamp as the absolute floor.
        let shrink: f64 = self
            .model
            .degraded
            .iter()
            .map(|w| w.factor.clamp(0.0, 1.0))
            .product();
        let us = inner.as_micros() as f64 * shrink - self.model.degraded.len() as f64;
        SimDuration::from_micros((us.floor().max(1.0)) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(k: usize) -> GridFabric {
        GridFabric::paper_defaults(Arc::new(Network::grid(k, 42)))
    }

    #[test]
    fn uniform_fabric_is_constant() {
        let f = UniformFabric::new(SimDuration::from_millis(5));
        assert_eq!(f.latency(NodeId(0), NodeId(9)), SimDuration::from_millis(5));
        assert_eq!(f.hops(NodeId(0), NodeId(9)), 1);
        assert_eq!(
            f.link(NodeId(0), NodeId(9), SimTime::ZERO, 7),
            LinkCost {
                latency: SimDuration::from_millis(5),
                hops: 1
            }
        );
    }

    #[test]
    fn broker_to_broker_uses_grid_distance() {
        let f = fabric(5);
        // Brokers 0 and 24 are opposite corners of a 5×5 grid: distance 8.
        assert_eq!(f.hops(NodeId(0), NodeId(24)), 8);
        assert_eq!(
            f.latency(NodeId(0), NodeId(24)),
            SimDuration::from_millis(80)
        );
        // Adjacent brokers: one hop, 10 ms.
        assert_eq!(f.hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(
            f.latency(NodeId(0), NodeId(1)),
            SimDuration::from_millis(10)
        );
    }

    #[test]
    fn client_links_are_wireless() {
        let f = fabric(5);
        // Node 25 is the first client id for a 5×5 grid.
        assert_eq!(
            f.latency(NodeId(3), NodeId(25)),
            SimDuration::from_millis(20)
        );
        assert_eq!(
            f.latency(NodeId(25), NodeId(3)),
            SimDuration::from_millis(20)
        );
        assert_eq!(f.hops(NodeId(25), NodeId(3)), 1);
    }

    #[test]
    fn self_messages_are_free() {
        let f = fabric(3);
        assert_eq!(f.latency(NodeId(4), NodeId(4)), SimDuration::ZERO);
        assert_eq!(f.hops(NodeId(4), NodeId(4)), 0);
    }

    #[test]
    fn latency_is_symmetric() {
        let f = fabric(6);
        for a in 0..10u32 {
            for b in 0..10u32 {
                assert_eq!(
                    f.latency(NodeId(a), NodeId(b)),
                    f.latency(NodeId(b), NodeId(a))
                );
                assert_eq!(f.hops(NodeId(a), NodeId(b)), f.hops(NodeId(b), NodeId(a)));
            }
        }
    }

    #[test]
    fn fabric_works_over_non_grid_topologies() {
        use crate::topology::TopologyKind;
        let net = Arc::new(TopologyKind::ScaleFree { edges_per_node: 2 }.build(4, 9));
        let f = GridFabric::paper_defaults(net.clone());
        for a in 0..16u32 {
            for b in 0..16u32 {
                let cost = f.link(NodeId(a), NodeId(b), SimTime::ZERO, 0);
                assert_eq!(
                    cost.hops,
                    net.grid_distance(a as usize, b as usize),
                    "hops follow shortest paths on any topology"
                );
                assert_eq!(
                    cost.latency,
                    SimDuration::from_millis(10 * cost.hops as u64)
                );
            }
        }
    }

    #[test]
    fn constant_link_model_is_a_no_op_wrapper() {
        let inner = fabric(4);
        let wrapped = JitteredFabric::new(inner.clone(), LinkModel::constant(1));
        for a in 0..18u32 {
            for b in 0..18u32 {
                for seq in [0u64, 5, 99] {
                    assert_eq!(
                        wrapped.link(NodeId(a), NodeId(b), SimTime::from_millis(seq), seq),
                        inner.link(NodeId(a), NodeId(b), SimTime::from_millis(seq), seq)
                    );
                }
            }
        }
        assert!(LinkModel::constant(1).is_constant());
    }

    #[test]
    fn jitter_is_bounded_seeded_and_per_message() {
        let model = LinkModel {
            seed: 77,
            jitter: SimDuration::from_millis(5),
            asymmetry: 0.0,
            degraded: Vec::new(),
        };
        let f = JitteredFabric::new(fabric(4), model.clone());
        let base = fabric(4).latency(NodeId(0), NodeId(1));
        let mut seen_distinct = std::collections::BTreeSet::new();
        for seq in 0..64u64 {
            let cost = f.link(NodeId(0), NodeId(1), SimTime::ZERO, seq);
            assert!(cost.latency >= base, "jitter only adds");
            assert!(cost.latency <= base + SimDuration::from_millis(5));
            assert_eq!(cost.hops, 1, "jitter never changes hop accounting");
            seen_distinct.insert(cost.latency);
            // Replay: same (from, to, seq) -> same sample.
            assert_eq!(cost, f.link(NodeId(0), NodeId(1), SimTime::ZERO, seq));
        }
        assert!(seen_distinct.len() > 8, "jitter must actually vary");
        // A different model seed yields a different stream.
        let other = JitteredFabric::new(fabric(4), LinkModel { seed: 78, ..model });
        assert!(
            (0..64u64).any(|s| other.link(NodeId(0), NodeId(1), SimTime::ZERO, s)
                != f.link(NodeId(0), NodeId(1), SimTime::ZERO, s))
        );
    }

    #[test]
    fn asymmetry_splits_directions_stably() {
        let model = LinkModel {
            seed: 3,
            jitter: SimDuration::ZERO,
            asymmetry: 0.5,
            degraded: Vec::new(),
        };
        let f = JitteredFabric::new(fabric(5), model);
        let ab = f.link(NodeId(0), NodeId(24), SimTime::ZERO, 0);
        let ba = f.link(NodeId(24), NodeId(0), SimTime::ZERO, 0);
        assert_ne!(ab.latency, ba.latency, "directions draw distinct scales");
        let base = fabric(5).latency(NodeId(0), NodeId(24));
        for c in [ab, ba] {
            assert!(c.latency >= base);
            assert!(c.latency.as_micros() as f64 <= base.as_micros() as f64 * 1.5 + 1.0);
        }
        // Stable across seq: asymmetry is per direction, not per message.
        assert_eq!(ab, f.link(NodeId(0), NodeId(24), SimTime::ZERO, 99));
    }

    #[test]
    fn degradation_windows_slow_links_down_while_open() {
        let model = LinkModel {
            seed: 9,
            jitter: SimDuration::ZERO,
            asymmetry: 0.0,
            degraded: vec![DegradedWindow {
                start: SimTime::from_millis(100),
                end: SimTime::from_millis(200),
                factor: 3.0,
            }],
        };
        let f = JitteredFabric::new(fabric(4), model);
        let base = fabric(4).latency(NodeId(0), NodeId(1));
        let before = f.link(NodeId(0), NodeId(1), SimTime::from_millis(99), 0);
        let during = f.link(NodeId(0), NodeId(1), SimTime::from_millis(100), 1);
        let after = f.link(NodeId(0), NodeId(1), SimTime::from_millis(200), 2);
        assert_eq!(before.latency, base);
        assert_eq!(after.latency, base);
        assert_eq!(during.latency, base.times(3));
    }

    #[test]
    fn worst_case_bounds_overlapping_degradation_windows() {
        // Two windows covering the same instant compose multiplicatively in
        // link(); the bound must account for the product, not the max.
        let model = LinkModel {
            seed: 1,
            jitter: SimDuration::ZERO,
            asymmetry: 0.0,
            degraded: vec![
                DegradedWindow {
                    start: SimTime::ZERO,
                    end: SimTime::from_secs(10),
                    factor: 2.0,
                },
                DegradedWindow {
                    start: SimTime::ZERO,
                    end: SimTime::from_secs(10),
                    factor: 3.0,
                },
            ],
        };
        let f = JitteredFabric::new(fabric(4), model.clone());
        let base = fabric(4).latency(NodeId(0), NodeId(1));
        let during = f.link(NodeId(0), NodeId(1), SimTime::from_secs(5), 0);
        assert_eq!(during.latency, base.times(6), "windows stack");
        assert!(
            during.latency <= model.worst_case(base),
            "bound {} must cover the stacked sample {}",
            model.worst_case(base),
            during.latency
        );
    }

    #[test]
    fn worst_case_path_budgets_one_jitter_per_hop() {
        let model = LinkModel {
            seed: 2,
            jitter: SimDuration::from_millis(10),
            asymmetry: 0.0,
            degraded: Vec::new(),
        };
        let base = SimDuration::from_millis(100);
        // A 5-hop path can accumulate five independent jitter samples; the
        // single-link bound only budgets one. The extra microseconds are the
        // per-hop rounding slack.
        assert_eq!(
            model.worst_case_path(base, 5),
            model.worst_case(base) + SimDuration::from_millis(40) + SimDuration::from_micros(4)
        );
        assert_eq!(model.worst_case_path(base, 1), model.worst_case(base));
        assert_eq!(model.worst_case_path(base, 0), model.worst_case(base));
    }

    /// `latency_floor` must lower-bound every sample the fabric can emit —
    /// the parallel engine's causality windows depend on it.
    #[test]
    fn latency_floor_bounds_every_cross_node_sample() {
        let grid = fabric(5);
        assert_eq!(grid.latency_floor(), SimDuration::from_millis(10));
        assert_eq!(
            UniformFabric::new(SimDuration::from_millis(3)).latency_floor(),
            SimDuration::from_millis(3)
        );
        // A speed-up degradation window (factor < 1) must lower the floor.
        let model = LinkModel {
            seed: 4,
            jitter: SimDuration::from_millis(2),
            asymmetry: 0.3,
            degraded: vec![DegradedWindow {
                start: SimTime::from_millis(50),
                end: SimTime::from_millis(150),
                factor: 0.25,
            }],
        };
        let f = JitteredFabric::new(grid.clone(), model);
        let floor = f.latency_floor();
        assert!(floor < grid.latency_floor(), "sub-unit factor lowers floor");
        assert!(floor >= SimDuration::from_micros(1));
        let n = 27u32; // 25 brokers + clients
        for seq in 0..40u64 {
            let at = SimTime::from_millis(seq * 5);
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let cost = f.link(NodeId(a), NodeId(b), at, seq);
                    assert!(
                        cost.latency >= floor,
                        "sample {} under floor {} for {a}->{b} at {at}",
                        cost.latency,
                        floor
                    );
                }
            }
        }
        // Constant wrap passes the inner floor through unchanged.
        let constant = JitteredFabric::new(grid.clone(), LinkModel::constant(0));
        assert_eq!(constant.latency_floor(), grid.latency_floor());
    }

    #[test]
    fn worst_case_bounds_every_sample() {
        let model = LinkModel {
            seed: 5,
            jitter: SimDuration::from_millis(7),
            asymmetry: 0.25,
            degraded: vec![DegradedWindow {
                start: SimTime::ZERO,
                end: SimTime::from_secs(1),
                factor: 2.0,
            }],
        };
        let f = JitteredFabric::new(fabric(5), model.clone());
        let base = fabric(5).latency(NodeId(0), NodeId(24));
        let bound = model.worst_case(base);
        for seq in 0..200u64 {
            let at = SimTime::from_millis(seq * 10);
            let cost = f.link(NodeId(0), NodeId(24), at, seq);
            assert!(
                cost.latency <= bound,
                "sample {} exceeds worst case {}",
                cost.latency,
                bound
            );
        }
    }
}
