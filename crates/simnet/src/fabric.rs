//! Latency and hop models ("fabrics").
//!
//! The engine asks a [`Fabric`] for the latency and hop count of every
//! message it transports. Two implementations are provided:
//!
//! * [`GridFabric`] — the paper's environment: brokers live on a k×k wired
//!   grid (10 ms per wired hop, point-to-point messages travel the shortest
//!   grid path), clients attach over 20 ms wireless links (one hop);
//! * [`UniformFabric`] — every message takes a fixed latency and one hop;
//!   used in unit tests where topology is irrelevant.

use std::sync::Arc;

use crate::ids::NodeId;
use crate::time::SimDuration;
use crate::topology::Network;

/// Computes per-message latency and hop cost.
pub trait Fabric: Send + Sync {
    /// Latency from `from` to `to`.
    fn latency(&self, from: NodeId, to: NodeId) -> SimDuration;
    /// Number of network hops the message traverses (for traffic accounting).
    fn hops(&self, from: NodeId, to: NodeId) -> u32;
}

/// Fixed-latency fabric for unit tests: every message takes `latency` and
/// one hop.
#[derive(Debug, Clone)]
pub struct UniformFabric {
    /// Latency applied to every message.
    pub latency: SimDuration,
}

impl UniformFabric {
    /// Create a uniform fabric with the given per-message latency.
    pub fn new(latency: SimDuration) -> Self {
        UniformFabric { latency }
    }
}

impl Fabric for UniformFabric {
    fn latency(&self, _from: NodeId, _to: NodeId) -> SimDuration {
        self.latency
    }
    fn hops(&self, _from: NodeId, _to: NodeId) -> u32 {
        1
    }
}

/// The paper's network model.
///
/// Node ids `0..broker_count` are brokers placed on the grid; every id at or
/// above `broker_count` is a (possibly mobile) client reached over a wireless
/// link. Broker-to-broker messages travel the shortest path in the wired
/// grid: latency = grid distance × `wired_latency`, hops = grid distance.
/// Client links cost `wireless_latency` and one hop.
#[derive(Clone)]
pub struct GridFabric {
    network: Arc<Network>,
    broker_count: usize,
    wired_latency: SimDuration,
    wireless_latency: SimDuration,
}

impl GridFabric {
    /// Build a grid fabric with the paper's default latencies
    /// (10 ms wired, 20 ms wireless).
    pub fn paper_defaults(network: Arc<Network>) -> Self {
        Self::new(
            network,
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        )
    }

    /// Build a grid fabric with explicit latencies.
    pub fn new(network: Arc<Network>, wired: SimDuration, wireless: SimDuration) -> Self {
        let broker_count = network.broker_count();
        GridFabric {
            network,
            broker_count,
            wired_latency: wired,
            wireless_latency: wireless,
        }
    }

    fn is_broker(&self, id: NodeId) -> bool {
        id.index() < self.broker_count
    }

    /// The wired per-hop latency.
    pub fn wired_latency(&self) -> SimDuration {
        self.wired_latency
    }

    /// The wireless link latency.
    pub fn wireless_latency(&self) -> SimDuration {
        self.wireless_latency
    }

    /// The underlying broker network.
    pub fn network(&self) -> &Network {
        &self.network
    }
}

impl Fabric for GridFabric {
    fn latency(&self, from: NodeId, to: NodeId) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        if self.is_broker(from) && self.is_broker(to) {
            let d = self.network.grid_distance(from.index(), to.index()) as u64;
            self.wired_latency.times(d)
        } else {
            // client <-> broker (or, degenerately, client <-> client which the
            // pub/sub layer never does): one wireless link.
            self.wireless_latency
        }
    }

    fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        if from == to {
            return 0;
        }
        if self.is_broker(from) && self.is_broker(to) {
            self.network.grid_distance(from.index(), to.index())
        } else {
            1
        }
    }
}

impl std::fmt::Debug for GridFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridFabric")
            .field("brokers", &self.broker_count)
            .field("wired_latency", &self.wired_latency)
            .field("wireless_latency", &self.wireless_latency)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(k: usize) -> GridFabric {
        GridFabric::paper_defaults(Arc::new(Network::grid(k, 42)))
    }

    #[test]
    fn uniform_fabric_is_constant() {
        let f = UniformFabric::new(SimDuration::from_millis(5));
        assert_eq!(f.latency(NodeId(0), NodeId(9)), SimDuration::from_millis(5));
        assert_eq!(f.hops(NodeId(0), NodeId(9)), 1);
    }

    #[test]
    fn broker_to_broker_uses_grid_distance() {
        let f = fabric(5);
        // Brokers 0 and 24 are opposite corners of a 5×5 grid: distance 8.
        assert_eq!(f.hops(NodeId(0), NodeId(24)), 8);
        assert_eq!(
            f.latency(NodeId(0), NodeId(24)),
            SimDuration::from_millis(80)
        );
        // Adjacent brokers: one hop, 10 ms.
        assert_eq!(f.hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(
            f.latency(NodeId(0), NodeId(1)),
            SimDuration::from_millis(10)
        );
    }

    #[test]
    fn client_links_are_wireless() {
        let f = fabric(5);
        // Node 25 is the first client id for a 5×5 grid.
        assert_eq!(
            f.latency(NodeId(3), NodeId(25)),
            SimDuration::from_millis(20)
        );
        assert_eq!(
            f.latency(NodeId(25), NodeId(3)),
            SimDuration::from_millis(20)
        );
        assert_eq!(f.hops(NodeId(25), NodeId(3)), 1);
    }

    #[test]
    fn self_messages_are_free() {
        let f = fabric(3);
        assert_eq!(f.latency(NodeId(4), NodeId(4)), SimDuration::ZERO);
        assert_eq!(f.hops(NodeId(4), NodeId(4)), 0);
    }

    #[test]
    fn latency_is_symmetric() {
        let f = fabric(6);
        for a in 0..10u32 {
            for b in 0..10u32 {
                assert_eq!(
                    f.latency(NodeId(a), NodeId(b)),
                    f.latency(NodeId(b), NodeId(a))
                );
                assert_eq!(f.hops(NodeId(a), NodeId(b)), f.hops(NodeId(b), NodeId(a)));
            }
        }
    }
}
